//! Validation for the machine-readable reports the figure binaries emit.
//!
//! Every `fig*` gate writes a `BENCH_<figure>.json` through
//! [`crate::BenchReport`], and CI archives them as the repo's perf
//! trajectory. A trajectory is only useful if every point on it has the same
//! shape, so this module pins the schema: a JSON object with a non-empty
//! `"figure"` string, a non-empty `"config"` string, and a `"metrics"`
//! object holding at least one entry whose values are numbers (or `null`,
//! the report's spelling for non-finite values).
//!
//! The workspace is offline — no serde — so validation rides on a small
//! recursive-descent JSON parser. It handles the full JSON grammar (the
//! `validate_reports` binary also parses Chrome trace files with it), not
//! just the report subset, because a parser that only accepts what we
//! currently emit would silently bless malformed output the moment an
//! emitter drifts.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string, with escapes decoded.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object. Key order is not preserved (reports never rely on it);
    /// duplicate keys keep the last value, as most JSON readers do.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The object entry under `key`, if this is an object containing one.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The entries, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(map) => Some(map),
            _ => None,
        }
    }
}

/// Parses a complete JSON document, rejecting trailing garbage.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {}, found {:?}",
            byte as char,
            *pos,
            bytes.get(*pos).map(|b| *b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(map));
            }
            other => {
                return Err(format!(
                    "expected ',' or '}}' at byte {}, found {:?}",
                    *pos,
                    other.map(|b| *b as char)
                ))
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            other => {
                return Err(format!(
                    "expected ',' or ']' at byte {}, found {:?}",
                    *pos,
                    other.map(|b| *b as char)
                ))
            }
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // Reports only escape control characters, so lone
                        // surrogates are malformed rather than pair-decoded.
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("invalid \\u{hex} escape"))?,
                        );
                        *pos += 4;
                    }
                    other => {
                        return Err(format!(
                            "invalid escape {:?} at byte {}",
                            other.map(|b| *b as char),
                            *pos
                        ))
                    }
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar; the input came from a &str so
                // the byte stream is valid UTF-8.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty by construction");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(JsonValue::Number)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

/// Checks `text` against the report schema every `fig*` binary emits:
/// an object with a non-empty `"figure"` string, a non-empty `"config"`
/// string, and a `"metrics"` object with at least one entry, each entry a
/// number or `null`.
pub fn validate_report_json(text: &str) -> Result<(), String> {
    let doc = parse_json(text)?;
    let figure = doc
        .get("figure")
        .and_then(JsonValue::as_str)
        .ok_or("missing string field \"figure\"")?;
    if figure.is_empty() {
        return Err("\"figure\" must be non-empty".to_string());
    }
    let config = doc
        .get("config")
        .and_then(JsonValue::as_str)
        .ok_or("missing string field \"config\"")?;
    if config.is_empty() {
        return Err("\"config\" must be non-empty".to_string());
    }
    let metrics = doc
        .get("metrics")
        .and_then(JsonValue::as_object)
        .ok_or("missing object field \"metrics\"")?;
    if metrics.is_empty() {
        return Err("\"metrics\" must hold at least one entry".to_string());
    }
    for (name, value) in metrics {
        match value {
            JsonValue::Number(_) | JsonValue::Null => {}
            other => {
                return Err(format!(
                    "metric \"{name}\" must be a number or null, found {other:?}"
                ))
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        let doc = parse_json(
            r#"{"a": [1, -2.5, 1e3, true, false, null], "s": "q\"\\\nA", "o": {}}"#,
        )
        .expect("parses");
        assert_eq!(
            doc.get("a").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(6)
        );
        assert_eq!(doc.get("s").and_then(JsonValue::as_str), Some("q\"\\\nA"));
        assert_eq!(
            doc.get("a").unwrap().as_array().unwrap()[2].as_number(),
            Some(1000.0)
        );
        assert!(doc.get("o").unwrap().as_object().unwrap().is_empty());
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{\"a\": 1} trailing").is_err());
        assert!(parse_json("\"unterminated").is_err());
        assert!(parse_json("nul").is_err());
    }

    #[test]
    fn validates_the_report_schema() {
        let good = "{\"figure\": \"fig14\", \"config\": \"test\", \"metrics\": {\"x\": 1, \"y\": null}}";
        validate_report_json(good).expect("valid report");

        let no_config = "{\"figure\": \"fig14\", \"metrics\": {\"x\": 1}}";
        assert!(validate_report_json(no_config).is_err());

        let empty_metrics = "{\"figure\": \"fig14\", \"config\": \"t\", \"metrics\": {}}";
        assert!(validate_report_json(empty_metrics).is_err());

        let bad_metric =
            "{\"figure\": \"fig14\", \"config\": \"t\", \"metrics\": {\"x\": \"oops\"}}";
        assert!(validate_report_json(bad_metric).is_err());

        let empty_figure = "{\"figure\": \"\", \"config\": \"t\", \"metrics\": {\"x\": 1}}";
        assert!(validate_report_json(empty_figure).is_err());
    }

    #[test]
    fn parses_a_chrome_trace_document() {
        let trace = telemetry::trace::chrome_trace(&[(
            "worker-0".to_string(),
            vec![telemetry::TraceEvent {
                t_us: 40,
                kind: telemetry::EventKind::CompileEnd {
                    func: 3,
                    tier: telemetry::Tier::Baseline,
                    backend: telemetry::Backend::X64,
                    wasm_bytes: 100,
                    machine_bytes: 400,
                    dur_us: 15,
                },
            }],
            0,
        )]);
        let doc = parse_json(&trace).expect("chrome trace parses");
        let events = doc
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .expect("traceEvents array");
        assert_eq!(events.len(), 2, "thread-name metadata + one span");
    }
}
