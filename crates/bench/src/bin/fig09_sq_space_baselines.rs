//! Fig. 9 — the SQ-space (compile speed vs. code quality) scatter for the six
//! baseline compilers.
//!
//! One point per benchmark line item per compiler: the x axis is compile
//! speed in MB of Wasm code per second of compile time, the y axis is the
//! speedup of the generated code over the in-place interpreter. Up and right
//! are better. The output is CSV-like so it can be plotted directly.

use bench::{measure_all, Instrument};
use engine::EngineConfig;

fn main() {
    let scale = bench::scale_from_args();
    bench::print_header(
        "Figure 9",
        "SQ-space for baseline compilers (compile MB/s vs speedup over Wizard-INT)",
    );

    let interp = measure_all(
        &EngineConfig::interpreter("wizeng-int"),
        scale,
        Instrument::None,
    );

    println!("compiler,suite,item,compile_mb_per_s,speedup_over_interpreter");
    let mut per_compiler: Vec<(String, f64, f64)> = Vec::new();
    for profile in spc::all_profiles() {
        let run = measure_all(
            &EngineConfig::baseline(profile.name, profile.options.clone()),
            scale,
            Instrument::None,
        );
        let mut sum_speed = 0.0;
        let mut sum_quality = 0.0;
        for (base, m) in bench::paired(&interp, &run) {
            let mbs = (m.compiled_wasm_bytes as f64 / 1e6)
                / m.compile_wall.as_secs_f64().max(1e-9);
            let speedup = base.exec_cycles as f64 / m.exec_cycles.max(1) as f64;
            println!(
                "{},{},{},{:.3},{:.3}",
                profile.name, m.suite, m.name, mbs, speedup
            );
            sum_speed += mbs;
            sum_quality += speedup;
        }
        per_compiler.push((
            profile.name.to_string(),
            sum_speed / run.len() as f64,
            sum_quality / run.len() as f64,
        ));
    }

    println!();
    println!("Per-compiler centroids (mean compile MB/s, mean speedup):");
    for (name, speed, quality) in per_compiler {
        println!("  {name:<14} {speed:>10.2} MB/s   {quality:>6.2}x");
    }
    println!();
    println!("Expected shape (paper): all baseline compilers achieve similar speedups");
    println!("(they cluster vertically) while varying by roughly an order of magnitude in");
    println!("compile speed.");
}
