//! FIG 17 (beyond the paper): on-stack replacement into the optimizing tier.
//!
//! Call-count tier-up is blind to the single-call shape every suite line
//! item has: `main` is called exactly once, so a baseline-tier engine whose
//! promotion trigger lives at call boundaries runs the whole kernel in
//! baseline code no matter how hot its loops get. OSR fixes that — the
//! loop-back-edge hotness counter (riding the fused meter-check sites)
//! triggers the opt compile and the running frame transfers mid-loop.
//!
//! The figure measures exactly that repair, per suite:
//!
//! 1. **never-OSR** — the eager baseline configuration; one call per item,
//!    promotion never fires.
//! 2. **OSR** — the same configuration with a back-edge threshold armed;
//!    the same single call tiers up mid-activation.
//!
//! Checksums are cross-checked item by item (the binary doubles as a
//! whole-suite OSR differential), OSR transition counts come from the
//! telemetry counter the engine publishes, and the acceptance gate requires
//! the OSR run to spend at least 15% fewer simulated execution cycles than
//! never-OSR on at least 2 of the 3 suites.

use bench::{measure_item, print_header, BenchReport, Instrument, ItemMeasurement};
use engine::{Engine, EngineConfig, Imports, Instrumentation};
use spc::CompilerOptions;
use suites::BenchmarkItem;

/// Loop iterations a back edge must see before the transfer. High enough
/// that a handful of warm-up trips stay in baseline code, low enough that
/// every real kernel loop crosses it almost immediately.
const OSR_THRESHOLD: u32 = 100;

fn never_osr_config() -> EngineConfig {
    EngineConfig::baseline("spc", CompilerOptions::allopt())
}

fn osr_config() -> EngineConfig {
    EngineConfig::baseline("spc-osr", CompilerOptions::allopt()).with_osr(OSR_THRESHOLD)
}

/// Measures one item under the OSR configuration with telemetry attached,
/// returning the measurement plus the number of OSR transitions the
/// engine's counter recorded for that single call.
fn measure_item_osr(item: &BenchmarkItem) -> (ItemMeasurement, u64) {
    let measurement = measure_item(&osr_config(), item, Instrument::None);
    let engine = Engine::new(osr_config().with_telemetry());
    let mut instance = engine
        .instantiate(&item.module, Imports::new(), Instrumentation::none())
        .expect("suite modules instantiate");
    engine
        .call_export(&mut instance, BenchmarkItem::ENTRY, &[])
        .expect("suite item runs");
    let osr_entries = engine
        .telemetry()
        .metrics()
        .expect("telemetry enabled")
        .snapshot()
        .counters
        .iter()
        .find(|(name, _)| name == "engine.osr_entries")
        .map(|(_, value)| *value)
        .unwrap_or(0);
    (measurement, osr_entries)
}

fn main() {
    let scale = bench::scale_from_args();
    print_header(
        "Figure 17 (beyond the paper)",
        "On-stack replacement: single-call hot loops reach the optimizing tier mid-activation",
    );
    let mut report = BenchReport::new("fig17");
    report.config(bench::scale_label(scale));

    let mut base: Vec<ItemMeasurement> = Vec::new();
    let mut osr: Vec<ItemMeasurement> = Vec::new();
    let mut entries_by_item: Vec<(&'static str, u64)> = Vec::new();
    let mut checksum_mismatches = 0usize;
    for suite in suites::all_suites(scale) {
        for item in &suite.items {
            let b = measure_item(&never_osr_config(), item, Instrument::None);
            let (o, entries) = measure_item_osr(item);
            if b.checksum != o.checksum {
                eprintln!(
                    "CHECKSUM MISMATCH {}/{}: {} vs {}",
                    b.suite, b.name, b.checksum, o.checksum
                );
                checksum_mismatches += 1;
            }
            entries_by_item.push((b.suite, entries));
            base.push(b);
            osr.push(o);
        }
    }
    let osr_entries_total: u64 = entries_by_item.iter().map(|(_, n)| n).sum();

    println!("\nSingle-call execution cycles, never-OSR baseline vs. OSR (threshold {OSR_THRESHOLD}):");
    println!(
        "{:<10} | {:>14} | {:>14} | {:>8} | {:>8}",
        "suite", "never-OSR", "OSR", "win", "entries"
    );
    println!(
        "{:-<10}-+-{:-<14}-+-{:-<14}-+-{:-<8}-+-{:-<8}",
        "", "", "", "", ""
    );
    let mut suites_with_win = Vec::new();
    for suite in ["polybench", "libsodium", "ostrich"] {
        let total = |items: &[ItemMeasurement]| -> u64 {
            items
                .iter()
                .filter(|m| m.suite == suite)
                .map(|m| m.exec_cycles)
                .sum()
        };
        let entries: u64 = entries_by_item
            .iter()
            .filter(|(s, _)| *s == suite)
            .map(|(_, n)| n)
            .sum();
        let b = total(&base);
        let o = total(&osr);
        let reduction = 100.0 * (1.0 - o as f64 / b as f64);
        println!(
            "{suite:<10} | {b:>14} | {o:>14} | {reduction:>6.1}% | {entries:>8}"
        );
        report.metric(&format!("{suite}.never_osr_cycles"), b as f64);
        report.metric(&format!("{suite}.osr_cycles"), o as f64);
        report.metric(&format!("{suite}.osr_reduction_pct"), reduction);
        // The gate: OSR must beat call-boundary-only tier-up by >= 15%.
        if o as f64 <= b as f64 * 0.85 {
            suites_with_win.push(suite);
        }
    }
    println!("\ntotal OSR transitions across the sweep: {osr_entries_total}");

    report.metric("osr_threshold", OSR_THRESHOLD as f64);
    report.metric("osr_entries_total", osr_entries_total as f64);
    report.metric("suites_with_15pct_win", suites_with_win.len() as f64);
    report.metric(
        "pass",
        if checksum_mismatches == 0 && suites_with_win.len() >= 2 && osr_entries_total > 0 {
            1.0
        } else {
            0.0
        },
    );
    report.write();
    println!();
    if checksum_mismatches > 0 {
        println!("FAIL: {checksum_mismatches} checksum mismatches between never-OSR and OSR");
        std::process::exit(1);
    }
    if osr_entries_total == 0 {
        println!("FAIL: the sweep never performed a single OSR transition");
        std::process::exit(1);
    }
    println!(
        "OSR ≥15% fewer cycles than never-OSR on {} of 3 suites ({:?})",
        suites_with_win.len(),
        suites_with_win
    );
    if suites_with_win.len() < 2 {
        println!("FAIL: the acceptance gate requires at least 2 suites");
        std::process::exit(1);
    }
    println!("PASS");
}
