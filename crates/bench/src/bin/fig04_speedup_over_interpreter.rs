//! Fig. 4 — execution-time speedup of Wizard-SPC over Wizard-INT for the
//! optimization-ablation configurations (allopt, nok, nokfold, noisel, nomr).
//!
//! For every benchmark line item, main execution time is measured in
//! simulated cycles under the in-place interpreter and under each compiler
//! configuration; the figure reports per-suite average / min / max speedups
//! (higher is better).

use bench::{measure_all, print_suite_table, summarize, Instrument};
use engine::EngineConfig;
use spc::CompilerOptions;

fn main() {
    let scale = bench::scale_from_args();
    bench::print_header(
        "Figure 4",
        "Execution time speedup of Wizard-SPC over Wizard-INT (1x = same speed, up is better)",
    );

    let interp = measure_all(
        &EngineConfig::interpreter("wizeng-int"),
        scale,
        Instrument::None,
    );

    let configs = CompilerOptions::figure4_configs();
    let mut config_names = Vec::new();
    let mut per_suite: Vec<(&'static str, Vec<bench::SuiteSummary>)> =
        vec![("polybench", vec![]), ("libsodium", vec![]), ("ostrich", vec![])];

    for options in configs {
        let name = options.name.clone();
        let jit = measure_all(
            &EngineConfig::baseline(&name, options),
            scale,
            Instrument::None,
        );
        for (suite_row, suite_name) in per_suite
            .iter_mut()
            .zip(["polybench", "libsodium", "ostrich"])
        {
            let speedups: Vec<f64> = bench::paired(&interp, &jit)
                .filter(|(a, _)| a.suite == suite_name)
                .map(|(a, b)| a.exec_cycles as f64 / b.exec_cycles.max(1) as f64)
                .collect();
            suite_row.1.push(summarize(&speedups));
        }
        config_names.push(name);
    }

    print_suite_table(&config_names, &per_suite);
    println!();
    println!("Each cell: mean speedup [min, max] across the suite's line items.");
    println!("Expected shape (paper): 5x-28x overall; `nok` hurts most, then `nomr`;");
    println!("`nokfold` and `noisel` are small but measurable.");
}
