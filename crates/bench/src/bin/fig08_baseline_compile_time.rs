//! Fig. 8 — compilation time per byte of Wasm code, relative to Wizard-SPC
//! (1.0 = same speed, lower is better).
//!
//! Compile time is real wall-clock time spent by this reproduction's
//! compiler under each design profile, normalized per input byte, exactly as
//! the paper computes it.

use bench::{measure_all, print_suite_table, summarize, summarize_by_suite, BenchReport, Instrument};
use engine::{CodeBackend, EngineConfig};

fn compile_time_per_byte(m: &bench::ItemMeasurement) -> f64 {
    m.compile_wall.as_secs_f64() / m.compiled_wasm_bytes.max(1) as f64
}

fn main() {
    let scale = bench::scale_from_args();
    bench::print_header(
        "Figure 8",
        "Relative compilation time per byte over Wizard-SPC (lower is better)",
    );

    let mut report = BenchReport::new("fig08");
    report.config(bench::scale_label(scale));

    let profiles = spc::all_profiles();
    let wizard = measure_all(
        &EngineConfig::baseline("wizeng-spc", profiles[0].options.clone()),
        scale,
        Instrument::None,
    );

    let mut config_names = Vec::new();
    let mut per_suite: Vec<(&'static str, Vec<bench::SuiteSummary>)> =
        vec![("polybench", vec![]), ("libsodium", vec![]), ("ostrich", vec![])];
    for profile in profiles.iter().skip(1) {
        let run = measure_all(
            &EngineConfig::baseline(profile.name, profile.options.clone()),
            scale,
            Instrument::None,
        );
        for (suite_row, suite_name) in per_suite
            .iter_mut()
            .zip(["polybench", "libsodium", "ostrich"])
        {
            let ratios: Vec<f64> = bench::paired(&wizard, &run)
                .filter(|(a, _)| a.suite == suite_name)
                .map(|(a, b)| compile_time_per_byte(b) / compile_time_per_byte(a).max(1e-12))
                .collect();
            suite_row.1.push(summarize(&ratios));
        }
        config_names.push(profile.name.to_string());
    }
    print_suite_table(&config_names, &per_suite);
    for (suite, summaries) in &per_suite {
        for (name, s) in config_names.iter().zip(summaries) {
            report.metric(&format!("{suite}.{name}.rel_compile_time_per_byte"), s.mean);
        }
    }
    println!();
    println!("Expected shape (paper): wazero is ~3x-4x slower to compile (it lowers through");
    println!("an internal representation first); engines without debug metadata or stackmap");
    println!("bookkeeping compile faster than those with it.");

    // Per-backend code size: the same single-pass translation emitted
    // through each macro-assembler backend, in machine-code bytes per Wasm
    // byte. The virtual ISA reports its per-instruction size estimate; the
    // x86-64 backend reports real encoded bytes.
    println!();
    println!("Code size per backend (machine bytes / Wasm byte, mean [min, max]):");
    let mut backend_names = Vec::new();
    let mut backend_rows: Vec<(&'static str, Vec<bench::SuiteSummary>)> =
        vec![("polybench", vec![]), ("libsodium", vec![]), ("ostrich", vec![])];
    // The `wizard` measurements above already used the (default)
    // virtual-ISA backend, so only the x86-64 run needs to be measured.
    let x64 = measure_all(
        &EngineConfig::baseline("wizeng-spc", profiles[0].options.clone())
            .with_backend(CodeBackend::X64),
        scale,
        Instrument::None,
    );
    for (label, run) in [("virtual-isa", &wizard), ("x86-64", &x64)] {
        let rows = summarize_by_suite(run, |m| {
            m.compiled_machine_bytes as f64 / m.compiled_wasm_bytes.max(1) as f64
        });
        for (suite, summary) in rows {
            let row = backend_rows
                .iter_mut()
                .find(|(name, _)| *name == suite)
                .expect("summarize_by_suite only yields known suites");
            row.1.push(summary);
        }
        backend_names.push(label.to_string());
    }
    print_suite_table(&backend_names, &backend_rows);
    for (suite, summaries) in &backend_rows {
        for (label, s) in backend_names.iter().zip(summaries) {
            report.metric(
                &format!("{suite}.{label}.machine_bytes_per_wasm_byte"),
                s.mean,
            );
        }
    }
    report.write();
}
