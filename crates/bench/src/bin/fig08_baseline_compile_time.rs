//! Fig. 8 — compilation time per byte of Wasm code, relative to Wizard-SPC
//! (1.0 = same speed, lower is better).
//!
//! Compile time is real wall-clock time spent by this reproduction's
//! compiler under each design profile, normalized per input byte, exactly as
//! the paper computes it.

use bench::{measure_all, print_suite_table, summarize, Instrument};
use engine::EngineConfig;

fn compile_time_per_byte(m: &bench::ItemMeasurement) -> f64 {
    m.compile_wall.as_secs_f64() / m.compiled_wasm_bytes.max(1) as f64
}

fn main() {
    let scale = bench::scale_from_args();
    bench::print_header(
        "Figure 8",
        "Relative compilation time per byte over Wizard-SPC (lower is better)",
    );

    let profiles = spc::all_profiles();
    let wizard = measure_all(
        &EngineConfig::baseline("wizeng-spc", profiles[0].options.clone()),
        scale,
        Instrument::None,
    );

    let mut config_names = Vec::new();
    let mut per_suite: Vec<(&'static str, Vec<bench::SuiteSummary>)> =
        vec![("polybench", vec![]), ("libsodium", vec![]), ("ostrich", vec![])];
    for profile in profiles.iter().skip(1) {
        let run = measure_all(
            &EngineConfig::baseline(profile.name, profile.options.clone()),
            scale,
            Instrument::None,
        );
        for (suite_row, suite_name) in per_suite
            .iter_mut()
            .zip(["polybench", "libsodium", "ostrich"])
        {
            let ratios: Vec<f64> = bench::paired(&wizard, &run)
                .filter(|(a, _)| a.suite == suite_name)
                .map(|(a, b)| compile_time_per_byte(b) / compile_time_per_byte(a).max(1e-12))
                .collect();
            suite_row.1.push(summarize(&ratios));
        }
        config_names.push(profile.name.to_string());
    }
    print_suite_table(&config_names, &per_suite);
    println!();
    println!("Expected shape (paper): wazero is ~3x-4x slower to compile (it lowers through");
    println!("an internal representation first); engines without debug metadata or stackmap");
    println!("bookkeeping compile faster than those with it.");
}
