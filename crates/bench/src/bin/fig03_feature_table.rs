//! Fig. 3 — the feature table of the six baseline compilers studied.
//!
//! Prints the same rows as the paper's Fig. 3 from the reproduction's design
//! profiles: name, implementation language, year, feature letters, and
//! description.

fn main() {
    bench::print_header(
        "Figure 3",
        "WebAssembly baseline compilers used in this study",
    );
    println!(
        "{:<14} {:<8} {:<6} {:<22} Description",
        "Name", "Language", "Year", "Features"
    );
    println!("{:-<90}", "");
    for profile in spc::all_profiles() {
        println!(
            "{:<14} {:<8} {:<6} {:<22} {}",
            profile.name,
            profile.language,
            profile.year,
            profile.feature_string(),
            profile.description
        );
    }
    println!();
    println!("MR = multiple register allocation, R = register allocation, K = constant tracking,");
    println!("KF = constant folding, ISEL = instruction selection, TAG = value tags,");
    println!("MAP = stackmaps, MV = multi-value.");
}
