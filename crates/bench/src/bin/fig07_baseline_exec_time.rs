//! Fig. 7 — execution time of the other five baseline-compiler design
//! profiles relative to Wizard-SPC (1.0 = same speed, lower is better).

use bench::{measure_all, print_suite_table, summarize, Instrument};
use engine::EngineConfig;

fn main() {
    let scale = bench::scale_from_args();
    bench::print_header(
        "Figure 7",
        "Relative execution time over Wizard-SPC for other baseline compilers (lower is better)",
    );

    let profiles = spc::all_profiles();
    let wizard = measure_all(
        &EngineConfig::baseline("wizeng-spc", profiles[0].options.clone()),
        scale,
        Instrument::None,
    );

    let mut config_names = Vec::new();
    let mut per_suite: Vec<(&'static str, Vec<bench::SuiteSummary>)> =
        vec![("polybench", vec![]), ("libsodium", vec![]), ("ostrich", vec![])];
    for profile in profiles.iter().skip(1) {
        let run = measure_all(
            &EngineConfig::baseline(profile.name, profile.options.clone()),
            scale,
            Instrument::None,
        );
        for (suite_row, suite_name) in per_suite
            .iter_mut()
            .zip(["polybench", "libsodium", "ostrich"])
        {
            let ratios: Vec<f64> = bench::paired(&wizard, &run)
                .filter(|(a, _)| a.suite == suite_name)
                .map(|(a, b)| b.exec_cycles as f64 / a.exec_cycles.max(1) as f64)
                .collect();
            suite_row.1.push(summarize(&ratios));
        }
        config_names.push(profile.name.to_string());
    }
    print_suite_table(&config_names, &per_suite);
    println!();
    println!("Expected shape (paper): differences come from constant tracking and register");
    println!("allocation; wazero (no constants, single-register) produces the slowest code,");
    println!("the MR+K+ISEL engines cluster near Wizard-SPC.");
}
