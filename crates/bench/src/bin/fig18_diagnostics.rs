//! FIG 18 (beyond the paper): symbolicated trap diagnostics.
//!
//! A production engine owes its embedder a usable answer to "what just
//! crashed?" — a backtrace of `(function, name, bytecode offset)` frames —
//! and that answer must not depend on which tier happened to be executing
//! when the trap fired. This figure gates three properties of the
//! diagnostics subsystem:
//!
//! 1. **Equivalence** — a battery of trap workloads (call chains,
//!    `call_indirect` dispatch failures, mid-loop traps, deep recursion)
//!    runs under the full tier×backend matrix, each configuration both
//!    plain and with OSR forced at every loop back edge. Every run of a
//!    workload must produce the *identical* backtrace (frames compare by
//!    function, name, and offset; the executing tier is recorded but
//!    excluded).
//! 2. **Symbolication** — the workloads carry `name` sections lowered from
//!    their WAT `$identifiers`; at least 90% of all backtrace frames across
//!    the battery must resolve to a debug name.
//! 3. **Overhead** — diagnostics are compile-time (source-map) metadata, so
//!    *non-trapping* execution must not pay for them: total simulated
//!    execution cycles across the real benchmark suites with
//!    `debug_metadata` on may exceed the off configuration by at most 2%.

use bench::{measure_item, print_header, BenchReport, Instrument};
use engine::{
    Engine, EngineConfig, Imports, Instrumentation, ResourceLimits, TrapInfo,
};
use machine::values::WasmValue;
use spc::CompilerOptions;
use wasm::Module;

/// One trap workload: a named module, an entry point, and arguments that
/// make it trap deterministically.
struct TrapWorkload {
    label: &'static str,
    module: Module,
    entry: &'static str,
    args: Vec<WasmValue>,
    /// A call-depth ceiling for the recursion workload (the depth check is
    /// tier-independent; the default value-stack capacity check is not).
    call_depth: Option<usize>,
}

fn parse(label: &str, text: &str) -> Module {
    wasm::wat::parse_module(text).unwrap_or_else(|e| panic!("{label}: {e:?}"))
}

fn workloads() -> Vec<TrapWorkload> {
    let chain = r#"
        (module $chain
          (func $div (param $a i32) (param $b i32) (result i32)
            local.get $a local.get $b i32.div_s)
          (func $middle (param $n i32) (result i32)
            local.get $n i32.const 0 call $div)
          (func $main (export "main") (param $n i32) (result i32)
            local.get $n call $middle))
    "#;
    let dispatch = r#"
        (module $dispatch
          (type $binop (func (param i32 i32) (result i32)))
          (type $nullary (func (result i32)))
          (table 10 funcref)
          (elem (offset (i32.const 0)) func $add $answer)
          (func $add (type $binop) local.get 0 local.get 1 i32.add)
          (func $answer (type $nullary) i32.const 42)
          (func $route (export "route") (param $which i32) (param $a i32) (param $b i32) (result i32)
            local.get $a local.get $b local.get $which
            call_indirect (type $binop)))
    "#;
    let hot = r#"
        (module $hot
          (func $kernel (export "kernel") (param $n i32) (result i32)
            (local $acc i32)
            block
              loop
                local.get $n
                i32.eqz
                br_if 1
                local.get $acc
                i32.const 1000
                local.get $n
                i32.const 1
                i32.sub
                i32.div_s
                i32.add
                local.set $acc
                local.get $n
                i32.const 1
                i32.sub
                local.set $n
                br 0
              end
            end
            local.get $acc))
    "#;
    let deep = r#"
        (module $deep
          (func $spin (export "spin") (param $n i32) (result i32)
            local.get $n i32.const 1 i32.add call $spin))
    "#;
    vec![
        TrapWorkload {
            label: "call-chain div-by-zero",
            module: parse("chain", chain),
            entry: "main",
            args: vec![WasmValue::I32(7)],
            call_depth: None,
        },
        TrapWorkload {
            label: "call_indirect signature mismatch",
            module: parse("dispatch", dispatch),
            entry: "route",
            args: vec![WasmValue::I32(1), WasmValue::I32(3), WasmValue::I32(4)],
            call_depth: None,
        },
        TrapWorkload {
            label: "call_indirect uninitialized element",
            module: parse("dispatch", dispatch),
            entry: "route",
            args: vec![WasmValue::I32(7), WasmValue::I32(3), WasmValue::I32(4)],
            call_depth: None,
        },
        TrapWorkload {
            label: "call_indirect out of bounds",
            module: parse("dispatch", dispatch),
            entry: "route",
            args: vec![WasmValue::I32(10), WasmValue::I32(3), WasmValue::I32(4)],
            call_depth: None,
        },
        TrapWorkload {
            label: "mid-loop trap after 10k back edges",
            module: parse("hot", hot),
            entry: "kernel",
            args: vec![WasmValue::I32(10_000)],
            call_depth: None,
        },
        TrapWorkload {
            label: "deep recursion (stack exhaustion)",
            module: parse("deep", deep),
            entry: "spin",
            args: vec![WasmValue::I32(0)],
            call_depth: Some(100),
        },
    ]
}

/// Runs one workload under `config` and returns the trap diagnostics.
fn run_trap(config: EngineConfig, w: &TrapWorkload) -> TrapInfo {
    let config = match w.call_depth {
        Some(depth) => config.with_limits(ResourceLimits {
            call_depth: Some(depth),
            ..ResourceLimits::unlimited()
        }),
        None => config,
    };
    let engine = Engine::new(config);
    let mut instance = engine
        .instantiate(&w.module, Imports::new(), Instrumentation::none())
        .expect("workload instantiates");
    let result = engine.call_export(&mut instance, w.entry, &w.args);
    assert!(result.is_err(), "{}: workload must trap", w.label);
    instance
        .last_trap()
        .cloned()
        .unwrap_or_else(|| panic!("{}: no diagnostics captured", w.label))
}

fn main() {
    let scale = bench::scale_from_args();
    print_header(
        "Figure 18 (beyond the paper)",
        "Trap diagnostics: cross-tier backtrace equivalence, symbolication, and overhead",
    );
    let mut report = BenchReport::new("fig18");
    report.config(bench::scale_label(scale));

    // ---- Part 1+2: equivalence across the matrix, symbolication coverage.
    let configs = conform::runner::all_configs();
    let battery = workloads();
    let mut mismatches = 0usize;
    let mut runs = 0usize;
    let mut frames_total = 0usize;
    let mut frames_named = 0usize;
    println!("\nBacktrace equivalence over {} configurations (plain + forced OSR):", configs.len());
    for w in &battery {
        let reference = run_trap(EngineConfig::interpreter("fig18-ref"), w);
        frames_total += reference.backtrace.frames().len();
        frames_named += reference
            .backtrace
            .frames()
            .iter()
            .filter(|f| f.name.is_some())
            .count();
        let mut workload_mismatches = 0usize;
        for config in &configs {
            for variant in [config.clone(), config.clone().with_osr(0)] {
                runs += 1;
                if run_trap(variant, w) != reference {
                    workload_mismatches += 1;
                }
            }
        }
        mismatches += workload_mismatches;
        println!(
            "  {:<38} {:>2} frames (+{} truncated)  {}",
            w.label,
            reference.backtrace.frames().len(),
            reference.backtrace.truncated(),
            if workload_mismatches == 0 { "identical" } else { "DIVERGED" },
        );
    }
    let coverage = frames_named as f64 / frames_total.max(1) as f64;
    println!(
        "\nsymbolication: {frames_named}/{frames_total} frames named ({:.1}%)",
        coverage * 100.0
    );
    report.metric("matrix_configs", configs.len() as f64);
    report.metric("trap_workloads", battery.len() as f64);
    report.metric("equivalence_runs", runs as f64);
    report.metric("equivalence_mismatches", mismatches as f64);
    report.metric("symbolication_coverage", coverage);

    // ---- Part 3: non-trapping overhead of carrying debug metadata.
    let debug_on = EngineConfig::baseline("spc-debug", CompilerOptions::allopt());
    let debug_off = EngineConfig::baseline(
        "spc-nodebug",
        CompilerOptions {
            name: "nodebug".to_string(),
            debug_metadata: false,
            ..CompilerOptions::allopt()
        },
    );
    let mut cycles_on = 0u64;
    let mut cycles_off = 0u64;
    let mut checksum_mismatches = 0usize;
    for suite in suites::all_suites(scale) {
        for item in &suite.items {
            let on = measure_item(&debug_on, item, Instrument::None);
            let off = measure_item(&debug_off, item, Instrument::None);
            if on.checksum != off.checksum {
                eprintln!(
                    "CHECKSUM MISMATCH {}/{}: {} vs {}",
                    on.suite, on.name, on.checksum, off.checksum
                );
                checksum_mismatches += 1;
            }
            cycles_on += on.exec_cycles;
            cycles_off += off.exec_cycles;
        }
    }
    let overhead_pct = 100.0 * (cycles_on as f64 / cycles_off.max(1) as f64 - 1.0);
    println!(
        "\nnon-trapping suite cycles: debug on {cycles_on}, off {cycles_off} ({overhead_pct:+.2}% overhead)"
    );
    report.metric("suite_cycles_debug_on", cycles_on as f64);
    report.metric("suite_cycles_debug_off", cycles_off as f64);
    report.metric("diagnostics_overhead_pct", overhead_pct);

    let pass = mismatches == 0
        && coverage >= 0.90
        && overhead_pct <= 2.0
        && checksum_mismatches == 0
        && runs > 0;
    report.metric("pass", if pass { 1.0 } else { 0.0 });
    report.write();
    println!();
    if mismatches > 0 {
        println!("FAIL: {mismatches} of {runs} runs produced a diverging backtrace");
        std::process::exit(1);
    }
    if coverage < 0.90 {
        println!("FAIL: symbolication coverage {:.1}% < 90%", coverage * 100.0);
        std::process::exit(1);
    }
    if checksum_mismatches > 0 {
        println!("FAIL: {checksum_mismatches} checksum mismatches between debug on/off");
        std::process::exit(1);
    }
    if overhead_pct > 2.0 {
        println!("FAIL: diagnostics overhead {overhead_pct:.2}% > 2%");
        std::process::exit(1);
    }
    println!("PASS");
}
