//! FIG 11 (beyond the paper): the compilation pipeline at serving scale.
//!
//! Two experiments over the three suites:
//!
//! 1. **Compile-throughput scaling** — eagerly compile every suite module
//!    with the pipeline at 1, 2, 4, and 8 workers and report wall-clock
//!    compile throughput (compiled Wasm MB/s) and speedup over 1 worker.
//!    On a single-core host the curve is flat; the point of the column is
//!    that the *output* is identical while the wall-clock shrinks with
//!    available cores.
//! 2. **Cold vs. warm instantiation** — instantiate every module twice
//!    against a shared keyed code cache and compare instantiation latency.
//!    The warm pass skips validation, preparation, and compilation (the
//!    cache hit is observable in the metrics), which is the serve-many-
//!    requests scenario the cache exists for. The warm pass still pays the
//!    content-hash (an O(module size) encode), so the ratio understates
//!    what a serving loop with a precomputed `CacheKey` would see.
//!
//! Run with `--full` for paper-sized workloads; the default is the smoke
//! scale used by CI.

use bench::{print_header, scale_from_args, summarize, BenchReport};
use engine::{CodeCache, Engine, EngineConfig, Imports, Instrumentation};
use spc::CompilerOptions;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let scale = scale_from_args();
    print_header(
        "FIG 11 (beyond the paper)",
        "Parallel compile pipeline scaling and keyed code cache",
    );
    let suites = suites::all_suites(scale);
    let mut report = BenchReport::new("fig11");
    report.config(bench::scale_label(scale));

    // ---- Part 1: compile-throughput scaling over worker counts ----------
    println!("\n[1] eager-compile scaling over all {} modules:",
        suites.iter().map(|s| s.len()).sum::<usize>());
    println!(
        "{:<8} | {:>12} | {:>14} | {:>8}",
        "workers", "wall (ms)", "thrpt (MB/s)", "speedup"
    );
    println!("{:-<8}-+-{:-<12}-+-{:-<14}-+-{:-<8}", "", "", "", "");
    let mut baseline_wall = None;
    for workers in [1usize, 2, 4, 8] {
        let engine = Engine::new(
            EngineConfig::baseline("wizeng-spc", CompilerOptions::allopt())
                .with_compile_workers(workers),
        );
        let start = Instant::now();
        let mut wasm_bytes = 0u64;
        let mut functions = 0u32;
        for suite in &suites {
            for item in &suite.items {
                let instance = engine
                    .instantiate(&item.module, Imports::new(), Instrumentation::none())
                    .expect("suite modules instantiate");
                wasm_bytes += instance.metrics.compiled_wasm_bytes;
                functions += instance.metrics.functions_compiled;
            }
        }
        let wall = start.elapsed();
        let baseline = *baseline_wall.get_or_insert(wall);
        println!(
            "{:<8} | {:>12.2} | {:>14.2} | {:>7.2}x",
            workers,
            wall.as_secs_f64() * 1e3,
            wasm_bytes as f64 / 1e6 / wall.as_secs_f64().max(1e-9),
            baseline.as_secs_f64() / wall.as_secs_f64().max(1e-9),
        );
        report.metric(
            &format!("workers{workers}.compile_throughput_mb_s"),
            wasm_bytes as f64 / 1e6 / wall.as_secs_f64().max(1e-9),
        );
        assert!(functions > 0, "scaling run compiled nothing");
    }

    // ---- Part 2: cold vs. warm instantiation under the code cache -------
    println!("\n[2] cold vs. warm instantiation latency (shared keyed cache):");
    println!(
        "{:<12} | {:>12} | {:>12} | {:>8}",
        "suite", "cold (us)", "warm (us)", "ratio"
    );
    println!("{:-<12}-+-{:-<12}-+-{:-<12}-+-{:-<8}", "", "", "", "");
    let cache = Arc::new(CodeCache::new());
    let engine = Engine::new(EngineConfig::baseline("wizeng-spc", CompilerOptions::allopt()))
        .with_code_cache(Arc::clone(&cache));
    let mut items_deduped = 0u32;
    let mut traps_total = 0u64;
    for suite in &suites {
        let mut cold_us = Vec::new();
        let mut warm_us = Vec::new();
        for item in &suite.items {
            let start = Instant::now();
            let cold = engine
                .instantiate(&item.module, Imports::new(), Instrumentation::none())
                .expect("cold instantiation");
            cold_us.push(start.elapsed().as_secs_f64() * 1e6);
            // Some generated line items encode to byte-identical modules;
            // content hashing dedupes them, so even a first instantiation
            // can hit. Count rather than forbid it.
            if cold.metrics.cache_hit {
                items_deduped += 1;
            }

            let start = Instant::now();
            let mut warm = engine
                .instantiate(&item.module, Imports::new(), Instrumentation::none())
                .expect("warm instantiation");
            warm_us.push(start.elapsed().as_secs_f64() * 1e6);
            assert!(warm.metrics.cache_hit, "second instantiation hits the cache");
            assert_eq!(
                warm.metrics.functions_compiled, 0,
                "a warm instantiation compiles nothing"
            );
            // The per-instance metrics carry the cache counters too, so a
            // harness can report cache behavior without the cache handle.
            assert!(warm.metrics.cache_hits > cold.metrics.cache_hits);
            assert!(
                warm.metrics.cache_entries > 0,
                "cache size is visible through RunMetrics"
            );
            // Execute the warm instance once: cache-served code must run the
            // suite cleanly, and RunMetrics' trap accounting proves it — a
            // suite item that starts trapping shows up in the report as a
            // nonzero `exec.traps_total`, not as a silently wrong checksum.
            engine
                .call_export(&mut warm, suites::BenchmarkItem::ENTRY, &[])
                .expect("cache-served instance executes");
            traps_total += warm.metrics.traps;
        }
        let cold = summarize(&cold_us);
        let warm = summarize(&warm_us);
        println!(
            "{:<12} | {:>12.1} | {:>12.1} | {:>7.1}x",
            suite.name,
            cold.mean,
            warm.mean,
            cold.mean / warm.mean.max(1e-9),
        );
        report.metric(&format!("{}.cold_instantiate_us", suite.name), cold.mean);
        report.metric(&format!("{}.warm_instantiate_us", suite.name), warm.mean);
    }
    let stats = cache.stats();
    report.metric("exec.traps_total", traps_total as f64);
    assert_eq!(traps_total, 0, "suite execution must be trap-free");
    report.metric("cache.entries", stats.entries as f64);
    report.metric("cache.hits", stats.hits as f64);
    report.metric("cache.misses", stats.misses as f64);
    report.metric(
        "cache.resident_machine_bytes",
        stats.resident_machine_bytes as f64,
    );
    report.write();
    println!(
        "\ncache: {} unique modules, {} hits, {} misses, {} KiB resident code \
         ({items_deduped} line items were byte-identical to an earlier one)",
        stats.entries,
        stats.hits,
        stats.misses,
        stats.resident_machine_bytes / 1024,
    );
}
