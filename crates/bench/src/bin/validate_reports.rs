//! Validates every `BENCH_*.json` in the working directory (or the
//! directories given as arguments) against the shared report schema, every
//! `TRACE_*.json` as well-formed Chrome trace JSON, and every
//! `ACCESS_LOG_*.jsonl` as a serving access log (one self-contained JSON
//! record per line, in the `serve::access_log` schema). CI runs this after
//! the figure gates so a drifting emitter fails the build instead of
//! silently corrupting the perf trajectory.
//!
//! Exits non-zero if any file fails, or if no report is found at all — an
//! empty sweep almost always means the gates never ran.

use bench::report::{parse_json, validate_report_json, JsonValue};
use std::path::{Path, PathBuf};

/// Metrics the diagnostics figure must always report, whatever its gate
/// says: the equivalence sweep's size and failure count, the symbolication
/// fraction, and the measured overhead.
const FIG18_REQUIRED_METRICS: [&str; 5] = [
    "equivalence_runs",
    "equivalence_mismatches",
    "symbolication_coverage",
    "diagnostics_overhead_pct",
    "pass",
];

/// Validates one access-log line against the `serve::access_log` schema.
fn validate_access_log_line(line: &str) -> Result<(), String> {
    let doc = parse_json(line)?;
    for field in ["request", "app", "worker", "latency_us", "instantiate_us", "exec_cycles"] {
        if doc.get(field).and_then(JsonValue::as_number).is_none() {
            return Err(format!("missing numeric field {field:?}"));
        }
    }
    for field in ["warm", "deadline_expired"] {
        if !matches!(doc.get(field), Some(JsonValue::Bool(_))) {
            return Err(format!("missing boolean field {field:?}"));
        }
    }
    for field in ["fuel_consumed", "deadline_overshoot_epochs"] {
        match doc.get(field) {
            Some(JsonValue::Null | JsonValue::Number(_)) => {}
            _ => return Err(format!("field {field:?} must be a number or null")),
        }
    }
    let status = doc
        .get("status")
        .and_then(JsonValue::as_str)
        .ok_or("missing string field \"status\"")?;
    match status {
        "ok" => Ok(()),
        "rejected" => doc
            .get("reject_reason")
            .and_then(JsonValue::as_str)
            .map(|_| ())
            .ok_or_else(|| "rejected record missing string \"reject_reason\"".to_string()),
        "trap" => {
            let trap = doc
                .get("trap")
                .filter(|t| t.as_object().is_some())
                .ok_or("trap record missing object field \"trap\"")?;
            trap.get("reason")
                .and_then(JsonValue::as_str)
                .ok_or("trap missing string field \"reason\"")?;
            let frames = trap
                .get("frames")
                .and_then(JsonValue::as_array)
                .ok_or("trap missing array field \"frames\"")?;
            for (i, frame) in frames.iter().enumerate() {
                for field in ["func", "offset"] {
                    if frame.get(field).and_then(JsonValue::as_number).is_none() {
                        return Err(format!("frame {i} missing numeric field {field:?}"));
                    }
                }
                if frame.get("tier").and_then(JsonValue::as_str).is_none() {
                    return Err(format!("frame {i} missing string field \"tier\""));
                }
                match frame.get("name") {
                    Some(JsonValue::Null | JsonValue::String(_)) => {}
                    _ => return Err(format!("frame {i}: \"name\" must be a string or null")),
                }
            }
            Ok(())
        }
        other => Err(format!("unknown status {other:?}")),
    }
}

fn validate_access_log(text: &str) -> Result<usize, String> {
    let mut lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate_access_log_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        lines += 1;
    }
    if lines == 0 {
        return Err("access log holds no records".to_string());
    }
    Ok(lines)
}

fn validate_trace_json(text: &str) -> Result<usize, String> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .ok_or("missing array field \"traceEvents\"")?;
    for (i, event) in events.iter().enumerate() {
        let phase = event
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i} missing string field \"ph\""))?;
        // "C" is the counter phase an overflowed ring reports its dropped
        // events with.
        if !matches!(phase, "M" | "X" | "i" | "B" | "E" | "C") {
            return Err(format!("event {i} has unknown phase {phase:?}"));
        }
        if phase != "M" && event.get("ts").and_then(JsonValue::as_number).is_none() {
            return Err(format!("event {i} missing numeric field \"ts\""));
        }
    }
    Ok(events.len())
}

fn main() {
    let dirs: Vec<PathBuf> = {
        let args: Vec<PathBuf> = std::env::args().skip(1).map(PathBuf::from).collect();
        if args.is_empty() {
            vec![PathBuf::from(".")]
        } else {
            args
        }
    };

    let mut checked = 0usize;
    let mut failures = Vec::new();
    for dir in &dirs {
        let entries = match std::fs::read_dir(dir) {
            Ok(entries) => entries,
            Err(e) => {
                failures.push(format!("{}: unreadable directory: {e}", dir.display()));
                continue;
            }
        };
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
                ((name.starts_with("BENCH_") || name.starts_with("TRACE_"))
                    && name.ends_with(".json"))
                    || (name.starts_with("ACCESS_LOG_") && name.ends_with(".jsonl"))
            })
            .collect();
        paths.sort();
        for path in paths {
            checked += 1;
            match check_one(&path) {
                Ok(summary) => println!("ok   {}: {summary}", path.display()),
                Err(e) => {
                    println!("FAIL {}: {e}", path.display());
                    failures.push(format!("{}: {e}", path.display()));
                }
            }
        }
    }

    if checked == 0 {
        eprintln!("no BENCH_*.json, TRACE_*.json, or ACCESS_LOG_*.jsonl found in {dirs:?}");
        std::process::exit(1);
    }
    println!("{checked} report(s) checked, {} failure(s)", failures.len());
    if !failures.is_empty() {
        std::process::exit(1);
    }
}

fn check_one(path: &Path) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
    if name.starts_with("TRACE_") {
        let events = validate_trace_json(&text)?;
        Ok(format!("{events} trace events"))
    } else if name.starts_with("ACCESS_LOG_") {
        let lines = validate_access_log(&text)?;
        Ok(format!("{lines} access-log records"))
    } else {
        validate_report_json(&text)?;
        let doc = parse_json(&text)?;
        let metrics = doc.get("metrics").and_then(JsonValue::as_object);
        if name == "BENCH_fig18.json" {
            let metrics = metrics.ok_or("missing metrics object")?;
            for required in FIG18_REQUIRED_METRICS {
                if !metrics.contains_key(required) {
                    return Err(format!("fig18 report missing metric {required:?}"));
                }
            }
            let coverage = doc
                .get("metrics")
                .and_then(|m| m.get("symbolication_coverage"))
                .and_then(JsonValue::as_number)
                .ok_or("symbolication_coverage must be a number")?;
            if !(0.0..=1.0).contains(&coverage) {
                return Err(format!("symbolication_coverage {coverage} outside [0, 1]"));
            }
        }
        Ok(format!("{} metrics", metrics.map_or(0, |m| m.len())))
    }
}
