//! Validates every `BENCH_*.json` in the working directory (or the
//! directories given as arguments) against the shared report schema, and
//! every `TRACE_*.json` as well-formed Chrome trace JSON. CI runs this after
//! the figure gates so a drifting emitter fails the build instead of
//! silently corrupting the perf trajectory.
//!
//! Exits non-zero if any file fails, or if no report is found at all — an
//! empty sweep almost always means the gates never ran.

use bench::report::{parse_json, validate_report_json, JsonValue};
use std::path::{Path, PathBuf};

fn validate_trace_json(text: &str) -> Result<usize, String> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .ok_or("missing array field \"traceEvents\"")?;
    for (i, event) in events.iter().enumerate() {
        let phase = event
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i} missing string field \"ph\""))?;
        // "C" is the counter phase an overflowed ring reports its dropped
        // events with.
        if !matches!(phase, "M" | "X" | "i" | "B" | "E" | "C") {
            return Err(format!("event {i} has unknown phase {phase:?}"));
        }
        if phase != "M" && event.get("ts").and_then(JsonValue::as_number).is_none() {
            return Err(format!("event {i} missing numeric field \"ts\""));
        }
    }
    Ok(events.len())
}

fn main() {
    let dirs: Vec<PathBuf> = {
        let args: Vec<PathBuf> = std::env::args().skip(1).map(PathBuf::from).collect();
        if args.is_empty() {
            vec![PathBuf::from(".")]
        } else {
            args
        }
    };

    let mut checked = 0usize;
    let mut failures = Vec::new();
    for dir in &dirs {
        let entries = match std::fs::read_dir(dir) {
            Ok(entries) => entries,
            Err(e) => {
                failures.push(format!("{}: unreadable directory: {e}", dir.display()));
                continue;
            }
        };
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
                (name.starts_with("BENCH_") || name.starts_with("TRACE_"))
                    && name.ends_with(".json")
            })
            .collect();
        paths.sort();
        for path in paths {
            checked += 1;
            match check_one(&path) {
                Ok(summary) => println!("ok   {}: {summary}", path.display()),
                Err(e) => {
                    println!("FAIL {}: {e}", path.display());
                    failures.push(format!("{}: {e}", path.display()));
                }
            }
        }
    }

    if checked == 0 {
        eprintln!("no BENCH_*.json or TRACE_*.json found in {dirs:?}");
        std::process::exit(1);
    }
    println!("{checked} report(s) checked, {} failure(s)", failures.len());
    if !failures.is_empty() {
        std::process::exit(1);
    }
}

fn check_one(path: &Path) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
    if name.starts_with("TRACE_") {
        let events = validate_trace_json(&text)?;
        Ok(format!("{events} trace events"))
    } else {
        validate_report_json(&text)?;
        let metrics = parse_json(&text)
            .ok()
            .and_then(|doc| doc.get("metrics").and_then(|m| m.as_object().map(|o| o.len())))
            .unwrap_or(0);
        Ok(format!("{metrics} metrics"))
    }
}
