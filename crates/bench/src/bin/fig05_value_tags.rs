//! Fig. 5 — execution time of the value-tag configurations relative to a
//! configuration with tags disabled entirely (`notags`).
//!
//! Configurations: eagertags, eagertags-o (operands only), eagertags-l
//! (locals only), on-demand (the default), lazytags. Lower is better;
//! 1.0 means no overhead over `notags`.

use bench::{measure_all, print_suite_table, summarize, Instrument};
use engine::EngineConfig;
use spc::CompilerOptions;

fn main() {
    let scale = bench::scale_from_args();
    bench::print_header(
        "Figure 5",
        "Execution time of tagging configurations relative to notags (1.0 = no overhead, lower is better)",
    );

    let configs = CompilerOptions::figure5_configs();
    let notags = measure_all(
        &EngineConfig::baseline("notags", configs[0].clone()),
        scale,
        Instrument::None,
    );

    let mut config_names = Vec::new();
    let mut per_suite: Vec<(&'static str, Vec<bench::SuiteSummary>)> =
        vec![("polybench", vec![]), ("libsodium", vec![]), ("ostrich", vec![])];

    for options in configs.into_iter().skip(1) {
        let name = options.name.clone();
        let run = measure_all(
            &EngineConfig::baseline(&name, options),
            scale,
            Instrument::None,
        );
        for (suite_row, suite_name) in per_suite
            .iter_mut()
            .zip(["polybench", "libsodium", "ostrich"])
        {
            let ratios: Vec<f64> = bench::paired(&notags, &run)
                .filter(|(a, _)| a.suite == suite_name)
                .map(|(a, b)| b.exec_cycles as f64 / a.exec_cycles.max(1) as f64)
                .collect();
            suite_row.1.push(summarize(&ratios));
        }
        config_names.push(name);
    }

    print_suite_table(&config_names, &per_suite);
    println!();
    println!("Expected shape (paper): eager tagging costs ~2.4x-3.3x, mostly from operand");
    println!("stack tags; on-demand is within a few percent of notags; lazytags is");
    println!("marginally better still.");
}
