//! Fig. 6 — overhead of the branch monitor under three configurations:
//! `int` (interpreter probes), `jit` (baseline compiler, unoptimized runtime
//! probes), and `optjit` (baseline compiler, intrinsified probes).
//!
//! Overhead is reported the way the paper does: the increase in main
//! execution time normalized to the *interpreter's* uninstrumented execution
//! time (0.0 = free, 1.0 = doubles the interpreter's time). The renormalized
//! JIT-relative numbers are printed as well.

use bench::{measure_all, print_suite_table, summarize, Instrument};
use engine::EngineConfig;
use spc::{CompilerOptions, ProbeMode};

fn main() {
    let scale = bench::scale_from_args();
    bench::print_header(
        "Figure 6",
        "Branch-monitor probe overhead relative to interpreter execution time (lower is better)",
    );

    let interp_plain = measure_all(
        &EngineConfig::interpreter("wizeng-int"),
        scale,
        Instrument::None,
    );
    let interp_mon = measure_all(
        &EngineConfig::interpreter("wizeng-int"),
        scale,
        Instrument::BranchMonitor,
    );
    let jit_options = CompilerOptions {
        probe_mode: ProbeMode::Runtime,
        ..CompilerOptions::allopt()
    };
    let jit_plain = measure_all(
        &EngineConfig::baseline("wizeng-spc", CompilerOptions::allopt()),
        scale,
        Instrument::None,
    );
    let jit_mon = measure_all(
        &EngineConfig::baseline("jit", jit_options),
        scale,
        Instrument::BranchMonitor,
    );
    let optjit_mon = measure_all(
        &EngineConfig::baseline("optjit", CompilerOptions::allopt()),
        scale,
        Instrument::BranchMonitor,
    );

    let config_names = vec!["int".to_string(), "jit".to_string(), "optjit".to_string()];
    let mut per_suite: Vec<(&'static str, Vec<bench::SuiteSummary>)> =
        vec![("polybench", vec![]), ("libsodium", vec![]), ("ostrich", vec![])];
    for (suite_row, suite_name) in per_suite
        .iter_mut()
        .zip(["polybench", "libsodium", "ostrich"])
    {
        for (plain, monitored) in [
            (&interp_plain, &interp_mon),
            (&jit_plain, &jit_mon),
            (&jit_plain, &optjit_mon),
        ] {
            let overheads: Vec<f64> = interp_plain
                .iter()
                .zip(plain.iter())
                .zip(monitored.iter())
                .filter(|((ibase, _), _)| ibase.suite == suite_name)
                .map(|((ibase, base), with)| {
                    (with.exec_cycles as f64 - base.exec_cycles as f64)
                        / ibase.exec_cycles.max(1) as f64
                })
                .collect();
            suite_row.1.push(summarize(&overheads));
        }
    }
    print_suite_table(&config_names, &per_suite);

    println!();
    println!("Renormalized to JIT execution time (the paper's in-text numbers):");
    for (name, monitored) in [("jit", &jit_mon), ("optjit", &optjit_mon)] {
        let ratios: Vec<f64> = bench::paired(&jit_plain, monitored)
            .map(|(base, with)| {
                (with.exec_cycles as f64 - base.exec_cycles as f64)
                    / base.exec_cycles.max(1) as f64
            })
            .collect();
        let s = summarize(&ratios);
        println!(
            "  {name:<8} overhead vs JIT: mean {:.2}x  [min {:.2}, max {:.2}]",
            s.mean, s.min, s.max
        );
    }
    println!();
    println!("Expected shape (paper): int imposes ~20-49% of interpreter time; jit is");
    println!("similar or slightly lower; optjit reduces the overhead by roughly 10x.");
}
