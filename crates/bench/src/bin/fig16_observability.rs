//! FIG 16 (beyond the paper): the telemetry layer end to end.
//!
//! Three experiments over the observability stack, each with a gate:
//!
//! 1. **Overhead** — per tier, run the fueled suite sweep three ways: the
//!    fig14 metered baseline, the same configuration re-run with telemetry
//!    still disabled, and once more with telemetry enabled. The gate is on
//!    simulated execution cycles, the reproduction's deterministic clock:
//!    disabled must stay within 2% of the baseline and enabled within 10%.
//!    The telemetry layer's contract is stronger — samples and events charge
//!    *zero* simulated cycles, so both ratios should be exactly 1.0 — which
//!    makes this gate a regression tripwire: it only fires if someone wires
//!    an event into a cycle-charging path. Wall-clock ratios are printed for
//!    context but not gated (they measure host noise, not the design).
//!
//! 2. **Serving trace** — a fig15-style batch through the `serve` stack with
//!    a shared telemetry sink attached; asserts the trace actually covers
//!    the request lifecycle (compile, cache, pool checkout, serve
//!    enqueue/start/finish) and writes the Chrome trace-event JSON to
//!    `TRACE_fig16.json` (load it at `chrome://tracing` or ui.perfetto.dev).
//!
//! 3. **Profiler attribution** — a module with one hot loop and one cold
//!    helper, run under every tier × backend with an epoch ticker driving
//!    the sampling profiler. The gate requires ≥ 90% of samples to land on
//!    the hot function in every configuration, and the dominant tier label
//!    to match the configuration's tier.
//!
//! Run with `--full` for paper-sized workloads in part 1; the default is the
//! smoke scale used by CI.

use bench::{measure_all_fueled, print_header, scale_from_args, BenchReport, Instrument};
use engine::{CodeBackend, Engine, EngineConfig, Imports, Instrumentation, Telemetry};
use serve::deadline::EpochTicker;
use serve::{Request, RequestStatus, Server, ServerConfig};
use spc::CompilerOptions;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::Duration;
use telemetry::EventKind;
use wasm::builder::{CodeBuilder, ModuleBuilder};
use wasm::opcode::Opcode;
use wasm::types::{BlockType, FuncType, ValueType};
use wasm::Module;

/// Far above any line item's cost at either scale, so nothing traps.
const AMPLE_FUEL: u64 = u64::MAX / 2;
/// Countdown iterations of the hot loop per `main` call in part 3.
const HOT_ITERS: i32 = 200_000;
/// Part 3 keeps calling `main` until the profiler holds this many samples.
const MIN_SAMPLES: u64 = 24;
/// ... but gives up (and fails the gate) after this many calls.
const MAX_CALLS: usize = 400;

fn tier_configs() -> [(&'static str, EngineConfig); 3] {
    [
        ("int", EngineConfig::interpreter("int")),
        ("spc", EngineConfig::baseline("spc", CompilerOptions::allopt())),
        ("opt", EngineConfig::optimizing("opt")),
    ]
}

/// `cold(n)` does one multiply; `hot(n)` runs an LCG countdown loop `n`
/// times; `main()` calls both and returns the checksum. Function indices are
/// (cold, hot, main) = (0, 1, 2).
fn profile_module() -> Module {
    let mut b = ModuleBuilder::new();
    let cold = {
        let mut c = CodeBuilder::new();
        c.local_get(0).i32_const(3).op(Opcode::I32Mul);
        b.add_func(
            FuncType::new(vec![ValueType::I32], vec![ValueType::I32]),
            vec![],
            c.finish(),
        )
    };
    let hot = {
        let mut c = CodeBuilder::new();
        // local 0 = n (countdown), local 1 = acc.
        c.block(BlockType::Empty)
            .loop_(BlockType::Empty)
            .local_get(0)
            .op(Opcode::I32Eqz)
            .br_if(1)
            .local_get(1)
            .i32_const(1103515245)
            .op(Opcode::I32Mul)
            .i32_const(12345)
            .op(Opcode::I32Add)
            .local_set(1)
            .local_get(0)
            .i32_const(1)
            .op(Opcode::I32Sub)
            .local_set(0)
            .br(0)
            .end()
            .end()
            .local_get(1);
        b.add_func(
            FuncType::new(vec![ValueType::I32], vec![ValueType::I32]),
            vec![ValueType::I32],
            c.finish(),
        )
    };
    let main = {
        let mut c = CodeBuilder::new();
        c.i32_const(7)
            .call(cold)
            .i32_const(HOT_ITERS)
            .call(hot)
            .op(Opcode::I32Add);
        b.add_func(FuncType::new(vec![], vec![ValueType::I32]), vec![], c.finish())
    };
    b.export_func("main", main);
    b.finish()
}

const HOT_FUNC: u32 = 1;

fn main() {
    let scale = scale_from_args();
    print_header(
        "FIG 16 (beyond the paper)",
        "Telemetry: tracing/metrics/profiling overhead, trace coverage, attribution",
    );
    let mut report = BenchReport::new("fig16");
    report.config(bench::scale_label(scale));
    let mut failures = Vec::new();

    // ---- Part 1: overhead of the telemetry layer on execution cycles -----
    println!("\n[1] telemetry overhead on metered execution (exec-cycle ratio vs. baseline):");
    println!(
        "{:<6} | {:<10} | {:>14} | {:>14} | {:>14}",
        "tier", "suite", "disabled", "enabled", "enabled wall"
    );
    println!(
        "{:-<6}-+-{:-<10}-+-{:-<14}-+-{:-<14}-+-{:-<14}",
        "", "", "", "", ""
    );
    for (tier, config) in &tier_configs() {
        let metered = config.clone().with_metering();
        let baseline = measure_all_fueled(&metered, scale, Instrument::None, AMPLE_FUEL);
        let disabled = measure_all_fueled(&metered, scale, Instrument::None, AMPLE_FUEL);
        let enabled = measure_all_fueled(
            &metered.clone().with_telemetry(),
            scale,
            Instrument::None,
            AMPLE_FUEL,
        );
        for (suite, _) in bench::summarize_by_suite(&baseline, |m| m.exec_cycles as f64) {
            let ratio_of = |runs: &[bench::ItemMeasurement]| {
                let pick = |items: &[bench::ItemMeasurement]| {
                    items
                        .iter()
                        .filter(|m| m.suite == suite)
                        .map(|m| m.exec_cycles as f64)
                        .sum::<f64>()
                };
                pick(runs) / pick(&baseline).max(1.0)
            };
            let disabled_ratio = ratio_of(&disabled);
            let enabled_ratio = ratio_of(&enabled);
            let wall = |items: &[bench::ItemMeasurement]| {
                items
                    .iter()
                    .filter(|m| m.suite == suite)
                    .map(|m| m.setup_wall.as_secs_f64())
                    .sum::<f64>()
            };
            let wall_ratio = wall(&enabled) / wall(&baseline).max(1e-12);
            println!(
                "{tier:<6} | {suite:<10} | {disabled_ratio:>13.4}x | {enabled_ratio:>13.4}x | {wall_ratio:>13.2}x"
            );
            report.metric(
                &format!("{tier}.{suite}.disabled_exec_ratio"),
                disabled_ratio,
            );
            report.metric(&format!("{tier}.{suite}.enabled_exec_ratio"), enabled_ratio);
            report.metric(&format!("{tier}.{suite}.enabled_wall_ratio"), wall_ratio);
            if disabled_ratio > 1.02 {
                failures.push(format!(
                    "{tier}/{suite}: disabled-telemetry exec ratio {disabled_ratio:.4} > 1.02"
                ));
            }
            if enabled_ratio > 1.10 {
                failures.push(format!(
                    "{tier}/{suite}: enabled-telemetry exec ratio {enabled_ratio:.4} > 1.10"
                ));
            }
        }
    }

    // ---- Part 2: trace coverage through the serving stack ----------------
    println!("\n[2] request-lifecycle trace through the serving stack:");
    let telemetry = Telemetry::enabled();
    let mut server = Server::new(
        ServerConfig {
            workers: 2,
            telemetry: telemetry.clone(),
            ..ServerConfig::default()
        },
        EngineConfig::baseline("wizeng-spc", CompilerOptions::allopt()),
    );
    let suites = suites::all_suites(suites::Scale::Test);
    let mut apps = Vec::new();
    for item in suites.iter().flat_map(|s| s.items.iter()).take(6) {
        apps.push(
            server
                .register_app(&item.name, suites::BenchmarkItem::ENTRY, item.module.clone())
                .expect("suite modules register"),
        );
    }
    let requests: Vec<Request> = (0..apps.len() * 3)
        .map(|i| Request::to_app(apps[i % apps.len()]))
        .collect();
    let total = requests.len();
    let results = server.run(requests);
    assert!(results.iter().all(|r| matches!(r.status, RequestStatus::Ok(_))));

    let rings = telemetry.drain();
    let mut compile_ends = 0u64;
    let mut cache_lookups = 0u64;
    let mut pool_checkouts = 0u64;
    let (mut enq, mut started, mut finished) = (0u64, 0u64, 0u64);
    for (_, events, _) in &rings {
        for event in events {
            match event.kind {
                EventKind::CompileEnd { .. } => compile_ends += 1,
                EventKind::CacheLookup { .. } => cache_lookups += 1,
                EventKind::PoolCheckout { .. } => pool_checkouts += 1,
                EventKind::ServeEnqueue { .. } => enq += 1,
                EventKind::ServeStart { .. } => started += 1,
                EventKind::ServeFinish { .. } => finished += 1,
                _ => {}
            }
        }
    }
    println!(
        "{} rings, {} compile spans, {} cache lookups, {} pool checkouts, \
         {enq}/{started}/{finished} requests enqueued/started/finished, {} dropped",
        rings.len(),
        compile_ends,
        cache_lookups,
        pool_checkouts,
        telemetry.dropped_events(),
    );
    for (label, value, minimum) in [
        ("compile spans", compile_ends, 1),
        ("cache lookups", cache_lookups, 1),
        ("pool checkouts", pool_checkouts, total as u64),
        ("serve enqueues", enq, total as u64),
        ("serve starts", started, total as u64),
        ("serve finishes", finished, total as u64),
    ] {
        if value < minimum {
            failures.push(format!("trace covers {value} {label}, expected >= {minimum}"));
        }
    }
    report.metric("trace.rings", rings.len() as f64);
    report.metric("trace.compile_spans", compile_ends as f64);
    report.metric("trace.pool_checkouts", pool_checkouts as f64);
    report.metric("trace.serve_finishes", finished as f64);
    report.metric("trace.dropped_events", telemetry.dropped_events() as f64);
    // Per-ring drop counts: a lossy ring means the end of that thread's
    // burst is missing from TRACE_fig16.json, so name the offender.
    for (label, _, dropped) in &rings {
        report.metric(&format!("trace.ring.{label}.dropped"), *dropped as f64);
        if *dropped > 0 {
            println!("  ring '{label}' dropped {dropped} events (trace is lossy)");
        }
    }
    if let Some(metrics) = telemetry.metrics() {
        let snapshot = metrics.snapshot();
        for (name, value) in &snapshot.counters {
            report.metric(&format!("metrics.{name}"), *value as f64);
        }
        for (name, hist) in &snapshot.histograms {
            report.metric(&format!("metrics.{name}.count"), hist.count as f64);
            report.metric(&format!("metrics.{name}.mean"), hist.mean());
            report.metric(&format!("metrics.{name}.p99"), hist.percentile(99.0) as f64);
        }
    }
    let trace_json = telemetry::trace::chrome_trace(&rings);
    bench::report::parse_json(&trace_json).expect("chrome trace is well-formed JSON");
    std::fs::write("TRACE_fig16.json", &trace_json).expect("trace file writes");
    println!("trace: TRACE_fig16.json ({} bytes)", trace_json.len());

    // ---- Part 3: sampling-profiler attribution across tiers and backends -
    println!("\n[3] epoch-profiler attribution of a hot loop (>= 90% required):");
    println!(
        "{:<6} | {:<6} | {:>8} | {:>9} | {:<8}",
        "tier", "backend", "samples", "hot share", "top tier"
    );
    println!("{:-<6}-+-{:-<6}-+-{:-<8}-+-{:-<9}-+-{:-<8}", "", "", "", "", "");
    let module = profile_module();
    for (tier, config) in &tier_configs() {
        let expected_tier = match *tier {
            "int" => telemetry::Tier::Interp,
            "spc" => telemetry::Tier::Baseline,
            _ => telemetry::Tier::Opt,
        };
        for (backend_label, backend) in [("virt", CodeBackend::VirtualIsa), ("x64", CodeBackend::X64)]
        {
            let config = config
                .clone()
                .with_metering()
                .with_backend(backend)
                .with_telemetry();
            let engine =
                Engine::new(config).with_epoch(Arc::new(AtomicU64::new(0)));
            let ticker =
                EpochTicker::start(Arc::clone(engine.epoch()), Duration::from_micros(150));
            let mut instance = engine
                .instantiate(&module, Imports::new(), Instrumentation::none())
                .expect("profile module instantiates");
            let profiler = || engine.telemetry().profiler().expect("telemetry enabled");
            let mut calls = 0usize;
            while profiler().total_samples() < MIN_SAMPLES && calls < MAX_CALLS {
                instance.set_fuel(AMPLE_FUEL);
                engine
                    .call_export(&mut instance, "main", &[])
                    .expect("profile module runs");
                calls += 1;
            }
            drop(ticker);
            let samples = profiler().total_samples();
            let hot_share = profiler().share(HOT_FUNC);
            let top = profiler().snapshot().into_iter().next();
            let top_tier = top.map(|e| e.tier.label()).unwrap_or("-");
            println!(
                "{tier:<6} | {backend_label:<6} | {samples:>8} | {:>8.1}% | {top_tier:<8}",
                hot_share * 100.0
            );
            report.metric(
                &format!("profile.{tier}.{backend_label}.samples"),
                samples as f64,
            );
            report.metric(
                &format!("profile.{tier}.{backend_label}.hot_share"),
                hot_share,
            );
            if samples < MIN_SAMPLES {
                failures.push(format!(
                    "{tier}/{backend_label}: only {samples} samples after {calls} calls"
                ));
            } else if hot_share < 0.90 {
                failures.push(format!(
                    "{tier}/{backend_label}: hot-loop share {:.1}% < 90%",
                    hot_share * 100.0
                ));
            } else if top_tier != expected_tier.label() {
                failures.push(format!(
                    "{tier}/{backend_label}: dominant samples in tier {top_tier}, expected {}",
                    expected_tier.label()
                ));
            }
        }
    }

    report.write();
    if failures.is_empty() {
        println!("\nGATES PASS: overhead bounded, trace covers the lifecycle, profiler attributes >= 90%");
    } else {
        for f in &failures {
            println!("GATE FAIL: {f}");
        }
        std::process::exit(1);
    }
}
