//! Fig. 10 — the larger SQ-space covering 18 execution-tier configurations:
//! interpreters, baseline compilers, optimizing compilers, ahead-of-time
//! translation, and tiered combinations.
//!
//! Following the paper's methodology, each engine configuration E is
//! characterized by its *setup speed* (module bytes per second of
//! instantiation time, using the `Mnop`/`m0` adjustment to separate VM
//! startup from per-module processing) and its *adjusted speedup* over
//! Wizard-INT (using the early-return `m0` variant to remove setup effects
//! from execution measurements).

use bench::Instrument;
use engine::{Engine, EngineConfig, Imports, Instrumentation};
use spc::CompilerOptions;
use std::time::Duration;
use suites::{all_suites, early_return_variant, nop_module, BenchmarkItem};

struct TierPoint {
    name: String,
    kind: &'static str,
    setup_mb_per_s: f64,
    adjusted_speedup: f64,
}

fn configurations() -> Vec<(&'static str, EngineConfig)> {
    let profiles = spc::all_profiles();
    let profile = |name: &str| {
        profiles
            .iter()
            .find(|p| p.name == name)
            .expect("profile exists")
            .options
            .clone()
    };
    vec![
        // Interpreters.
        ("interpreter", EngineConfig::interpreter("wizeng-int")),
        (
            "interpreter",
            EngineConfig::interpreter("wasm3").without_validation(),
        ),
        ("interpreter", EngineConfig::interpreter("iwasm-int")),
        (
            "interpreter",
            EngineConfig::interpreter("jsc-int").with_lazy_compile(true),
        ),
        // Baseline compilers.
        (
            "baseline",
            EngineConfig::baseline("wizeng-spc", profile("wizeng-spc")),
        ),
        (
            "baseline",
            EngineConfig::baseline("v8-liftoff", profile("v8-liftoff")),
        ),
        ("baseline", EngineConfig::baseline("sm-base", profile("sm-base"))),
        (
            "baseline",
            EngineConfig::baseline("wasmer-base", profile("wasmer-base")),
        ),
        ("baseline", EngineConfig::baseline("wazero", profile("wazero"))),
        ("baseline", EngineConfig::baseline("wasm-now", profile("wasm-now"))),
        (
            "baseline",
            EngineConfig::baseline("iwasm-fjit", CompilerOptions::nok()),
        ),
        (
            "baseline",
            EngineConfig::baseline("jsc-bbq", profile("v8-liftoff")).with_lazy_compile(true),
        ),
        // Tiered (interpreter first, baseline when hot).
        (
            "tiered",
            EngineConfig::tiered("wizeng-tiered", 4, CompilerOptions::allopt()),
        ),
        // Optimizing compilers.
        ("optimizing", EngineConfig::optimizing("wasmtime-cranelift")),
        ("optimizing", EngineConfig::optimizing("wasmer-cranelift")),
        (
            "optimizing",
            EngineConfig::optimizing("jsc-omg").with_lazy_compile(true),
        ),
        ("optimizing", EngineConfig::optimizing("turbofan-like")),
        // Ahead-of-time: optimizing, eager, validation and full compile up front.
        ("aot", EngineConfig::optimizing("wavm-aot")),
    ]
}

fn measure_tier(config: &EngineConfig, kind: &'static str) -> TierPoint {
    let scale = bench::scale_from_args();
    // VM startup baseline: instantiate the smallest possible module.
    let nop = nop_module();
    let engine = Engine::new(config.clone());
    let mut startup = Duration::ZERO;
    for _ in 0..5 {
        let inst = engine
            .instantiate(&nop, Imports::new(), Instrumentation::none())
            .expect("Mnop instantiates");
        startup += inst.metrics.setup_wall;
    }
    let startup = startup / 5;

    let mut total_bytes = 0f64;
    let mut total_setup = 0f64;
    let mut speedups = Vec::new();
    let interp_engine = Engine::new(EngineConfig::interpreter("wizeng-int"));

    for suite in all_suites(scale) {
        for item in &suite.items {
            // Setup time: instantiate the early-return variant (m0), which
            // does all per-module processing but almost no execution.
            let m0 = early_return_variant(&item.module);
            let inst0 = engine
                .instantiate(&m0, Imports::new(), Instrumentation::none())
                .expect("m0 instantiates");
            let setup = inst0
                .metrics
                .setup_wall
                .checked_sub(startup)
                .unwrap_or(Duration::ZERO);
            total_bytes += item.encoded_size() as f64;
            total_setup += setup.as_secs_f64();

            // Adjusted execution: full module cycles minus m0 cycles, under
            // this engine and under the interpreter reference.
            let exec = bench::measure_item(config, item, Instrument::None).exec_cycles;
            let mut inst0 = engine
                .instantiate(&m0, Imports::new(), Instrumentation::none())
                .expect("m0 instantiates");
            engine
                .call_export(&mut inst0, BenchmarkItem::ENTRY, &[])
                .expect("m0 runs");
            let exec0 = inst0.metrics.exec_cycles;

            let iref = bench::measure_item(
                &EngineConfig::interpreter("wizeng-int"),
                item,
                Instrument::None,
            )
            .exec_cycles;
            let mut iref0 = interp_engine
                .instantiate(&m0, Imports::new(), Instrumentation::none())
                .expect("m0 instantiates");
            interp_engine
                .call_export(&mut iref0, BenchmarkItem::ENTRY, &[])
                .expect("m0 runs");
            let iref0 = iref0.metrics.exec_cycles;

            let adjusted = exec.saturating_sub(exec0).max(1) as f64;
            let adjusted_ref = iref.saturating_sub(iref0).max(1) as f64;
            speedups.push(adjusted_ref / adjusted);
        }
    }
    TierPoint {
        name: config.name.clone(),
        kind,
        setup_mb_per_s: (total_bytes / 1e6) / total_setup.max(1e-9),
        adjusted_speedup: speedups.iter().sum::<f64>() / speedups.len() as f64,
    }
}

fn main() {
    bench::print_header(
        "Figure 10",
        "SQ-space for 18 Wasm execution configurations (setup MB/s vs adjusted speedup over Wizard-INT)",
    );
    println!(
        "{:<18} {:<12} {:>14} {:>22}",
        "engine", "kind", "setup (MB/s)", "adjusted speedup (x)"
    );
    println!("{:-<70}", "");
    let mut points = Vec::new();
    for (kind, config) in configurations() {
        let point = measure_tier(&config, kind);
        println!(
            "{:<18} {:<12} {:>14.2} {:>22.2}",
            point.name, point.kind, point.setup_mb_per_s, point.adjusted_speedup
        );
        points.push(point);
    }
    println!();
    println!("Expected shape (paper): interpreters have the fastest setup and a hard");
    println!("performance ceiling (~1x); baseline compilers cluster together around 10x;");
    println!("optimizing tiers are another 2-3x faster but an order of magnitude slower to");
    println!("set up; ahead-of-time translation has the slowest setup of all.");

    // Simple consistency checks when run as a smoke test.
    let interp_avg = points
        .iter()
        .filter(|p| p.kind == "interpreter")
        .map(|p| p.adjusted_speedup)
        .sum::<f64>()
        / points.iter().filter(|p| p.kind == "interpreter").count() as f64;
    let baseline_avg = points
        .iter()
        .filter(|p| p.kind == "baseline")
        .map(|p| p.adjusted_speedup)
        .sum::<f64>()
        / points.iter().filter(|p| p.kind == "baseline").count() as f64;
    if baseline_avg < interp_avg {
        eprintln!("warning: baseline tier did not outperform interpreters; check cost model");
    }
}
