//! FIG 12 (beyond the paper): the conformance matrix.
//!
//! Runs the checked-in conformance corpus (`crates/conform/scripts/*.wast`)
//! under every tier×backend configuration and prints the assertion counts as
//! a script×configuration matrix, followed by an opcode-coverage summary for
//! the exhaustive every-opcode module. This is the reproduction's analogue
//! of running the engine against the upstream spec test suite: the table
//! going green is what licenses every later tiering/OSR/backend PR to
//! refactor freely.
//!
//! The process exits non-zero if any assertion fails anywhere, so CI can run
//! it as a gate.

use conform::runner::{all_configs, run_script};

fn main() {
    println!("FIG 12 (beyond the paper): conformance corpus × tier/backend matrix");
    let corpus = conform::load_corpus();
    let configs = all_configs();

    print!("{:<24}", "script");
    for config in &configs {
        print!(" | {:>13}", config.name);
    }
    println!();
    print!("{:-<24}", "");
    for _ in &configs {
        print!("-+-{:-<13}", "");
    }
    println!();

    let mut total_passed = 0usize;
    let mut all_failures: Vec<String> = Vec::new();
    for script in &corpus {
        print!("{:<24}", script.name);
        for config in &configs {
            let outcome = run_script(script, config);
            total_passed += outcome.passed;
            let cell = if outcome.is_pass() {
                format!("{} ok", outcome.passed)
            } else {
                format!("{} FAIL", outcome.failures.len())
            };
            all_failures.extend(outcome.failures);
            print!(" | {cell:>13}");
        }
        println!();
    }

    let census = conform::coverage::opcode_census(&conform::coverage::exhaustive_module());
    let missing = conform::coverage::missing_opcodes(&census);

    let mut report = bench::BenchReport::new("fig12");
    report
        .config("conformance-corpus")
        .metric("scripts", corpus.len() as f64)
        .metric("configurations", configs.len() as f64)
        .metric("assertions_passed", total_passed as f64)
        .metric("assertions_failed", all_failures.len() as f64)
        .metric(
            "opcodes_covered",
            (wasm::Opcode::ALL.len() - missing.len()) as f64,
        )
        .metric("opcodes_total", wasm::Opcode::ALL.len() as f64);
    report.write();
    println!(
        "\n{} scripts x {} configurations: {} assertions passed, {} failed",
        corpus.len(),
        configs.len(),
        total_passed,
        all_failures.len()
    );
    println!(
        "exhaustive module: {}/{} opcodes covered",
        wasm::Opcode::ALL.len() - missing.len(),
        wasm::Opcode::ALL.len()
    );

    if !all_failures.is_empty() {
        eprintln!("\nfailures:");
        for f in &all_failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    if !missing.is_empty() {
        eprintln!("\nuncovered opcodes: {missing:?}");
        std::process::exit(1);
    }
}
