//! FIG 13 (beyond the paper): the optimizing tier.
//!
//! The paper frames the baseline compiler's value by contrast with the
//! optimizing tiers production engines tier up into. This figure measures
//! that other side of the axis for this reproduction's SSA-based optimizing
//! compiler (`crates/optc`):
//!
//! 1. **Execution cycles** across the three suites for the interpreter, the
//!    baseline compiler, and the optimizing tier — the optimizing tier must
//!    execute at least 20% fewer simulated cycles than the baseline tier on
//!    at least two of the three suites (the acceptance gate; the process
//!    exits non-zero otherwise).
//! 2. **Compile time and code size** on both macro-assembler backends: the
//!    optimizing tier pays a multiple of the baseline's compile time and
//!    both tiers report real x86-64 byte sizes under the x64 backend,
//!    because the optimizing tier emits through the same `Masm` boundary.
//! 3. **Profile-guided layout**: the three-tier engine (whose optimizing
//!    compiles see the branch monitor's profile) against an eagerly-compiled
//!    optimizing engine (which compiles before any profile exists), probe
//!    configuration held equal.
//!
//! Checksums are cross-checked between every configuration, so this binary
//! doubles as a whole-suite differential test for the optimizing tier.

use bench::{measure_all, print_suite_table, summarize_by_suite, BenchReport, Instrument};
use engine::{CodeBackend, EngineConfig};
use spc::CompilerOptions;

fn main() {
    let scale = bench::scale_from_args();
    bench::print_header(
        "Figure 13 (beyond the paper)",
        "The optimizing tier: cycles, compile time, and code size vs interpreter and baseline",
    );
    let mut report = BenchReport::new("fig13");
    report.config(bench::scale_label(scale));

    let interp = measure_all(&EngineConfig::interpreter("int"), scale, Instrument::None);
    let baseline = measure_all(
        &EngineConfig::baseline("spc", CompilerOptions::allopt()),
        scale,
        Instrument::None,
    );
    let opt = measure_all(&EngineConfig::optimizing("opt"), scale, Instrument::None);

    // The figure is only meaningful if every tier computes the same thing.
    let mut checksum_mismatches = 0usize;
    for (a, b) in bench::paired(&interp, &baseline).chain(bench::paired(&interp, &opt)) {
        if a.checksum != b.checksum {
            eprintln!(
                "CHECKSUM MISMATCH {}/{}: {} vs {}",
                a.suite, a.name, a.checksum, b.checksum
            );
            checksum_mismatches += 1;
        }
    }

    // ---- Execution cycles ------------------------------------------------
    println!("\nExecution cycles relative to the baseline tier (lower is better):");
    let rows: Vec<(&'static str, Vec<bench::SuiteSummary>)> = {
        let int_rows = summarize_by_suite(&interp, |m| m.exec_cycles as f64);
        let base_rows = summarize_by_suite(&baseline, |m| m.exec_cycles as f64);
        let opt_rows = summarize_by_suite(&opt, |m| m.exec_cycles as f64);
        int_rows
            .iter()
            .zip(&base_rows)
            .zip(&opt_rows)
            .map(|(((suite, i), (_, b)), (_, o))| {
                (
                    *suite,
                    vec![
                        bench::SuiteSummary {
                            mean: i.mean / b.mean,
                            min: i.min / b.min.max(1.0),
                            max: i.max / b.max.max(1.0),
                        },
                        bench::SuiteSummary {
                            mean: 1.0,
                            min: 1.0,
                            max: 1.0,
                        },
                        bench::SuiteSummary {
                            mean: o.mean / b.mean,
                            min: o.min / b.min.max(1.0),
                            max: o.max / b.max.max(1.0),
                        },
                    ],
                )
            })
            .collect()
    };
    print_suite_table(
        &["interp".to_string(), "baseline".to_string(), "opt".to_string()],
        &rows,
    );

    // ---- Acceptance gate -------------------------------------------------
    let mut suites_with_win = Vec::new();
    println!("\nPer-suite total cycles:");
    for suite in ["polybench", "libsodium", "ostrich"] {
        let total = |items: &[bench::ItemMeasurement]| -> u64 {
            items
                .iter()
                .filter(|m| m.suite == suite)
                .map(|m| m.exec_cycles)
                .sum()
        };
        let b = total(&baseline);
        let o = total(&opt);
        let i: u64 = interp
            .iter()
            .filter(|m| m.suite == suite)
            .map(|m| m.exec_cycles)
            .sum();
        let reduction = 100.0 * (1.0 - o as f64 / b as f64);
        println!("  {suite:<10} baseline {b:>12} cycles | opt {o:>12} cycles | {reduction:>5.1}% fewer");
        report.metric(&format!("{suite}.interp_cycles"), i as f64);
        report.metric(&format!("{suite}.baseline_cycles"), b as f64);
        report.metric(&format!("{suite}.opt_cycles"), o as f64);
        report.metric(&format!("{suite}.opt_reduction_pct"), reduction);
        if o * 10 <= b * 8 {
            suites_with_win.push(suite);
        }
    }

    // ---- Compile time and code size per backend --------------------------
    println!("\nCompile time and code size (both tiers, both backends):");
    for backend in [CodeBackend::VirtualIsa, CodeBackend::X64] {
        let base_cfg = EngineConfig::baseline("spc", CompilerOptions::allopt()).with_backend(backend);
        let opt_cfg = EngineConfig::optimizing("opt").with_backend(backend);
        let b = measure_all(&base_cfg, scale, Instrument::None);
        let o = measure_all(&opt_cfg, scale, Instrument::None);
        let sum_wall = |items: &[bench::ItemMeasurement]| -> f64 {
            items.iter().map(|m| m.compile_wall.as_secs_f64() * 1e3).sum()
        };
        let sum_bytes = |items: &[bench::ItemMeasurement]| -> u64 {
            items.iter().map(|m| m.compiled_machine_bytes).sum()
        };
        println!(
            "  {backend:?}: baseline {:>8.2} ms, {:>8} bytes | opt {:>8.2} ms, {:>8} bytes | compile-time ratio {:>5.2}x",
            sum_wall(&b),
            sum_bytes(&b),
            sum_wall(&o),
            sum_bytes(&o),
            sum_wall(&o) / sum_wall(&b).max(1e-9),
        );
        let tag = format!("{backend:?}").to_lowercase();
        report.metric(&format!("{tag}.baseline_code_bytes"), sum_bytes(&b) as f64);
        report.metric(&format!("{tag}.opt_code_bytes"), sum_bytes(&o) as f64);
        report.metric(
            &format!("{tag}.opt_compile_time_ratio"),
            sum_wall(&o) / sum_wall(&b).max(1e-9),
        );
    }

    // ---- Profile-guided layout -------------------------------------------
    // Both configurations carry the branch monitor (so probe overhead is
    // identical) and both run their *second* call in the optimizing tier;
    // only the three-tier engine's promotion compiles see a profile (the
    // first call ran in the baseline tier and fed the monitor).
    println!("\nProfile-guided layout (second call in the optimizing tier, monitor attached):");
    let second_call_cycles = |config: &EngineConfig| -> u64 {
        let mut total = 0u64;
        for suite in suites::all_suites(scale) {
            for item in &suite.items {
                let engine = engine::Engine::new(config.clone());
                let monitor = engine::Instrumentation::branch_monitor(&item.module);
                let mut instance = engine
                    .instantiate(&item.module, engine::Imports::new(), monitor)
                    .expect("instantiates");
                engine
                    .call_export(&mut instance, suites::BenchmarkItem::ENTRY, &[])
                    .expect("first call");
                let before = instance.metrics.exec_cycles;
                engine
                    .call_export(&mut instance, suites::BenchmarkItem::ENTRY, &[])
                    .expect("second call");
                total += instance.metrics.exec_cycles - before;
            }
        }
        total
    };
    // Baseline on call 1 (collecting the profile), optimizing on call 2.
    let profiled = second_call_cycles(
        &EngineConfig::tiered("tiered-opt", 0, CompilerOptions::allopt())
            .with_opt_tier(1)
            .with_lazy_compile(true),
    );
    // Optimizing from call 1: the opt compile ran before any observation.
    let unprofiled = second_call_cycles(&EngineConfig::optimizing("opt"));
    println!("  profile-guided layout: {profiled:>12} cycles");
    println!("  static (bytecode) layout: {unprofiled:>9} cycles");
    println!(
        "  layout effect: {:+.2}% cycles",
        100.0 * (profiled as f64 / unprofiled as f64 - 1.0)
    );

    // ---- Verdict ---------------------------------------------------------
    report.metric(
        "layout_effect_pct",
        100.0 * (profiled as f64 / unprofiled as f64 - 1.0),
    );
    report.metric("suites_with_20pct_win", suites_with_win.len() as f64);
    report.metric(
        "pass",
        if checksum_mismatches == 0 && suites_with_win.len() >= 2 {
            1.0
        } else {
            0.0
        },
    );
    report.write();
    println!();
    if checksum_mismatches > 0 {
        println!("FAIL: {checksum_mismatches} checksum mismatches between tiers");
        std::process::exit(1);
    }
    println!(
        "opt tier ≥20% fewer cycles than baseline on {} of 3 suites ({:?})",
        suites_with_win.len(),
        suites_with_win
    );
    if suites_with_win.len() < 2 {
        println!("FAIL: the acceptance gate requires at least 2 suites");
        std::process::exit(1);
    }
    println!("PASS");
}
