//! FIG 15 (beyond the paper): the serving harness end to end.
//!
//! Two experiments over the three suites, driving the `serve` crate's
//! worker/pool/deadline stack rather than bare engines:
//!
//! 1. **Cold vs. warm instantiation latency** — for every line item, time
//!    the pool's cold path (full instantiation, code cache hot) against its
//!    warm path (snapshot reset: memcpy memory/globals/tables, scrub the
//!    value stack's high-water region) and report p50/p99 of both. The gate
//!    requires warm p50 ≥ 5× faster than cold p50: the snapshot image must
//!    actually buy something over re-running segment initialization.
//!
//! 2. **Throughput scaling across worker counts** — run the same request
//!    batch through a [`serve::Server`] at 1, 2, and 4 workers. Wall-clock
//!    req/s is reported, but the *gate* is on simulated-cycle makespan (the
//!    busiest worker's summed execution cycles): this host is single-core,
//!    so wall-clock parallel speedup is unavailable by construction — the
//!    fig11 compile-scaling column documents the same limitation — while
//!    the makespan ratio measures what the harness controls: how evenly the
//!    dispatcher spreads work. The gate requires ≥ 2.5× at 4 workers.
//!
//! Run with `--full` for paper-sized workloads; the default is the smoke
//! scale used by CI.

use bench::{percentile, print_header, scale_from_args, BenchReport};
use engine::{Engine, EngineConfig, InstancePool};
use serve::{Request, RequestStatus, Server, ServerConfig};
use spc::CompilerOptions;
use std::time::Instant;
use suites::BenchmarkItem;

/// Warm checkouts sampled per line item in part 1.
const WARM_SAMPLES: usize = 8;
/// Cold instantiations sampled per line item in part 1.
const COLD_SAMPLES: usize = 4;
/// Requests per app per worker configuration in part 2.
const REQUESTS_PER_APP: usize = 4;

fn engine_config() -> EngineConfig {
    EngineConfig::baseline("wizeng-spc", CompilerOptions::allopt())
}

fn main() {
    let scale = scale_from_args();
    print_header(
        "FIG 15 (beyond the paper)",
        "Concurrent serving: instance pooling, snapshot resets, worker scaling",
    );
    let suites = suites::all_suites(scale);
    let mut report = BenchReport::new("fig15");
    report.config(bench::scale_label(scale));
    let mut failures = Vec::new();

    // ---- Part 1: cold vs. warm instantiation through the pool ------------
    println!("\n[1] instantiation latency, pool cold path vs. snapshot reset:");
    let mut cold_us = Vec::new();
    let mut warm_us = Vec::new();
    for suite in &suites {
        for item in &suite.items {
            let engine = Engine::new(engine_config());
            let pool = InstancePool::new(engine, item.module.clone(), 1)
                .expect("suite modules instantiate");
            // Cold path: the pool is drained (one instance checked out and
            // held), so every further checkout is a full instantiation. The
            // code cache is not attached here, matching what a miss costs;
            // fig11 already characterizes the cache-hit discount.
            let held = pool.checkout().expect("first checkout");
            // Hold every cold instance until the end of the sampling loop —
            // dropping one mid-loop would park it and turn the next
            // checkout warm.
            let mut held_cold = Vec::with_capacity(COLD_SAMPLES);
            for _ in 0..COLD_SAMPLES {
                let start = Instant::now();
                let cold = pool.checkout().expect("cold checkout");
                cold_us.push(start.elapsed().as_secs_f64() * 1e6);
                assert!(!cold.was_warm(), "drained pool falls back to cold");
                held_cold.push(cold);
            }
            // max_idle = 1: exactly one instance parks for the warm loop.
            drop(held_cold);
            drop(held);
            // Warm path: one parked instance, checkout = reset. Dirty it
            // each round so the reset always has real work to undo.
            for _ in 0..WARM_SAMPLES {
                let start = Instant::now();
                let mut warm = pool.checkout().expect("warm checkout");
                warm_us.push(start.elapsed().as_secs_f64() * 1e6);
                assert!(warm.was_warm(), "parked instance resets warm");
                pool.engine()
                    .call_export(&mut warm, BenchmarkItem::ENTRY, &[])
                    .expect("suite item runs");
            }
        }
    }
    // Nearest-rank p99 of fewer than 100 samples degenerates to the max —
    // fail loudly if the sampling loops ever shrink below that.
    assert!(
        cold_us.len() >= 100 && warm_us.len() >= 100,
        "p99 gate needs >= 100 samples, got {} cold / {} warm",
        cold_us.len(),
        warm_us.len()
    );
    let (cold_p50, cold_p99) = (percentile(&cold_us, 50.0), percentile(&cold_us, 99.0));
    let (warm_p50, warm_p99) = (percentile(&warm_us, 50.0), percentile(&warm_us, 99.0));
    let warm_speedup = cold_p50 / warm_p50.max(1e-9);
    println!(
        "{:<6} | {:>10} | {:>10}\n{:-<6}-+-{:-<10}-+-{:-<10}",
        "path", "p50 (us)", "p99 (us)", "", "", ""
    );
    println!("{:<6} | {cold_p50:>10.1} | {cold_p99:>10.1}", "cold");
    println!("{:<6} | {warm_p50:>10.1} | {warm_p99:>10.1}", "warm");
    println!("warm p50 speedup: {warm_speedup:.1}x");
    report.metric("instantiate.cold_p50_us", cold_p50);
    report.metric("instantiate.cold_p99_us", cold_p99);
    report.metric("instantiate.warm_p50_us", warm_p50);
    report.metric("instantiate.warm_p99_us", warm_p99);
    report.metric("instantiate.warm_speedup_p50", warm_speedup);
    if warm_speedup < 5.0 {
        failures.push(format!(
            "warm p50 speedup {warm_speedup:.2}x < 5.0x over cold instantiation"
        ));
    }

    // ---- Part 2: throughput scaling across worker counts -----------------
    println!("\n[2] batch throughput across worker counts:");
    println!(
        "{:<8} | {:>10} | {:>14} | {:>12} | {:>10}",
        "workers", "requests", "wall req/s", "sim makespan", "sim scale"
    );
    println!(
        "{:-<8}-+-{:-<10}-+-{:-<14}-+-{:-<12}-+-{:-<10}",
        "", "", "", "", ""
    );
    let mut makespan_at_1 = None;
    let mut sim_scale_at_4 = 0.0;
    for workers in [1usize, 2, 4] {
        let mut server = Server::new(
            ServerConfig {
                workers,
                ..ServerConfig::default()
            },
            engine_config(),
        );
        let mut apps = Vec::new();
        for suite in &suites {
            for item in &suite.items {
                apps.push(
                    server
                        .register_app(&item.name, BenchmarkItem::ENTRY, item.module.clone())
                        .expect("suite modules register"),
                );
            }
        }
        let requests: Vec<Request> = (0..apps.len() * REQUESTS_PER_APP)
            .map(|i| Request::to_app(apps[i % apps.len()]))
            .collect();
        let total = requests.len();
        let start = Instant::now();
        let results = server.run(requests);
        let wall = start.elapsed();
        assert_eq!(results.len(), total);
        let mut per_worker = vec![0u64; workers];
        for r in &results {
            assert!(
                matches!(r.status, RequestStatus::Ok(_)),
                "request {} failed: {:?}",
                r.request_id,
                r.status
            );
            per_worker[r.worker] += r.exec_cycles;
        }
        // The batch's simulated makespan: the busiest worker's summed
        // service cycles. With perfect balance it shrinks linearly in the
        // worker count even on a single-core host.
        let makespan = *per_worker.iter().max().expect("at least one worker");
        let baseline = *makespan_at_1.get_or_insert(makespan);
        let sim_scale = baseline as f64 / makespan.max(1) as f64;
        if workers == 4 {
            sim_scale_at_4 = sim_scale;
        }
        let req_per_s = total as f64 / wall.as_secs_f64().max(1e-9);
        println!(
            "{workers:<8} | {total:>10} | {req_per_s:>14.0} | {makespan:>12} | {sim_scale:>9.2}x"
        );
        report.metric(&format!("workers{workers}.wall_req_per_s"), req_per_s);
        report.metric(
            &format!("workers{workers}.sim_makespan_cycles"),
            makespan as f64,
        );
        report.metric(&format!("workers{workers}.sim_scaling"), sim_scale);
        if workers == 4 {
            // Serving-layer accounting, via the shared cache and pools.
            let cache = server.cache_stats();
            report.metric("cache.entries", cache.entries as f64);
            report.metric("cache.hits", cache.hits as f64);
            report.metric("cache.misses", cache.misses as f64);
            report.metric(
                "cache.resident_machine_bytes",
                cache.resident_machine_bytes as f64,
            );
            let lookups = cache.hits + cache.misses;
            report.metric(
                "cache.hit_ratio",
                cache.hits as f64 / lookups.max(1) as f64,
            );
            let (mut warm, mut cold) = (0u64, 0u64);
            for &app in &apps {
                let stats = server.pool_stats(app).expect("registered app");
                warm += stats.warm_checkouts;
                cold += stats.cold_checkouts;
            }
            report.metric("pool.warm_checkouts", warm as f64);
            report.metric("pool.cold_checkouts", cold as f64);
            report.metric(
                "pool.warm_ratio",
                warm as f64 / (warm + cold).max(1) as f64,
            );
            println!(
                "\nserving accounting at 4 workers: {warm} warm / {cold} cold checkouts, \
                 cache {} entries {} hits {} misses, {} KiB resident code",
                cache.entries,
                cache.hits,
                cache.misses,
                cache.resident_machine_bytes / 1024,
            );
            assert!(
                warm + cold == total as u64,
                "every request checked out exactly one instance"
            );
        }
    }
    if sim_scale_at_4 < 2.5 {
        failures.push(format!(
            "simulated makespan scaling at 4 workers {sim_scale_at_4:.2}x < 2.5x"
        ));
    }

    // ---- Part 3: failure accounting and the flight recorder --------------
    // A serving layer is judged by how it reports failure, so the figure
    // exercises one: a mixed batch where every third request hits a
    // div-by-zero app. Trap totals come from the engine's per-reason
    // counters, every failed request must carry symbolicated diagnostics,
    // and the flight recorder's access log is written out as the run's
    // artifact.
    println!("\n[3] failure accounting and the flight recorder:");
    let telemetry = telemetry::Telemetry::enabled();
    let mut server = Server::new(
        ServerConfig {
            workers: 2,
            telemetry: telemetry.clone(),
            ..ServerConfig::default()
        },
        engine_config(),
    );
    let boom_module = wasm::wat::parse_module(
        r#"
        (module $boom
          (func $divide (param $n i32) (result i32)
            local.get $n i32.const 0 i32.div_s)
          (func $main (export "main") (param $n i32) (result i32)
            local.get $n call $divide))
        "#,
    )
    .expect("boom module parses");
    let quick_module = wasm::wat::parse_module(
        r#"(module $quick (func $main (export "main") (param $n i32) (result i32)
             local.get $n i32.const 2 i32.mul))"#,
    )
    .expect("quick module parses");
    let boom = server
        .register_app("boom", "main", boom_module)
        .expect("boom registers");
    let quick = server
        .register_app("quick", "main", quick_module)
        .expect("quick registers");
    let batch: Vec<Request> = (0..12)
        .map(|i| {
            Request::to_app(if i % 3 == 0 { boom } else { quick })
                .with_args(vec![machine::values::WasmValue::I32(i)])
        })
        .collect();
    let total3 = batch.len();
    let results = server.run(batch);
    let trapped: Vec<_> = results.iter().filter(|r| !r.status.is_ok()).collect();
    for r in &trapped {
        let trap = r.trap.as_ref().expect("failed requests carry diagnostics");
        assert!(
            trap.backtrace.frames().iter().all(|f| f.name.is_some()),
            "request {}: backtrace must symbolicate",
            r.request_id
        );
    }
    let div_traps = telemetry
        .metrics()
        .expect("metrics registry")
        .snapshot()
        .counters
        .iter()
        .find(|(name, _)| name == "engine.traps.division_by_zero")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    let dump = server.flight_recorder().dump();
    std::fs::write("ACCESS_LOG_fig15.jsonl", &dump).expect("access log written");
    println!(
        "{total3} requests: {} trapped (engine counted {div_traps} div-by-zero), \
         {} access-log lines -> ACCESS_LOG_fig15.jsonl",
        trapped.len(),
        dump.lines().count(),
    );
    report.metric("failure.requests", total3 as f64);
    report.metric("failure.trapped", trapped.len() as f64);
    report.metric("failure.traps_division_by_zero", div_traps as f64);
    report.metric("failure.access_log_lines", dump.lines().count() as f64);
    if trapped.len() != 4 || div_traps != 4 {
        failures.push(format!(
            "expected 4 div-by-zero failures, saw {} trapped / {div_traps} counted",
            trapped.len()
        ));
    }

    report.write();
    if failures.is_empty() {
        println!("\nGATES PASS: warm p50 {warm_speedup:.1}x >= 5x, 4-worker sim scaling {sim_scale_at_4:.2}x >= 2.5x");
    } else {
        for f in &failures {
            println!("GATE FAIL: {f}");
        }
        std::process::exit(1);
    }
}
