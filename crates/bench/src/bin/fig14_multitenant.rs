//! FIG 14 (beyond the paper): the cost of multi-tenancy.
//!
//! The multi-tenant serving layer meters every tenant: deterministic fuel
//! accounting plus an epoch poll at loop headers, emitted by all three tiers
//! from the same per-block cost table. This figure prices that safety net:
//!
//! 1. **Metered vs. unmetered execution cycles** per suite for the
//!    interpreter, the baseline compiler, and the optimizing tier. The
//!    metered runs arm a fuel budget far above any item's cost, so the whole
//!    workload completes with metering genuinely active (a metering
//!    configuration with no fuel armed skips the interpreter-side charging
//!    and would flatter the interpreter column).
//! 2. **The acceptance gate**: on the baseline tier — the paper's subject
//!    and the tier a serving host keeps tenants in — metering overhead must
//!    be ≤ 15% over unmetered on each of the three suites, else the process
//!    exits non-zero.
//! 3. **Artifact sharing across tenants**: two metered tenants created
//!    through the `MultiEngine` registry share one compiled artifact; the
//!    second tenant compiles nothing.
//!
//! Checksums are cross-checked between every metered/unmetered pair, and the
//! fuel consumed per suite is identical across all three tiers — the
//! determinism claim the conformance matrix locks down, restated over the
//! full benchmark corpus. Headline numbers land in `BENCH_fig14.json`.

use bench::{
    measure_all, measure_all_fueled, print_suite_table, summarize_by_suite, BenchReport,
    Instrument,
};
use engine::{EngineConfig, Imports, Instrumentation, MultiEngine};
use spc::CompilerOptions;

/// Far above any line item's cost at either scale, so nothing traps.
const AMPLE_FUEL: u64 = u64::MAX / 2;

const SUITES: [&str; 3] = ["polybench", "libsodium", "ostrich"];

fn main() {
    let scale = bench::scale_from_args();
    bench::print_header(
        "FIG 14 (beyond the paper)",
        "Multi-tenant metering: fuel + epoch overhead per tier, artifact sharing",
    );
    let mut report = BenchReport::new("fig14");
    report.config(bench::scale_label(scale));

    let tiers: [(&str, EngineConfig); 3] = [
        ("int", EngineConfig::interpreter("int")),
        ("spc", EngineConfig::baseline("spc", CompilerOptions::allopt())),
        ("opt", EngineConfig::optimizing("opt")),
    ];

    let mut checksum_mismatches = 0usize;
    let mut fuel_by_suite: Vec<Vec<u64>> = Vec::new();
    let mut spc_overheads: Vec<(&'static str, f64)> = Vec::new();

    println!("\nMetered vs. unmetered execution cycles (metered/unmetered ratio):");
    let mut rows: Vec<(&'static str, Vec<bench::SuiteSummary>)> =
        SUITES.iter().map(|s| (*s, Vec::new())).collect();
    for (tier, config) in &tiers {
        let plain = measure_all(config, scale, Instrument::None);
        let metered = measure_all_fueled(
            &config.clone().with_metering(),
            scale,
            Instrument::None,
            AMPLE_FUEL,
        );
        for (a, b) in bench::paired(&plain, &metered) {
            if a.checksum != b.checksum {
                eprintln!(
                    "CHECKSUM MISMATCH {}/{} under {tier}: {} vs {}",
                    a.suite, a.name, a.checksum, b.checksum
                );
                checksum_mismatches += 1;
            }
        }

        let plain_rows = summarize_by_suite(&plain, |m| m.exec_cycles as f64);
        let metered_rows = summarize_by_suite(&metered, |m| m.exec_cycles as f64);
        for (row, ((_, p), (_, m))) in rows.iter_mut().zip(plain_rows.iter().zip(&metered_rows)) {
            row.1.push(bench::SuiteSummary {
                mean: m.mean / p.mean,
                min: m.min / p.min.max(1.0),
                max: m.max / p.max.max(1.0),
            });
        }

        // Per-suite totals drive the gate and the report.
        let mut suite_fuel = Vec::new();
        for suite in SUITES {
            let total = |items: &[bench::ItemMeasurement]| -> u64 {
                items
                    .iter()
                    .filter(|m| m.suite == suite)
                    .map(|m| m.exec_cycles)
                    .sum()
            };
            let p = total(&plain);
            let m = total(&metered);
            let overhead = 100.0 * (m as f64 / p as f64 - 1.0);
            report.metric(&format!("{suite}.{tier}.unmetered_cycles"), p as f64);
            report.metric(&format!("{suite}.{tier}.metered_cycles"), m as f64);
            report.metric(&format!("{suite}.{tier}.overhead_pct"), overhead);
            if *tier == "spc" {
                spc_overheads.push((suite, overhead));
            }
            let fuel: u64 = metered
                .iter()
                .filter(|i| i.suite == suite)
                .map(|i| i.fuel_consumed)
                .sum();
            assert!(fuel > 0, "{suite} consumed no fuel under {tier}");
            suite_fuel.push(fuel);
        }
        fuel_by_suite.push(suite_fuel);
    }
    print_suite_table(
        &tiers.iter().map(|(t, _)| t.to_string()).collect::<Vec<_>>(),
        &rows,
    );

    // ---- Fuel determinism over the whole corpus --------------------------
    println!("\nFuel consumed per suite (must be identical in every tier):");
    let mut fuel_mismatch = false;
    for (i, suite) in SUITES.iter().enumerate() {
        let per_tier: Vec<u64> = fuel_by_suite.iter().map(|f| f[i]).collect();
        println!("  {suite:<10} {} units", per_tier[0]);
        report.metric(&format!("{suite}.fuel_units"), per_tier[0] as f64);
        if per_tier.iter().any(|&f| f != per_tier[0]) {
            eprintln!("FUEL MISMATCH on {suite}: {per_tier:?}");
            fuel_mismatch = true;
        }
    }

    // ---- Tenants sharing compiled artifacts ------------------------------
    println!("\nTwo metered tenants through the MultiEngine registry:");
    let multi = MultiEngine::new();
    let tenant_config = EngineConfig::baseline("tenant", CompilerOptions::allopt()).with_metering();
    let mut shared_misses = 0u32;
    for n in 1..=2u32 {
        let engine = multi.engine(tenant_config.clone());
        let mut compiled = 0u64;
        for suite in suites::all_suites(scale) {
            for item in &suite.items {
                let instance = engine
                    .instantiate(&item.module, Imports::new(), Instrumentation::none())
                    .expect("suite modules instantiate");
                compiled += instance.metrics.functions_compiled as u64;
                if !instance.metrics.cache_hit {
                    shared_misses += 1;
                }
            }
        }
        println!("  tenant {n}: {compiled} functions compiled");
        report.metric(&format!("tenant{n}.functions_compiled"), compiled as f64);
        if n == 2 && compiled != 0 {
            eprintln!("SHARING FAILURE: the second tenant recompiled");
            checksum_mismatches += 1;
        }
    }
    println!(
        "  cache: {} entries, {} hits ({} first-sight misses)",
        multi.code_cache().len(),
        multi.code_cache().hits(),
        shared_misses,
    );

    // ---- Verdict ---------------------------------------------------------
    println!("\nBaseline-tier metering overhead (gate: ≤ 15% on every suite):");
    let mut suites_over = Vec::new();
    for (suite, overhead) in &spc_overheads {
        println!("  {suite:<10} {overhead:>5.1}%");
        if *overhead > 15.0 {
            suites_over.push(*suite);
        }
    }
    let pass = checksum_mismatches == 0 && !fuel_mismatch && suites_over.is_empty();
    report.metric("pass", if pass { 1.0 } else { 0.0 });
    report.write();
    println!();
    if checksum_mismatches > 0 {
        println!("FAIL: {checksum_mismatches} checksum/sharing failures");
        std::process::exit(1);
    }
    if fuel_mismatch {
        println!("FAIL: fuel consumption diverged between tiers");
        std::process::exit(1);
    }
    if !suites_over.is_empty() {
        println!("FAIL: metering overhead above 15% on {suites_over:?}");
        std::process::exit(1);
    }
    println!("PASS");
}
