//! Criterion benchmark: end-to-end execution of one line item under each
//! execution tier (interpreter, baseline, optimizing).
//!
//! Wall-clock here measures the reproduction's own runtime (interpreter loop
//! and CPU simulator); the figure harnesses use simulated cycles instead, but
//! this benchmark is useful for tracking the engine's own performance.

use criterion::{criterion_group, criterion_main, Criterion};
use engine::{Engine, EngineConfig, Imports, Instrumentation};
use spc::CompilerOptions;
use suites::{BenchmarkItem, Scale};

fn execution_tiers(c: &mut Criterion) {
    let mut group = c.benchmark_group("execution_tiers");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    let suite = suites::libsodium::suite(Scale::Test);
    let item = suite
        .items
        .iter()
        .find(|i| i.name == "chacha20")
        .expect("chacha20 exists");

    let configs = vec![
        EngineConfig::interpreter("wizeng-int"),
        EngineConfig::baseline("wizeng-spc", CompilerOptions::allopt()),
        EngineConfig::optimizing("optimizing"),
    ];
    for config in configs {
        let engine = Engine::new(config.clone());
        group.bench_function(config.name.clone(), |b| {
            b.iter(|| {
                let mut instance = engine
                    .instantiate(&item.module, Imports::new(), Instrumentation::none())
                    .expect("instantiates");
                let out = engine
                    .call_export(&mut instance, BenchmarkItem::ENTRY, &[])
                    .expect("runs");
                criterion::black_box(out);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, execution_tiers);
criterion_main!(benches);
