//! Criterion benchmark: compile-time and code-size impact of the value-tag
//! strategies (complements the Fig. 5 execution-time harness).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spc::{CompilerOptions, ProbeSites, SinglePassCompiler};
use suites::Scale;
use wasm::validate::validate;

fn value_tags(c: &mut Criterion) {
    let mut group = c.benchmark_group("value_tag_compile");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    let suite = suites::polybench::suite(Scale::Test);
    let item = &suite.items[0];
    let info = validate(&item.module).expect("valid");

    for options in CompilerOptions::figure5_configs() {
        let compiler = SinglePassCompiler::new(options.clone());
        group.bench_with_input(
            BenchmarkId::from_parameter(options.name.clone()),
            &item.module,
            |b, module| {
                b.iter(|| {
                    for defined in 0..module.funcs.len() as u32 {
                        let func_index = module.defined_to_func_index(defined);
                        let compiled = compiler
                            .compile(
                                module,
                                func_index,
                                &info.funcs[defined as usize],
                                &ProbeSites::none(),
                            )
                            .expect("compiles");
                        criterion::black_box(compiled.stats.tag_stores);
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, value_tags);
criterion_main!(benches);
