//! Criterion benchmark: baseline compilation throughput per design profile.
//!
//! Measures real wall-clock compilation of one representative module from
//! each suite under each of the six baseline-compiler profiles (the basis of
//! the paper's Fig. 8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spc::{ProbeSites, SinglePassCompiler};
use suites::Scale;
use wasm::validate::validate;

fn compile_speed(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile_speed");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    let items = [
        suites::polybench::suite(Scale::Test).items.remove(0),
        suites::libsodium::suite(Scale::Test).items.remove(16),
        suites::ostrich::suite(Scale::Test).items.remove(0),
    ];
    for profile in spc::all_profiles() {
        for item in &items {
            let info = validate(&item.module).expect("valid");
            let compiler = SinglePassCompiler::new(profile.options.clone());
            group.bench_with_input(
                BenchmarkId::new(profile.name, format!("{}/{}", item.suite, item.name)),
                &item.module,
                |b, module| {
                    b.iter(|| {
                        for defined in 0..module.funcs.len() as u32 {
                            let func_index = module.defined_to_func_index(defined);
                            let compiled = compiler
                                .compile(
                                    module,
                                    func_index,
                                    &info.funcs[defined as usize],
                                    &ProbeSites::none(),
                                )
                                .expect("compiles");
                            criterion::black_box(compiled);
                        }
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, compile_speed);
criterion_main!(benches);
