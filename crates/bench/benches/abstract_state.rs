//! Criterion benchmark: abstract-state costs in the single-pass compiler.
//!
//! The paper's Section III calls out managing the abstract state at control
//! flow as the main algorithmic risk ("JIT bombs"). This benchmark compiles
//! functions with a growing number of locals and control-flow merges to
//! confirm compile time stays linear in practice (the ablation bench called
//! out in DESIGN.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spc::{CompilerOptions, ProbeSites, SinglePassCompiler};
use wasm::builder::{CodeBuilder, ModuleBuilder};
use wasm::opcode::Opcode;
use wasm::types::{BlockType, FuncType, ValueType};
use wasm::validate::validate;

/// Builds a function with `locals` i32 locals and `blocks` nested blocks,
/// each containing a conditional branch — a worst case for snapshot/merge
/// handling.
fn control_heavy(locals: u32, blocks: u32) -> wasm::Module {
    let mut b = ModuleBuilder::new();
    let mut c = CodeBuilder::new();
    for i in 0..locals {
        c.i32_const(i as i32).local_set(i + 1);
    }
    for _ in 0..blocks {
        c.block(BlockType::Empty);
        c.local_get(0).br_if(0);
        c.local_get(1).i32_const(1).op(Opcode::I32Add).local_set(1);
    }
    for _ in 0..blocks {
        c.end();
    }
    c.local_get(1);
    let f = b.add_func(
        FuncType::new(vec![ValueType::I32], vec![ValueType::I32]),
        vec![ValueType::I32; locals as usize],
        c.finish(),
    );
    b.export_func("f", f);
    b.finish()
}

fn abstract_state(c: &mut Criterion) {
    let mut group = c.benchmark_group("abstract_state_scaling");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for (locals, blocks) in [(8u32, 16u32), (32, 64), (128, 256)] {
        let module = control_heavy(locals, blocks);
        let info = validate(&module).expect("valid");
        let compiler = SinglePassCompiler::new(CompilerOptions::allopt());
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{locals}locals_{blocks}blocks")),
            &module,
            |b, module| {
                b.iter(|| {
                    let compiled = compiler
                        .compile(module, 0, &info.funcs[0], &ProbeSites::none())
                        .expect("compiles");
                    criterion::black_box(compiled);
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, abstract_state);
criterion_main!(benches);
