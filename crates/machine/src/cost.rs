//! The cycle cost model shared by every execution tier.
//!
//! The reproduction measures *execution time* in simulated cycles rather than
//! wall-clock nanoseconds (see DESIGN.md). Each virtual-ISA instruction
//! executed by the CPU simulator is charged a cost from this model, and the
//! in-place interpreter charges itself the cost of the work a real
//! interpreter performs per bytecode: dispatch, immediate decoding, operand
//! stack traffic, tag maintenance, and the operation itself.
//!
//! Using one model for both tiers is what makes the relative comparisons
//! (JIT speedup over the interpreter, tag overhead, probe overhead)
//! meaningful: an optimization only wins by removing work, never by being
//! costed under a different ruler.

use crate::inst::{AluOp, FAluOp, FUnOp, MachInst};

/// Per-operation cycle costs. All figures are rough x86-64-class latencies,
/// in "cycles" of the simulated machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// Register-to-register move or integer constant materialization.
    pub mov: u64,
    /// Simple integer ALU operation (add, sub, logical, shift, compare).
    pub alu: u64,
    /// Integer multiply.
    pub mul: u64,
    /// Integer divide / remainder.
    pub div: u64,
    /// Floating-point add/sub/mul and comparisons.
    pub falu: u64,
    /// Floating-point divide.
    pub fdiv: u64,
    /// Floating-point square root.
    pub fsqrt: u64,
    /// Numeric conversion.
    pub convert: u64,
    /// Conditional select.
    pub select: u64,
    /// Load of a value-stack slot.
    pub slot_load: u64,
    /// Store of a value-stack slot.
    pub slot_store: u64,
    /// Store of a value tag. The cost the paper's tag optimizations remove.
    pub tag_store: u64,
    /// Linear-memory load.
    pub mem_load: u64,
    /// Linear-memory store.
    pub mem_store: u64,
    /// Global variable access.
    pub global: u64,
    /// `memory.size`.
    pub memory_size: u64,
    /// `memory.grow`.
    pub memory_grow: u64,
    /// Unconditional jump.
    pub jump: u64,
    /// Conditional branch.
    pub branch: u64,
    /// Jump-table dispatch.
    pub br_table: u64,
    /// Direct call overhead (frame setup, transfer) charged to the caller.
    pub call: u64,
    /// Indirect call overhead (table load, null and signature checks).
    pub call_indirect: u64,
    /// Call to a host (imported) function.
    pub host_call: u64,
    /// Function return.
    pub ret: u64,
    /// Trap processing.
    pub trap: u64,
    /// Unoptimized probe: runtime lookup, frame-accessor allocation, callback.
    pub probe_runtime: u64,
    /// Optimized probe: direct call, no accessor allocation.
    pub probe_direct: u64,
    /// Fully intrinsified counter probe.
    pub probe_counter: u64,
    /// Optimized probe passing the top-of-stack value directly.
    pub probe_tos: u64,
    /// Fused meter check (counter subtract + branch). Covers both fuel and
    /// preemption: a real engine keeps one activation counter in a pinned
    /// register and delivers epoch expiry by zeroing it, so the emitted
    /// sequence stays a single decrement-and-branch — and since the exit
    /// branch is never taken until exhaustion, it macro-fuses with the
    /// decrement and predicts perfectly, costing one cycle, unlike the
    /// data-dependent branches `branch` models.
    pub fuel_check: u64,
    /// Standalone epoch poll (memory compare + branch). Kept in the model
    /// for tiers that poll without fuel accounting; the shipped compilers
    /// emit only the fused check.
    pub epoch_check: u64,
    /// Interpreter: dispatch (fetch opcode, indirect branch to handler).
    pub interp_dispatch: u64,
    /// Interpreter: decode one immediate operand (LEB or literal).
    pub interp_imm: u64,
    /// Interpreter: extra work to enter/exit a control construct or look up
    /// the sidetable on a taken branch.
    pub interp_control: u64,
    /// Interpreter: extra per-call frame bookkeeping beyond the shared call
    /// overhead.
    pub interp_call_setup: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            mov: 1,
            alu: 1,
            mul: 3,
            div: 12,
            falu: 3,
            fdiv: 13,
            fsqrt: 15,
            convert: 3,
            select: 2,
            slot_load: 2,
            slot_store: 2,
            tag_store: 2,
            mem_load: 3,
            mem_store: 3,
            global: 2,
            memory_size: 2,
            memory_grow: 100,
            jump: 1,
            branch: 2,
            br_table: 4,
            call: 20,
            call_indirect: 30,
            host_call: 35,
            ret: 5,
            trap: 30,
            probe_runtime: 55,
            probe_direct: 14,
            probe_counter: 3,
            probe_tos: 6,
            fuel_check: 1,
            epoch_check: 2,
            interp_dispatch: 4,
            interp_imm: 1,
            interp_control: 3,
            interp_call_setup: 30,
        }
    }
}

impl CostModel {
    /// The cost charged for executing one virtual-ISA instruction.
    ///
    /// Call-like instructions only include the transfer overhead here; the
    /// callee's execution is charged as it runs.
    pub fn inst_cost(&self, inst: &MachInst) -> u64 {
        use MachInst::*;
        match inst {
            Nop => 0,
            MovImm { .. } | FMovImm { .. } | Mov { .. } | FMov { .. } => self.mov,
            LoadSlot { .. } => self.slot_load,
            StoreSlot { .. } | StoreSlotImm { .. } => self.slot_store,
            StoreTag { .. } => self.tag_store,
            Alu { op, .. } | AluImm { op, .. } => match op {
                AluOp::Mul => self.mul,
                _ if op.is_division() => self.div,
                _ => self.alu,
            },
            Unop { .. } => self.alu,
            Cmp { .. } | CmpImm { .. } => self.alu,
            FAlu { op, .. } => match op {
                FAluOp::Div => self.fdiv,
                _ => self.falu,
            },
            FUnop { op, .. } => match op {
                FUnOp::Sqrt => self.fsqrt,
                _ => self.falu,
            },
            FCmp { .. } => self.falu,
            Convert { .. } => self.convert,
            Select { .. } | FSelect { .. } => self.select,
            MemLoad { .. } => self.mem_load,
            MemStore { .. } => self.mem_store,
            MemorySize { .. } => self.memory_size,
            MemoryGrow { .. } => self.memory_grow,
            GlobalGet { .. } | GlobalSet { .. } => self.global,
            Jump { .. } => self.jump,
            BrIf { .. } => self.branch,
            BrTable { .. } => self.br_table,
            Call { .. } => self.call,
            CallIndirect { .. } => self.call_indirect,
            ProbeRuntime { .. } => self.probe_runtime,
            ProbeDirect { .. } => self.probe_direct,
            ProbeCounter { .. } => self.probe_counter,
            ProbeTosValue { .. } => self.probe_tos,
            FuelCheck { .. } => self.fuel_check,
            EpochCheck => self.epoch_check,
            Trap { .. } => self.trap,
            Return => self.ret,
        }
    }
}

/// A running cycle counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleCounter {
    cycles: u64,
}

impl CycleCounter {
    /// Creates a counter at zero.
    pub fn new() -> CycleCounter {
        CycleCounter::default()
    }

    /// Adds `cycles` to the counter.
    pub fn charge(&mut self, cycles: u64) {
        self.cycles += cycles;
    }

    /// The total cycles charged so far.
    pub fn total(&self) -> u64 {
        self.cycles
    }

    /// Resets the counter to zero.
    pub fn reset(&mut self) {
        self.cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Label, TrapCode, Width};
    use crate::reg::Reg;

    #[test]
    fn default_costs_are_ordered_sensibly() {
        let m = CostModel::default();
        assert!(m.alu < m.mul);
        assert!(m.mul < m.div);
        assert!(m.falu < m.fdiv);
        assert!(m.slot_load > 0 && m.slot_store > 0);
        assert!(m.mem_load >= m.slot_load);
        assert!(m.call > m.branch);
        assert!(m.call_indirect > m.call);
        assert!(m.probe_runtime > m.probe_direct);
        assert!(m.probe_direct > m.probe_tos);
        assert!(m.probe_tos > m.probe_counter);
        assert!(m.fuel_check > 0 && m.fuel_check < m.branch + m.alu + 1);
        assert!(m.epoch_check > 0);
        assert!(m.interp_dispatch > 0);
    }

    #[test]
    fn inst_costs_follow_categories() {
        let m = CostModel::default();
        let add = MachInst::Alu {
            op: AluOp::Add,
            width: Width::W32,
            dst: Reg(0),
            a: Reg(1),
            b: Reg(2),
        };
        let div = MachInst::Alu {
            op: AluOp::DivS,
            width: Width::W32,
            dst: Reg(0),
            a: Reg(1),
            b: Reg(2),
        };
        let mul = MachInst::AluImm {
            op: AluOp::Mul,
            width: Width::W64,
            dst: Reg(0),
            a: Reg(1),
            imm: 3,
        };
        assert_eq!(m.inst_cost(&add), m.alu);
        assert_eq!(m.inst_cost(&div), m.div);
        assert_eq!(m.inst_cost(&mul), m.mul);
        assert_eq!(m.inst_cost(&MachInst::Nop), 0);
        assert_eq!(
            m.inst_cost(&MachInst::StoreTag { slot: 0, tag: crate::values::ValueTag::I32 }),
            m.tag_store
        );
        assert_eq!(m.inst_cost(&MachInst::Jump { target: Label(0) }), m.jump);
        assert_eq!(m.inst_cost(&MachInst::Call { func_index: 0 }), m.call);
        assert_eq!(
            m.inst_cost(&MachInst::Trap { code: TrapCode::Unreachable }),
            m.trap
        );
    }

    #[test]
    fn cycle_counter_accumulates() {
        let mut c = CycleCounter::new();
        assert_eq!(c.total(), 0);
        c.charge(5);
        c.charge(7);
        assert_eq!(c.total(), 12);
        c.reset();
        assert_eq!(c.total(), 0);
    }
}
