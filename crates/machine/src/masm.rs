//! The macro-assembler boundary between the single-pass compiler and its
//! target backends.
//!
//! Every production baseline compiler surveyed by the paper is structured
//! around a *macro-assembler*: the translation strategy (one forward pass
//! driven by abstract interpretation) is written once against a set of
//! semantic operations — "load this value-stack slot", "store this value
//! tag", "branch to this label", "call this function" — and each target ISA
//! provides its own expansion of those operations into machine code. That
//! separation is what lets one compiler design serve many ISAs.
//!
//! [`Masm`] is this reproduction's macro-assembler trait. It exposes exactly
//! the operations the single-pass compiler in `crates/core` needs, and no
//! more. Two backends implement it:
//!
//! * the virtual-ISA [`crate::asm::Assembler`], which produces a
//!   [`crate::asm::CodeBuffer`] of [`MachInst`]s executed by the
//!   CPU simulator — the measurement path; and
//! * [`crate::x64_masm::X64Masm`], which expands the same
//!   operations into real x86-64 machine bytes with its own label patching,
//!   source map, and runtime relocations — the demonstration that the
//!   emission side of the design is conventional.
//!
//! Operations that key engine-side metadata (calls and probes) return an
//! opaque *site index*: the virtual backend returns the instruction index,
//! the x86-64 backend the byte offset of the emitted sequence. The compiler
//! stores those indices in its call-site/probe-site/stackmap tables without
//! interpreting them.

use crate::asm::{Assembler, CodeBuffer};
use crate::inst::{
    AluOp, CmpOp, ConvOp, FAluOp, FCmpOp, FUnOp, Label, MachInst, TrapCode, UnOp, Width,
};
use crate::reg::{AnyReg, FReg, Reg};
use crate::values::ValueTag;

/// Which code-emission backend an engine configuration uses.
///
/// The virtual ISA is the only backend the CPU simulator can *execute*; the
/// x86-64 backend emits real machine bytes (for code-size figures and
/// encoding validation) but cannot run them here, because the offline
/// environment provides no way to map executable pages.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum CodeBackend {
    /// Emit virtual-ISA instructions into a [`CodeBuffer`] (executable by
    /// the simulator). The default.
    #[default]
    VirtualIsa,
    /// Emit real x86-64 machine bytes through
    /// [`crate::x64_masm::X64Masm`].
    X64,
}

/// Appends a `(position, bytecode offset)` entry to a source map,
/// collapsing marks at the same code position (the latest mark wins, so
/// empty ranges vanish).
///
/// Both backends record their source maps through this helper; the
/// cross-backend differential tests rely on the collapse behaviour being
/// identical so the two maps carry the same bytecode-offset sequence.
pub fn push_source_mark(map: &mut Vec<(usize, u32)>, at: usize, offset: u32) {
    if let Some(last) = map.last_mut() {
        if last.0 == at {
            last.1 = offset;
            return;
        }
    }
    map.push((at, offset));
}

/// The macro-assembler operations the single-pass compiler emits through.
///
/// Implementations are *append-only* forward emitters with forward-reference
/// label patching, mirroring how real baseline compilers patch relative
/// displacements. See the module docs for the backend contract.
pub trait Masm {
    /// The finished-code type this backend produces.
    type Output;

    // ---- Labels and positions ------------------------------------------

    /// Allocates a fresh, unbound label.
    fn new_label(&mut self) -> Label;

    /// Allocates a label already bound to the current position.
    fn new_bound_label(&mut self) -> Label {
        let label = self.new_label();
        self.bind(label);
        label
    }

    /// Binds a label to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    fn bind(&mut self, label: Label);

    /// Records that code emitted from here on originates from the Wasm
    /// bytecode offset `offset` (the source map used for stack traces,
    /// instrumentation, and tier-down).
    fn mark_source(&mut self, offset: u32);

    /// The number of macro operations emitted so far (a backend-independent
    /// instruction count for compile statistics).
    fn num_insts(&self) -> usize;

    /// The current emission position, in the same units as the site indices
    /// this backend returns from calls and probes (instruction index for the
    /// virtual ISA, byte offset for byte-level backends). Code emitted next
    /// starts here; OSR entry stubs record this as their entry point.
    fn position(&self) -> usize;

    /// The size of the code emitted so far, in bytes (estimated for the
    /// virtual ISA, exact for byte-level backends).
    fn code_size(&self) -> usize;

    /// Finishes emission, resolving all labels.
    ///
    /// # Panics
    ///
    /// Panics if any allocated label was never bound; a compiler bug.
    fn finish(self) -> Self::Output;

    // ---- Moves, slots, and tags ----------------------------------------

    /// Loads an integer immediate into a GPR.
    fn mov_imm(&mut self, dst: Reg, imm: i64);
    /// Loads raw IEEE-754 bits into an FPR.
    fn fmov_imm(&mut self, dst: FReg, bits: u64);
    /// Register-to-register move between GPRs.
    fn mov(&mut self, dst: Reg, src: Reg);
    /// Register-to-register move between FPRs.
    fn fmov(&mut self, dst: FReg, src: FReg);
    /// Loads a value-stack slot (relative to the frame base) into a register.
    fn load_slot(&mut self, dst: AnyReg, slot: u32);
    /// Stores a register into a value-stack slot.
    fn store_slot(&mut self, slot: u32, src: AnyReg);
    /// Stores an immediate directly into a value-stack slot.
    fn store_slot_imm(&mut self, slot: u32, imm: i64);
    /// Stores a value tag for a slot (the dynamic cost the paper's tag
    /// optimizations eliminate).
    fn store_tag(&mut self, slot: u32, tag: ValueTag);

    // ---- Arithmetic ----------------------------------------------------

    /// Three-address integer ALU operation.
    fn alu(&mut self, op: AluOp, width: Width, dst: Reg, a: Reg, b: Reg);
    /// Integer ALU operation with an immediate right operand (the paper's
    /// immediate-mode instruction selection).
    fn alu_imm(&mut self, op: AluOp, width: Width, dst: Reg, a: Reg, imm: i64);
    /// Single-operand integer operation.
    fn unop(&mut self, op: UnOp, width: Width, dst: Reg, src: Reg);
    /// Integer comparison producing 0/1.
    fn cmp(&mut self, op: CmpOp, width: Width, dst: Reg, a: Reg, b: Reg);
    /// Integer comparison against an immediate.
    fn cmp_imm(&mut self, op: CmpOp, width: Width, dst: Reg, a: Reg, imm: i64);
    /// Three-address floating-point operation.
    fn falu(&mut self, op: FAluOp, width: Width, dst: FReg, a: FReg, b: FReg);
    /// Single-operand floating-point operation.
    fn funop(&mut self, op: FUnOp, width: Width, dst: FReg, src: FReg);
    /// Floating-point comparison producing 0/1 in a GPR.
    fn fcmp(&mut self, op: FCmpOp, width: Width, dst: Reg, a: FReg, b: FReg);
    /// Numeric conversion (register banks are determined by the conversion).
    fn convert(&mut self, op: ConvOp, dst: AnyReg, src: AnyReg);
    /// Integer select: `dst = if cond != 0 { if_true } else { if_false }`.
    fn select(&mut self, dst: Reg, cond: Reg, if_true: Reg, if_false: Reg);
    /// Floating-point select.
    fn fselect(&mut self, dst: FReg, cond: Reg, if_true: FReg, if_false: FReg);

    // ---- Linear memory and globals -------------------------------------

    /// Load from linear memory: `width` bytes at `[addr + offset]`,
    /// optionally sign-extended, into a `dst_width` destination value.
    fn mem_load(
        &mut self,
        dst: AnyReg,
        addr: Reg,
        offset: u32,
        width: u32,
        signed: bool,
        dst_width: Width,
    );
    /// Store `width` bytes of `src` to linear memory at `[addr + offset]`.
    fn mem_store(&mut self, src: AnyReg, addr: Reg, offset: u32, width: u32);
    /// `memory.size` in pages.
    fn memory_size(&mut self, dst: Reg);
    /// `memory.grow` by a page delta.
    fn memory_grow(&mut self, dst: Reg, delta: Reg);
    /// Reads a global into a register.
    fn global_get(&mut self, dst: AnyReg, index: u32);
    /// Writes a register into a global.
    fn global_set(&mut self, index: u32, src: AnyReg);

    // ---- Control flow --------------------------------------------------

    /// Unconditional jump.
    fn jump(&mut self, target: Label);
    /// Conditional branch on a register being non-zero (or zero if negated).
    fn br_if(&mut self, cond: Reg, target: Label, negate: bool);
    /// Multi-way branch (jump table).
    fn br_table(&mut self, index: Reg, targets: Vec<Label>, default: Label);
    /// Direct call; returns the call's site index for engine metadata.
    fn call(&mut self, func_index: u32) -> usize;
    /// Indirect call through a table; returns the call's site index.
    fn call_indirect(&mut self, type_index: u32, table_index: u32, index: Reg) -> usize;
    /// Unconditional trap.
    fn trap(&mut self, code: TrapCode);
    /// Return from the function (results already stored per the calling
    /// convention).
    fn ret(&mut self);

    // ---- Metering ------------------------------------------------------

    /// Deduct `amount` fuel from the instance budget, trapping with
    /// [`TrapCode::OutOfFuel`] on exhaustion. A no-op when the executing
    /// instance has no fuel limit.
    fn fuel_check(&mut self, amount: u64);
    /// Poll the engine epoch, trapping with [`TrapCode::Interrupted`] once it
    /// passes the instance deadline. A no-op without a deadline.
    fn epoch_check(&mut self);

    // ---- Probes --------------------------------------------------------

    /// Unoptimized probe (runtime lookup); returns the probe's site index.
    fn probe_runtime(&mut self, probe_id: u32) -> usize;
    /// Optimized direct-call probe; returns the probe's site index.
    fn probe_direct(&mut self, probe_id: u32) -> usize;
    /// Fully intrinsified counter probe; returns the probe's site index.
    fn probe_counter(&mut self, counter_id: u32) -> usize;
    /// Optimized probe passing the top-of-stack value directly; returns the
    /// probe's site index.
    fn probe_tos(&mut self, probe_id: u32, src: AnyReg) -> usize;
}

/// The virtual-ISA backend: every macro operation is exactly one
/// [`MachInst`], and site indices are instruction indices — the engine uses
/// them to resume execution after calls and probes.
impl Masm for Assembler {
    type Output = CodeBuffer;

    fn new_label(&mut self) -> Label {
        Assembler::new_label(self)
    }

    fn bind(&mut self, label: Label) {
        Assembler::bind(self, label)
    }

    fn mark_source(&mut self, offset: u32) {
        Assembler::mark_source(self, offset)
    }

    fn num_insts(&self) -> usize {
        self.len()
    }

    fn position(&self) -> usize {
        self.len()
    }

    fn code_size(&self) -> usize {
        Assembler::code_size(self)
    }

    fn finish(self) -> CodeBuffer {
        Assembler::finish(self)
    }

    fn mov_imm(&mut self, dst: Reg, imm: i64) {
        self.emit(MachInst::MovImm { dst, imm });
    }

    fn fmov_imm(&mut self, dst: FReg, bits: u64) {
        self.emit(MachInst::FMovImm { dst, bits });
    }

    fn mov(&mut self, dst: Reg, src: Reg) {
        self.emit(MachInst::Mov { dst, src });
    }

    fn fmov(&mut self, dst: FReg, src: FReg) {
        self.emit(MachInst::FMov { dst, src });
    }

    fn load_slot(&mut self, dst: AnyReg, slot: u32) {
        self.emit(MachInst::LoadSlot { dst, slot });
    }

    fn store_slot(&mut self, slot: u32, src: AnyReg) {
        self.emit(MachInst::StoreSlot { slot, src });
    }

    fn store_slot_imm(&mut self, slot: u32, imm: i64) {
        self.emit(MachInst::StoreSlotImm { slot, imm });
    }

    fn store_tag(&mut self, slot: u32, tag: ValueTag) {
        self.emit(MachInst::StoreTag { slot, tag });
    }

    fn alu(&mut self, op: AluOp, width: Width, dst: Reg, a: Reg, b: Reg) {
        self.emit(MachInst::Alu { op, width, dst, a, b });
    }

    fn alu_imm(&mut self, op: AluOp, width: Width, dst: Reg, a: Reg, imm: i64) {
        self.emit(MachInst::AluImm { op, width, dst, a, imm });
    }

    fn unop(&mut self, op: UnOp, width: Width, dst: Reg, src: Reg) {
        self.emit(MachInst::Unop { op, width, dst, src });
    }

    fn cmp(&mut self, op: CmpOp, width: Width, dst: Reg, a: Reg, b: Reg) {
        self.emit(MachInst::Cmp { op, width, dst, a, b });
    }

    fn cmp_imm(&mut self, op: CmpOp, width: Width, dst: Reg, a: Reg, imm: i64) {
        self.emit(MachInst::CmpImm { op, width, dst, a, imm });
    }

    fn falu(&mut self, op: FAluOp, width: Width, dst: FReg, a: FReg, b: FReg) {
        self.emit(MachInst::FAlu { op, width, dst, a, b });
    }

    fn funop(&mut self, op: FUnOp, width: Width, dst: FReg, src: FReg) {
        self.emit(MachInst::FUnop { op, width, dst, src });
    }

    fn fcmp(&mut self, op: FCmpOp, width: Width, dst: Reg, a: FReg, b: FReg) {
        self.emit(MachInst::FCmp { op, width, dst, a, b });
    }

    fn convert(&mut self, op: ConvOp, dst: AnyReg, src: AnyReg) {
        self.emit(MachInst::Convert { op, dst, src });
    }

    fn select(&mut self, dst: Reg, cond: Reg, if_true: Reg, if_false: Reg) {
        self.emit(MachInst::Select { dst, cond, if_true, if_false });
    }

    fn fselect(&mut self, dst: FReg, cond: Reg, if_true: FReg, if_false: FReg) {
        self.emit(MachInst::FSelect { dst, cond, if_true, if_false });
    }

    fn mem_load(
        &mut self,
        dst: AnyReg,
        addr: Reg,
        offset: u32,
        width: u32,
        signed: bool,
        dst_width: Width,
    ) {
        self.emit(MachInst::MemLoad { dst, addr, offset, width, signed, dst_width });
    }

    fn mem_store(&mut self, src: AnyReg, addr: Reg, offset: u32, width: u32) {
        self.emit(MachInst::MemStore { src, addr, offset, width });
    }

    fn memory_size(&mut self, dst: Reg) {
        self.emit(MachInst::MemorySize { dst });
    }

    fn memory_grow(&mut self, dst: Reg, delta: Reg) {
        self.emit(MachInst::MemoryGrow { dst, delta });
    }

    fn global_get(&mut self, dst: AnyReg, index: u32) {
        self.emit(MachInst::GlobalGet { dst, index });
    }

    fn global_set(&mut self, index: u32, src: AnyReg) {
        self.emit(MachInst::GlobalSet { index, src });
    }

    fn jump(&mut self, target: Label) {
        self.emit(MachInst::Jump { target });
    }

    fn br_if(&mut self, cond: Reg, target: Label, negate: bool) {
        self.emit(MachInst::BrIf { cond, target, negate });
    }

    fn br_table(&mut self, index: Reg, targets: Vec<Label>, default: Label) {
        self.emit(MachInst::BrTable { index, targets, default });
    }

    fn call(&mut self, func_index: u32) -> usize {
        self.emit(MachInst::Call { func_index })
    }

    fn call_indirect(&mut self, type_index: u32, table_index: u32, index: Reg) -> usize {
        self.emit(MachInst::CallIndirect { type_index, table_index, index })
    }

    fn trap(&mut self, code: TrapCode) {
        self.emit(MachInst::Trap { code });
    }

    fn ret(&mut self) {
        self.emit(MachInst::Return);
    }

    fn fuel_check(&mut self, amount: u64) {
        self.emit(MachInst::FuelCheck { amount });
    }

    fn epoch_check(&mut self) {
        self.emit(MachInst::EpochCheck);
    }

    fn probe_runtime(&mut self, probe_id: u32) -> usize {
        self.emit(MachInst::ProbeRuntime { probe_id })
    }

    fn probe_direct(&mut self, probe_id: u32) -> usize {
        self.emit(MachInst::ProbeDirect { probe_id })
    }

    fn probe_counter(&mut self, counter_id: u32) -> usize {
        self.emit(MachInst::ProbeCounter { counter_id })
    }

    fn probe_tos(&mut self, probe_id: u32, src: AnyReg) -> usize {
        self.emit(MachInst::ProbeTosValue { probe_id, src })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a backend through one shape of every operation class.
    fn exercise<M: Masm>(mut m: M) -> M {
        let r1 = Reg(1);
        let r2 = Reg(2);
        let f1 = FReg(1);
        let f2 = FReg(2);
        m.mark_source(0);
        m.mov_imm(r1, 7);
        m.fmov_imm(f1, 1.5f64.to_bits());
        m.mov(r2, r1);
        m.fmov(f2, f1);
        m.load_slot(AnyReg::Gpr(r1), 0);
        m.store_slot(1, AnyReg::Fpr(f1));
        m.store_slot_imm(2, -1);
        m.store_tag(2, ValueTag::I64);
        m.alu(AluOp::Add, Width::W32, r1, r1, r2);
        m.alu_imm(AluOp::Shl, Width::W64, r1, r2, 3);
        m.unop(UnOp::Eqz, Width::W32, r1, r2);
        m.cmp(CmpOp::LtS, Width::W64, r1, r1, r2);
        m.cmp_imm(CmpOp::Eq, Width::W32, r1, r2, 5);
        m.falu(FAluOp::Mul, Width::W64, f1, f1, f2);
        m.funop(FUnOp::Sqrt, Width::W32, f1, f2);
        m.fcmp(FCmpOp::Le, Width::W64, r1, f1, f2);
        m.convert(ConvOp::F64ConvertI32S, AnyReg::Fpr(f1), AnyReg::Gpr(r1));
        m.select(r1, r2, r1, r2);
        m.fselect(f1, r1, f1, f2);
        m.mem_load(AnyReg::Gpr(r1), r2, 4, 4, true, Width::W64);
        m.mem_store(AnyReg::Gpr(r1), r2, 4, 2);
        m.memory_size(r1);
        m.memory_grow(r1, r2);
        m.global_get(AnyReg::Gpr(r1), 0);
        m.global_set(0, AnyReg::Gpr(r1));
        let skip = m.new_label();
        m.br_if(r1, skip, true);
        let loop_top = m.new_bound_label();
        m.mark_source(9);
        let c = m.call(3);
        let ci = m.call_indirect(0, 0, r1);
        assert!(ci >= c, "site indices advance monotonically");
        m.probe_runtime(0);
        m.probe_direct(1);
        m.probe_counter(2);
        m.probe_tos(3, AnyReg::Gpr(r1));
        m.fuel_check(4);
        m.epoch_check();
        m.jump(loop_top);
        m.bind(skip);
        let end = m.new_label();
        m.br_table(r1, vec![skip, loop_top], end);
        m.bind(end);
        m.trap(TrapCode::Unreachable);
        m.ret();
        assert!(m.num_insts() > 0);
        assert!(m.code_size() > 0);
        m
    }

    #[test]
    fn virtual_backend_emits_one_inst_per_operation() {
        let asm = exercise(Assembler::new());
        // Virtual backend: macro ops map 1:1 onto MachInsts.
        let code = Masm::finish(asm);
        assert_eq!(code.len(), 38);
        assert!(code.source_map().len() == 2);
    }

    #[test]
    fn backend_default_is_virtual() {
        assert_eq!(CodeBackend::default(), CodeBackend::VirtualIsa);
    }
}
