//! Execution substrate for the baseline-compiler study: a virtual target ISA,
//! assembler, cycle cost model, CPU simulator, and the tagged value stack,
//! linear memory, and tables shared by every execution tier.
//!
//! The paper's compilers emit x86-64 and run on hardware; this reproduction
//! substitutes a virtual register machine whose emitted code is *actually
//! executed* by [`cpu::Cpu`] against the same runtime objects the interpreter
//! uses, with execution time measured in simulated cycles from a single
//! [`cost::CostModel`]. See DESIGN.md for why this preserves the paper's
//! relative results.
//!
//! Module map:
//!
//! * [`reg`] — general-purpose and floating-point registers;
//! * [`inst`] — the instruction set, including value-tag stores and probes;
//! * [`asm`] — forward-patching assembler and finished [`asm::CodeBuffer`]s
//!   with bytecode source maps;
//! * [`ops`] — scalar semantics shared by interpreter, CPU, and constant
//!   folding;
//! * [`masm`] — the [`masm::Masm`] macro-assembler trait that separates the
//!   single-pass translation strategy from target encoding, implemented by
//!   the virtual-ISA assembler and by the x86-64 backend;
//! * [`lower`] — classification of Wasm opcodes into machine operations;
//! * [`values`] — tagged 64-bit slots, the value stack, and globals;
//! * [`memory`] — linear memory and tables;
//! * [`cost`] — the cycle cost model;
//! * [`cpu`] — the resumable CPU simulator;
//! * [`x64`] — a byte-level x86-64 instruction encoder;
//! * [`x64_masm`] — the x86-64 [`masm::Masm`] backend built on that encoder,
//!   emitting real machine bytes with label patching, a source map, and
//!   runtime relocations.

#![warn(missing_docs)]

pub mod asm;
pub mod cost;
pub mod cpu;
pub mod inst;
pub mod lower;
pub mod masm;
pub mod memory;
pub mod ops;
pub mod reg;
pub mod values;
pub mod x64;
pub mod x64_masm;

pub use asm::{Assembler, CodeBuffer};
pub use masm::{CodeBackend, Masm};
pub use cost::{CostModel, CycleCounter};
pub use cpu::{Cpu, CpuExit, CpuState, ExecContext, Meter, ProbeExit};
pub use inst::{Label, MachInst, TrapCode, Width};
pub use memory::{LinearMemory, Table};
pub use reg::{AnyReg, FReg, Reg};
pub use x64_masm::{X64Code, X64Masm};
pub use values::{GlobalSlot, ValueStack, ValueTag, WasmValue};
