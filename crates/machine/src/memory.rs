//! Linear memory and function tables.
//!
//! These are the runtime storage objects that both the interpreter and
//! JIT-compiled code access. Loads and stores are bounds-checked, producing
//! the same traps in every execution tier.

use crate::inst::TrapCode;
use wasm::types::{Limits, MAX_PAGES, PAGE_SIZE};

/// A WebAssembly linear memory.
#[derive(Debug, Clone)]
pub struct LinearMemory {
    bytes: Vec<u8>,
    limits: Limits,
}

impl LinearMemory {
    /// Creates a memory with `limits.min` pages.
    pub fn new(limits: Limits) -> LinearMemory {
        let pages = limits.min.min(MAX_PAGES);
        LinearMemory {
            bytes: vec![0; pages as usize * PAGE_SIZE as usize],
            limits,
        }
    }

    /// The current size in pages.
    pub fn size_pages(&self) -> u32 {
        (self.bytes.len() / PAGE_SIZE as usize) as u32
    }

    /// The current size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Grows the memory by `delta` pages. Returns the previous size in pages,
    /// or -1 (as the Wasm semantics require) if the grow failed.
    pub fn grow(&mut self, delta: u32) -> i32 {
        let old_pages = self.size_pages();
        let new_pages = match old_pages.checked_add(delta) {
            Some(p) => p,
            None => return -1,
        };
        let max = self.limits.max.unwrap_or(MAX_PAGES).min(MAX_PAGES);
        if new_pages > max {
            return -1;
        }
        self.bytes
            .resize(new_pages as usize * PAGE_SIZE as usize, 0);
        old_pages as i32
    }

    /// Checks that an access of `width` bytes at `addr + offset` is in bounds
    /// and returns the effective address.
    pub fn check(&self, addr: u32, offset: u32, width: u32) -> Result<usize, TrapCode> {
        let effective = addr as u64 + offset as u64;
        let end = effective + width as u64;
        if end > self.bytes.len() as u64 {
            return Err(TrapCode::MemoryOutOfBounds);
        }
        Ok(effective as usize)
    }

    /// Reads `width` (1, 2, 4, or 8) bytes as a little-endian unsigned value.
    pub fn load(&self, addr: u32, offset: u32, width: u32) -> Result<u64, TrapCode> {
        let at = self.check(addr, offset, width)?;
        let mut out = [0u8; 8];
        out[..width as usize].copy_from_slice(&self.bytes[at..at + width as usize]);
        Ok(u64::from_le_bytes(out))
    }

    /// Writes the low `width` (1, 2, 4, or 8) bytes of `value` little-endian.
    pub fn store(&mut self, addr: u32, offset: u32, width: u32, value: u64) -> Result<(), TrapCode> {
        let at = self.check(addr, offset, width)?;
        let bytes = value.to_le_bytes();
        self.bytes[at..at + width as usize].copy_from_slice(&bytes[..width as usize]);
        Ok(())
    }

    /// Copies raw bytes into memory (used by data segments).
    pub fn init(&mut self, offset: u32, data: &[u8]) -> Result<(), TrapCode> {
        let at = self.check(offset, 0, data.len() as u32)?;
        self.bytes[at..at + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Direct read-only access to the backing bytes (for tests and tools).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Overwrites this memory with the contents and limits of `image`,
    /// reusing the existing allocation where possible. This is the warm
    /// instantiation path: restoring a pre-initialized snapshot is one
    /// resize (usually a no-op or a truncation) plus a memcpy, instead of
    /// re-evaluating and bounds-checking every data segment.
    pub fn reset_from(&mut self, image: &LinearMemory) {
        self.bytes.resize(image.bytes.len(), 0);
        self.bytes.copy_from_slice(&image.bytes);
        self.limits = image.limits;
    }
}

/// A function table (`funcref` elements only).
#[derive(Debug, Clone)]
pub struct Table {
    elements: Vec<Option<u32>>,
    limits: Limits,
}

impl Table {
    /// Creates a table with `limits.min` null elements.
    pub fn new(limits: Limits) -> Table {
        Table {
            elements: vec![None; limits.min as usize],
            limits,
        }
    }

    /// The current number of elements.
    pub fn size(&self) -> u32 {
        self.elements.len() as u32
    }

    /// The declared limits.
    pub fn limits(&self) -> Limits {
        self.limits
    }

    /// Reads the element at `index`.
    pub fn get(&self, index: u32) -> Result<Option<u32>, TrapCode> {
        self.elements
            .get(index as usize)
            .copied()
            .ok_or(TrapCode::TableOutOfBounds)
    }

    /// Writes the element at `index`.
    pub fn set(&mut self, index: u32, func: Option<u32>) -> Result<(), TrapCode> {
        match self.elements.get_mut(index as usize) {
            Some(slot) => {
                *slot = func;
                Ok(())
            }
            None => Err(TrapCode::TableOutOfBounds),
        }
    }

    /// Overwrites this table with the contents and limits of `image`,
    /// reusing the existing allocation where possible (the table analogue of
    /// [`LinearMemory::reset_from`]).
    pub fn reset_from(&mut self, image: &Table) {
        self.elements.resize(image.elements.len(), None);
        self.elements.copy_from_slice(&image.elements);
        self.limits = image.limits;
    }

    /// Initializes a run of elements (used by element segments).
    pub fn init(&mut self, offset: u32, funcs: &[u32]) -> Result<(), TrapCode> {
        let end = offset as usize + funcs.len();
        if end > self.elements.len() {
            return Err(TrapCode::TableOutOfBounds);
        }
        for (i, &f) in funcs.iter().enumerate() {
            self.elements[offset as usize + i] = Some(f);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_basic_load_store() {
        let mut m = LinearMemory::new(Limits::at_least(1));
        assert_eq!(m.size_pages(), 1);
        assert_eq!(m.size_bytes(), PAGE_SIZE as usize);
        m.store(16, 0, 4, 0xAABBCCDD).unwrap();
        assert_eq!(m.load(16, 0, 4).unwrap(), 0xAABBCCDD);
        assert_eq!(m.load(16, 0, 1).unwrap(), 0xDD);
        assert_eq!(m.load(12, 4, 4).unwrap(), 0xAABBCCDD);
        m.store(0, 0, 8, u64::MAX).unwrap();
        assert_eq!(m.load(0, 0, 8).unwrap(), u64::MAX);
    }

    #[test]
    fn memory_bounds_checks() {
        let m = LinearMemory::new(Limits::at_least(1));
        let size = m.size_bytes() as u32;
        assert!(m.load(size - 4, 0, 4).is_ok());
        assert_eq!(m.load(size - 3, 0, 4), Err(TrapCode::MemoryOutOfBounds));
        assert_eq!(m.load(size, 0, 1), Err(TrapCode::MemoryOutOfBounds));
        // Offset + addr overflow must not wrap.
        assert_eq!(
            m.load(u32::MAX, u32::MAX, 8),
            Err(TrapCode::MemoryOutOfBounds)
        );
    }

    #[test]
    fn memory_grow_respects_max() {
        let mut m = LinearMemory::new(Limits::bounded(1, 3));
        assert_eq!(m.grow(1), 1);
        assert_eq!(m.size_pages(), 2);
        assert_eq!(m.grow(2), -1, "would exceed max");
        assert_eq!(m.grow(1), 2);
        assert_eq!(m.grow(1), -1);
        assert_eq!(m.size_pages(), 3);
    }

    #[test]
    fn memory_init_data() {
        let mut m = LinearMemory::new(Limits::at_least(1));
        m.init(100, &[1, 2, 3]).unwrap();
        assert_eq!(m.load(100, 0, 1).unwrap(), 1);
        assert_eq!(m.load(102, 0, 1).unwrap(), 3);
        assert!(m.init(PAGE_SIZE - 1, &[1, 2]).is_err());
    }

    #[test]
    fn reset_from_restores_contents_and_limits() {
        let mut image = LinearMemory::new(Limits::bounded(1, 4));
        image.store(64, 0, 8, 0x1122334455667788).unwrap();
        // A dirtied, grown memory snaps back to the image exactly.
        let mut m = LinearMemory::new(Limits::bounded(1, 4));
        m.store(64, 0, 8, u64::MAX).unwrap();
        m.store(0, 0, 4, 7).unwrap();
        assert_eq!(m.grow(2), 1);
        m.reset_from(&image);
        assert_eq!(m.size_pages(), image.size_pages());
        assert_eq!(m.bytes(), image.bytes());
        assert_eq!(m.load(64, 0, 8).unwrap(), 0x1122334455667788);
        assert_eq!(m.grow(3), 1);
        assert_eq!(m.grow(1), -1, "image limits restored too");

        let mut t_image = Table::new(Limits::bounded(2, 8));
        t_image.set(0, Some(9)).unwrap();
        let mut t = Table::new(Limits::bounded(2, 8));
        t.set(0, Some(1)).unwrap();
        t.set(1, Some(2)).unwrap();
        t.reset_from(&t_image);
        assert_eq!(t.get(0).unwrap(), Some(9));
        assert_eq!(t.get(1).unwrap(), None);
        assert_eq!(t.size(), 2);
    }

    #[test]
    fn table_get_set_init() {
        let mut t = Table::new(Limits::bounded(4, 8));
        assert_eq!(t.size(), 4);
        assert_eq!(t.get(0).unwrap(), None);
        t.set(1, Some(7)).unwrap();
        assert_eq!(t.get(1).unwrap(), Some(7));
        assert_eq!(t.get(4), Err(TrapCode::TableOutOfBounds));
        assert_eq!(t.set(9, None), Err(TrapCode::TableOutOfBounds));
        t.init(2, &[5, 6]).unwrap();
        assert_eq!(t.get(2).unwrap(), Some(5));
        assert_eq!(t.get(3).unwrap(), Some(6));
        assert!(t.init(3, &[1, 2]).is_err());
        assert_eq!(t.limits(), Limits::bounded(4, 8));
    }
}
