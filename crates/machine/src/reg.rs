//! Register definitions for the virtual target ISA.
//!
//! The target models a conventional 64-bit register machine: 14 general
//! purpose registers and 16 floating-point registers, mirroring x86-64's
//! GPR/XMM split that the production baseline compilers target. The GPR
//! count is 14 rather than 16 because a real x86-64 backend must reserve the
//! stack pointer (RSP) and a value-frame pointer (this reproduction's x64
//! backend pins R14, the register Wizard uses); keeping the virtual register
//! file inside that budget lets every virtual register map injectively onto
//! a concrete x86-64 register (see [`crate::x64_masm`]).

use std::fmt;

/// Number of general-purpose registers.
pub const NUM_GPRS: usize = 14;
/// Number of floating-point registers.
pub const NUM_FPRS: usize = 16;

/// A general-purpose (integer) register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

impl Reg {
    /// Returns the register's index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// All general-purpose registers.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..NUM_GPRS as u8).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A floating-point register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FReg(pub u8);

impl FReg {
    /// Returns the register's index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// All floating-point registers.
    pub fn all() -> impl Iterator<Item = FReg> {
        (0..NUM_FPRS as u8).map(FReg)
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Either kind of register. Conversions and slot moves may cross the
/// integer/float bank boundary, so several instructions take an `AnyReg`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnyReg {
    /// A general-purpose register.
    Gpr(Reg),
    /// A floating-point register.
    Fpr(FReg),
}

impl AnyReg {
    /// Returns the GPR if this is one.
    pub fn as_gpr(self) -> Option<Reg> {
        match self {
            AnyReg::Gpr(r) => Some(r),
            AnyReg::Fpr(_) => None,
        }
    }

    /// Returns the FPR if this is one.
    pub fn as_fpr(self) -> Option<FReg> {
        match self {
            AnyReg::Fpr(r) => Some(r),
            AnyReg::Gpr(_) => None,
        }
    }

    /// True if this is a floating-point register.
    pub fn is_float(self) -> bool {
        matches!(self, AnyReg::Fpr(_))
    }
}

impl From<Reg> for AnyReg {
    fn from(r: Reg) -> AnyReg {
        AnyReg::Gpr(r)
    }
}

impl From<FReg> for AnyReg {
    fn from(r: FReg) -> AnyReg {
        AnyReg::Fpr(r)
    }
}

impl fmt::Display for AnyReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnyReg::Gpr(r) => write!(f, "{r}"),
            AnyReg::Fpr(r) => write!(f, "{r}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_display_and_index() {
        assert_eq!(Reg(3).to_string(), "r3");
        assert_eq!(FReg(11).to_string(), "f11");
        assert_eq!(Reg(7).index(), 7);
        assert_eq!(FReg(0).index(), 0);
    }

    #[test]
    fn register_iteration() {
        assert_eq!(Reg::all().count(), NUM_GPRS);
        assert_eq!(FReg::all().count(), NUM_FPRS);
        assert_eq!(Reg::all().next(), Some(Reg(0)));
        assert_eq!(FReg::all().last(), Some(FReg(15)));
    }

    #[test]
    fn any_reg_conversions() {
        let g: AnyReg = Reg(5).into();
        let f: AnyReg = FReg(6).into();
        assert_eq!(g.as_gpr(), Some(Reg(5)));
        assert_eq!(g.as_fpr(), None);
        assert_eq!(f.as_fpr(), Some(FReg(6)));
        assert_eq!(f.as_gpr(), None);
        assert!(!g.is_float());
        assert!(f.is_float());
        assert_eq!(g.to_string(), "r5");
        assert_eq!(f.to_string(), "f6");
    }
}
