//! A byte-level x86-64 instruction encoder.
//!
//! The reproduction executes the virtual ISA in a simulator, but real baseline
//! compilers emit concrete machine bytes. This module demonstrates that the
//! emission side is conventional: it encodes the x86-64 subset a baseline
//! compiler needs (register moves, immediates, loads/stores off a frame
//! register, ALU ops, compares, conditional jumps, calls, and returns) with
//! correct REX/ModRM/SIB encoding, verified byte-for-byte against reference
//! encodings in the tests. It is not wired into the execution path because
//! the offline environment provides no way to map executable pages.

/// An x86-64 general-purpose register (the 16 architectural GPRs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Gpr {
    Rax = 0,
    Rcx = 1,
    Rdx = 2,
    Rbx = 3,
    Rsp = 4,
    Rbp = 5,
    Rsi = 6,
    Rdi = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
}

impl Gpr {
    fn low3(self) -> u8 {
        (self as u8) & 0x7
    }

    fn high_bit(self) -> u8 {
        ((self as u8) >> 3) & 1
    }
}

/// Condition codes for `Jcc` / `SETcc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Cond {
    Eq = 0x4,
    Ne = 0x5,
    Lt = 0xC,
    Ge = 0xD,
    Le = 0xE,
    Gt = 0xF,
    Below = 0x2,
    AboveEq = 0x3,
    BelowEq = 0x6,
    Above = 0x7,
}

/// An append-only x86-64 machine code buffer.
#[derive(Debug, Clone, Default)]
pub struct X64Assembler {
    bytes: Vec<u8>,
}

impl X64Assembler {
    /// Creates an empty assembler.
    pub fn new() -> X64Assembler {
        X64Assembler::default()
    }

    /// The bytes emitted so far.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The current offset (used as a branch-target anchor).
    pub fn offset(&self) -> usize {
        self.bytes.len()
    }

    fn rex(&mut self, w: bool, reg: u8, rm: u8) {
        let rex = 0x40 | ((w as u8) << 3) | (reg << 2) | rm;
        if rex != 0x40 || w {
            self.bytes.push(rex);
        }
    }

    fn rex_always(&mut self, w: bool, reg: u8, rm: u8) {
        self.bytes.push(0x40 | ((w as u8) << 3) | (reg << 2) | rm);
    }

    fn modrm(&mut self, md: u8, reg: u8, rm: u8) {
        self.bytes.push((md << 6) | (reg << 3) | rm);
    }

    /// `mov dst, imm32` (sign-extended to 64 bits via the C7 form).
    pub fn mov_ri32(&mut self, dst: Gpr, imm: i32) {
        self.rex_always(true, 0, dst.high_bit());
        self.bytes.push(0xC7);
        self.modrm(0b11, 0, dst.low3());
        self.bytes.extend_from_slice(&imm.to_le_bytes());
    }

    /// `movabs dst, imm64`.
    pub fn mov_ri64(&mut self, dst: Gpr, imm: i64) {
        self.rex_always(true, 0, dst.high_bit());
        self.bytes.push(0xB8 + dst.low3());
        self.bytes.extend_from_slice(&imm.to_le_bytes());
    }

    /// `mov dst, src` (64-bit register move).
    pub fn mov_rr(&mut self, dst: Gpr, src: Gpr) {
        self.rex_always(true, src.high_bit(), dst.high_bit());
        self.bytes.push(0x89);
        self.modrm(0b11, src.low3(), dst.low3());
    }

    /// `mov dst, [base + disp32]` (64-bit load).
    pub fn load_rm(&mut self, dst: Gpr, base: Gpr, disp: i32) {
        self.rex_always(true, dst.high_bit(), base.high_bit());
        self.bytes.push(0x8B);
        self.modrm(0b10, dst.low3(), base.low3());
        if base.low3() == 4 {
            // RSP/R12 need a SIB byte.
            self.bytes.push(0x24);
        }
        self.bytes.extend_from_slice(&disp.to_le_bytes());
    }

    /// `mov [base + disp32], src` (64-bit store).
    pub fn store_mr(&mut self, base: Gpr, disp: i32, src: Gpr) {
        self.rex_always(true, src.high_bit(), base.high_bit());
        self.bytes.push(0x89);
        self.modrm(0b10, src.low3(), base.low3());
        if base.low3() == 4 {
            self.bytes.push(0x24);
        }
        self.bytes.extend_from_slice(&disp.to_le_bytes());
    }

    /// `add dst, src` (64-bit).
    pub fn add_rr(&mut self, dst: Gpr, src: Gpr) {
        self.rex_always(true, src.high_bit(), dst.high_bit());
        self.bytes.push(0x01);
        self.modrm(0b11, src.low3(), dst.low3());
    }

    /// `sub dst, src` (64-bit).
    pub fn sub_rr(&mut self, dst: Gpr, src: Gpr) {
        self.rex_always(true, src.high_bit(), dst.high_bit());
        self.bytes.push(0x29);
        self.modrm(0b11, src.low3(), dst.low3());
    }

    /// `add dst, imm32` (64-bit, immediate form — the ISEL optimization).
    pub fn add_ri(&mut self, dst: Gpr, imm: i32) {
        self.rex_always(true, 0, dst.high_bit());
        self.bytes.push(0x81);
        self.modrm(0b11, 0, dst.low3());
        self.bytes.extend_from_slice(&imm.to_le_bytes());
    }

    /// `cmp a, b` (64-bit).
    pub fn cmp_rr(&mut self, a: Gpr, b: Gpr) {
        self.rex_always(true, b.high_bit(), a.high_bit());
        self.bytes.push(0x39);
        self.modrm(0b11, b.low3(), a.low3());
    }

    /// `jcc rel32`; returns the offset of the displacement for later patching.
    pub fn jcc(&mut self, cond: Cond, rel: i32) -> usize {
        self.bytes.push(0x0F);
        self.bytes.push(0x80 | cond as u8);
        let at = self.bytes.len();
        self.bytes.extend_from_slice(&rel.to_le_bytes());
        at
    }

    /// `jmp rel32`; returns the offset of the displacement for later patching.
    pub fn jmp(&mut self, rel: i32) -> usize {
        self.bytes.push(0xE9);
        let at = self.bytes.len();
        self.bytes.extend_from_slice(&rel.to_le_bytes());
        at
    }

    /// Patches a previously emitted rel32 displacement so it targets `target`.
    pub fn patch_rel32(&mut self, disp_offset: usize, target: usize) {
        let next = disp_offset + 4;
        let rel = target as i64 - next as i64;
        self.bytes[disp_offset..disp_offset + 4]
            .copy_from_slice(&(rel as i32).to_le_bytes());
    }

    /// `call rel32`.
    pub fn call(&mut self, rel: i32) {
        self.bytes.push(0xE8);
        self.bytes.extend_from_slice(&rel.to_le_bytes());
    }

    /// `ret`.
    pub fn ret(&mut self) {
        self.bytes.push(0xC3);
    }

    /// `mov byte [base + disp32], imm8` — the encoding a value-tag store uses.
    pub fn store_tag_byte(&mut self, base: Gpr, disp: i32, tag: u8) {
        self.rex(false, 0, base.high_bit());
        self.bytes.push(0xC6);
        self.modrm(0b10, 0, base.low3());
        if base.low3() == 4 {
            self.bytes.push(0x24);
        }
        self.bytes.extend_from_slice(&disp.to_le_bytes());
        self.bytes.push(tag);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mov_immediate_encodings() {
        let mut a = X64Assembler::new();
        a.mov_ri32(Gpr::Rax, 7);
        assert_eq!(a.bytes(), &[0x48, 0xC7, 0xC0, 0x07, 0x00, 0x00, 0x00]);

        let mut a = X64Assembler::new();
        a.mov_ri32(Gpr::R12, -1);
        assert_eq!(a.bytes(), &[0x49, 0xC7, 0xC4, 0xFF, 0xFF, 0xFF, 0xFF]);

        let mut a = X64Assembler::new();
        a.mov_ri64(Gpr::Rcx, 0x1122334455667788);
        assert_eq!(
            a.bytes(),
            &[0x48, 0xB9, 0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11]
        );
    }

    #[test]
    fn register_moves_and_alu() {
        let mut a = X64Assembler::new();
        a.mov_rr(Gpr::Rbx, Gpr::Rax);
        assert_eq!(a.bytes(), &[0x48, 0x89, 0xC3]);

        let mut a = X64Assembler::new();
        a.add_rr(Gpr::Rax, Gpr::R9);
        assert_eq!(a.bytes(), &[0x4C, 0x01, 0xC8]);

        let mut a = X64Assembler::new();
        a.sub_rr(Gpr::Rdx, Gpr::Rcx);
        assert_eq!(a.bytes(), &[0x48, 0x29, 0xCA]);

        let mut a = X64Assembler::new();
        a.add_ri(Gpr::Rsi, 64);
        assert_eq!(a.bytes(), &[0x48, 0x81, 0xC6, 0x40, 0x00, 0x00, 0x00]);

        let mut a = X64Assembler::new();
        a.cmp_rr(Gpr::Rax, Gpr::Rbx);
        assert_eq!(a.bytes(), &[0x48, 0x39, 0xD8]);
    }

    #[test]
    fn loads_and_stores_off_frame_register() {
        // mov rax, [r14 + 0x10] — loading a value-stack slot off VFP (r14).
        let mut a = X64Assembler::new();
        a.load_rm(Gpr::Rax, Gpr::R14, 0x10);
        assert_eq!(a.bytes(), &[0x49, 0x8B, 0x86, 0x10, 0x00, 0x00, 0x00]);

        // mov [r14 + 0x18], rbx — spilling to the value stack.
        let mut a = X64Assembler::new();
        a.store_mr(Gpr::R14, 0x18, Gpr::Rbx);
        assert_eq!(a.bytes(), &[0x49, 0x89, 0x9E, 0x18, 0x00, 0x00, 0x00]);

        // RSP-based addressing requires a SIB byte.
        let mut a = X64Assembler::new();
        a.load_rm(Gpr::Rcx, Gpr::Rsp, 8);
        assert_eq!(a.bytes(), &[0x48, 0x8B, 0x8C, 0x24, 0x08, 0x00, 0x00, 0x00]);
    }

    #[test]
    fn tag_store_byte_encoding() {
        // mov byte [r14 + 0x21], 5 — a value tag store.
        let mut a = X64Assembler::new();
        a.store_tag_byte(Gpr::R14, 0x21, 5);
        assert_eq!(a.bytes(), &[0x41, 0xC6, 0x86, 0x21, 0x00, 0x00, 0x00, 0x05]);

        // Low register needs no REX prefix.
        let mut a = X64Assembler::new();
        a.store_tag_byte(Gpr::Rdi, 4, 1);
        assert_eq!(a.bytes(), &[0xC6, 0x87, 0x04, 0x00, 0x00, 0x00, 0x01]);
    }

    #[test]
    fn control_flow_and_patching() {
        let mut a = X64Assembler::new();
        a.ret();
        assert_eq!(a.bytes(), &[0xC3]);

        let mut a = X64Assembler::new();
        a.call(0x10);
        assert_eq!(a.bytes(), &[0xE8, 0x10, 0x00, 0x00, 0x00]);

        // Forward jump patched to land on the ret.
        let mut a = X64Assembler::new();
        let disp = a.jmp(0);
        a.mov_ri32(Gpr::Rax, 1);
        let target = a.offset();
        a.ret();
        a.patch_rel32(disp, target);
        // jmp is 5 bytes; mov is 7 bytes; so rel = 7.
        assert_eq!(&a.bytes()[..5], &[0xE9, 0x07, 0x00, 0x00, 0x00]);

        // Conditional jump encoding.
        let mut a = X64Assembler::new();
        a.jcc(Cond::Eq, -6);
        assert_eq!(a.bytes(), &[0x0F, 0x84, 0xFA, 0xFF, 0xFF, 0xFF]);
        let mut a = X64Assembler::new();
        a.jcc(Cond::Lt, 2);
        assert_eq!(a.bytes(), &[0x0F, 0x8C, 0x02, 0x00, 0x00, 0x00]);
    }
}
