//! A byte-level x86-64 instruction encoder.
//!
//! The reproduction executes the virtual ISA in a simulator, but real baseline
//! compilers emit concrete machine bytes. This module encodes the x86-64
//! subset a baseline compiler needs — register moves, immediates, loads and
//! stores off a frame register, the group-1 ALU forms, multiplies, divides,
//! shifts, `setcc`/`cmovcc`, zero/sign extensions, the scalar SSE operations,
//! conversions, conditional jumps, calls, and returns — with correct
//! REX/ModRM/SIB encoding, verified byte-for-byte against reference
//! encodings in the tests. The [`crate::x64_masm::X64Masm`] macro-assembler
//! backend expands the compiler's semantic operations into these encodings.
//! The emitted code is never *executed* here because the offline environment
//! provides no way to map executable pages.

/// An x86-64 general-purpose register (the 16 architectural GPRs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Gpr {
    Rax = 0,
    Rcx = 1,
    Rdx = 2,
    Rbx = 3,
    Rsp = 4,
    Rbp = 5,
    Rsi = 6,
    Rdi = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
}

impl Gpr {
    fn low3(self) -> u8 {
        (self as u8) & 0x7
    }

    fn high_bit(self) -> u8 {
        ((self as u8) >> 3) & 1
    }
}

/// An x86-64 SSE register (XMM0–XMM15).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xmm(pub u8);

impl Xmm {
    fn low3(self) -> u8 {
        self.0 & 0x7
    }

    fn high_bit(self) -> u8 {
        (self.0 >> 3) & 1
    }
}

/// The group-1 ALU operations (`add`, `or`, `and`, `sub`, `xor`, `cmp`),
/// which share their ModRM `/n` extension and opcode layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Grp1 {
    Add = 0,
    Or = 1,
    And = 4,
    Sub = 5,
    Xor = 6,
    Cmp = 7,
}

impl Grp1 {
    /// The `op r/m, r` opcode (the MR form).
    fn mr_opcode(self) -> u8 {
        (self as u8) * 8 + 0x01
    }

    /// The `op r, r/m` opcode (the RM form).
    fn rm_opcode(self) -> u8 {
        (self as u8) * 8 + 0x03
    }
}

/// The shift/rotate operations of the `D3`/`C1` group, by ModRM extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum ShiftOp {
    Rol = 0,
    Ror = 1,
    Shl = 4,
    Shr = 5,
    Sar = 7,
}

/// Scalar SSE arithmetic (`addsd`, `subsd`, ... and their `ss` forms), by
/// opcode byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum SseOp {
    Sqrt = 0x51,
    Add = 0x58,
    Mul = 0x59,
    Sub = 0x5C,
    Min = 0x5D,
    Div = 0x5E,
    Max = 0x5F,
}

/// Condition codes for `Jcc` / `SETcc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Cond {
    Eq = 0x4,
    Ne = 0x5,
    Lt = 0xC,
    Ge = 0xD,
    Le = 0xE,
    Gt = 0xF,
    Below = 0x2,
    AboveEq = 0x3,
    BelowEq = 0x6,
    Above = 0x7,
}

/// An append-only x86-64 machine code buffer.
#[derive(Debug, Clone, Default)]
pub struct X64Assembler {
    bytes: Vec<u8>,
}

impl X64Assembler {
    /// Creates an empty assembler.
    pub fn new() -> X64Assembler {
        X64Assembler::default()
    }

    /// The bytes emitted so far.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The current offset (used as a branch-target anchor).
    pub fn offset(&self) -> usize {
        self.bytes.len()
    }

    fn rex(&mut self, w: bool, reg: u8, rm: u8) {
        let rex = 0x40 | ((w as u8) << 3) | (reg << 2) | rm;
        if rex != 0x40 || w {
            self.bytes.push(rex);
        }
    }

    fn rex_always(&mut self, w: bool, reg: u8, rm: u8) {
        self.bytes.push(0x40 | ((w as u8) << 3) | (reg << 2) | rm);
    }

    fn modrm(&mut self, md: u8, reg: u8, rm: u8) {
        self.bytes.push((md << 6) | (reg << 3) | rm);
    }

    /// `mov dst, imm32` (sign-extended to 64 bits via the C7 form).
    pub fn mov_ri32(&mut self, dst: Gpr, imm: i32) {
        self.rex_always(true, 0, dst.high_bit());
        self.bytes.push(0xC7);
        self.modrm(0b11, 0, dst.low3());
        self.bytes.extend_from_slice(&imm.to_le_bytes());
    }

    /// `movabs dst, imm64`.
    pub fn mov_ri64(&mut self, dst: Gpr, imm: i64) {
        self.rex_always(true, 0, dst.high_bit());
        self.bytes.push(0xB8 + dst.low3());
        self.bytes.extend_from_slice(&imm.to_le_bytes());
    }

    /// `mov dst, src` (64-bit register move).
    pub fn mov_rr(&mut self, dst: Gpr, src: Gpr) {
        self.mov_rr_w(true, dst, src);
    }

    /// `mov dst, [base + disp32]` (64-bit load).
    pub fn load_rm(&mut self, dst: Gpr, base: Gpr, disp: i32) {
        self.load_rm_w(true, dst, base, disp);
    }

    /// `mov [base + disp32], src` (64-bit store).
    pub fn store_mr(&mut self, base: Gpr, disp: i32, src: Gpr) {
        self.store_mr_w(true, base, disp, src);
    }

    /// `add dst, src` (64-bit).
    pub fn add_rr(&mut self, dst: Gpr, src: Gpr) {
        self.grp1_rr(Grp1::Add, true, dst, src);
    }

    /// `sub dst, src` (64-bit).
    pub fn sub_rr(&mut self, dst: Gpr, src: Gpr) {
        self.grp1_rr(Grp1::Sub, true, dst, src);
    }

    /// `add dst, imm32` (64-bit, immediate form — the ISEL optimization).
    pub fn add_ri(&mut self, dst: Gpr, imm: i32) {
        self.grp1_ri(Grp1::Add, true, dst, imm);
    }

    /// `cmp a, b` (64-bit).
    pub fn cmp_rr(&mut self, a: Gpr, b: Gpr) {
        self.grp1_rr(Grp1::Cmp, true, a, b);
    }

    /// `jcc rel32`; returns the offset of the displacement for later patching.
    pub fn jcc(&mut self, cond: Cond, rel: i32) -> usize {
        self.bytes.push(0x0F);
        self.bytes.push(0x80 | cond as u8);
        let at = self.bytes.len();
        self.bytes.extend_from_slice(&rel.to_le_bytes());
        at
    }

    /// `jmp rel32`; returns the offset of the displacement for later patching.
    pub fn jmp(&mut self, rel: i32) -> usize {
        self.bytes.push(0xE9);
        let at = self.bytes.len();
        self.bytes.extend_from_slice(&rel.to_le_bytes());
        at
    }

    /// Patches a previously emitted rel32 displacement so it targets `target`.
    pub fn patch_rel32(&mut self, disp_offset: usize, target: usize) {
        let next = disp_offset + 4;
        let rel = target as i64 - next as i64;
        self.bytes[disp_offset..disp_offset + 4]
            .copy_from_slice(&(rel as i32).to_le_bytes());
    }

    /// `call rel32`.
    pub fn call(&mut self, rel: i32) {
        self.bytes.push(0xE8);
        self.bytes.extend_from_slice(&rel.to_le_bytes());
    }

    /// `ret`.
    pub fn ret(&mut self) {
        self.bytes.push(0xC3);
    }

    /// `mov byte [base + disp32], imm8` — the encoding a value-tag store uses.
    pub fn store_tag_byte(&mut self, base: Gpr, disp: i32, tag: u8) {
        self.rex(false, 0, base.high_bit());
        self.bytes.push(0xC6);
        self.mem_operand(0, base, disp);
        self.bytes.push(tag);
    }

    // ---- Addressing helpers ---------------------------------------------

    /// Emits a `[base + disp32]` memory operand (mod=10) for `reg`.
    fn mem_operand(&mut self, reg: u8, base: Gpr, disp: i32) {
        self.modrm(0b10, reg, base.low3());
        if base.low3() == 4 {
            // RSP/R12 need a SIB byte.
            self.bytes.push(0x24);
        }
        self.bytes.extend_from_slice(&disp.to_le_bytes());
    }

    // ---- Stack operations -----------------------------------------------

    /// `push r64`.
    pub fn push_r(&mut self, reg: Gpr) {
        if reg.high_bit() != 0 {
            self.bytes.push(0x41);
        }
        self.bytes.push(0x50 + reg.low3());
    }

    /// `pop r64`.
    pub fn pop_r(&mut self, reg: Gpr) {
        if reg.high_bit() != 0 {
            self.bytes.push(0x41);
        }
        self.bytes.push(0x58 + reg.low3());
    }

    /// `push imm32` (sign-extended to 64 bits).
    pub fn push_i32(&mut self, imm: i32) {
        self.bytes.push(0x68);
        self.bytes.extend_from_slice(&imm.to_le_bytes());
    }

    /// `add rsp, imm8` (used to drop a pushed temporary).
    pub fn add_rsp_i8(&mut self, imm: i8) {
        self.bytes.extend_from_slice(&[0x48, 0x83, 0xC4, imm as u8]);
    }

    // ---- Width-parameterized moves and ALU forms ------------------------

    /// `mov dst, src` with explicit width (`w = true` for 64-bit; the 32-bit
    /// form zero-extends, as x86-64 always does).
    pub fn mov_rr_w(&mut self, w: bool, dst: Gpr, src: Gpr) {
        self.rex(w, src.high_bit(), dst.high_bit());
        self.bytes.push(0x89);
        self.modrm(0b11, src.low3(), dst.low3());
    }

    /// `mov dst, [base + disp32]` with explicit width.
    pub fn load_rm_w(&mut self, w: bool, dst: Gpr, base: Gpr, disp: i32) {
        self.rex(w, dst.high_bit(), base.high_bit());
        self.bytes.push(0x8B);
        self.mem_operand(dst.low3(), base, disp);
    }

    /// `mov [base + disp32], src` with explicit width.
    pub fn store_mr_w(&mut self, w: bool, base: Gpr, disp: i32, src: Gpr) {
        self.rex(w, src.high_bit(), base.high_bit());
        self.bytes.push(0x89);
        self.mem_operand(src.low3(), base, disp);
    }

    /// `mov byte [base + disp32], src8`. A REX prefix is always emitted so
    /// SIL/DIL/SPL/BPL encode as byte registers.
    pub fn store_mr8(&mut self, base: Gpr, disp: i32, src: Gpr) {
        self.rex_always(false, src.high_bit(), base.high_bit());
        self.bytes.push(0x88);
        self.mem_operand(src.low3(), base, disp);
    }

    /// `mov word [base + disp32], src16`.
    pub fn store_mr16(&mut self, base: Gpr, disp: i32, src: Gpr) {
        self.bytes.push(0x66);
        self.rex(false, src.high_bit(), base.high_bit());
        self.bytes.push(0x89);
        self.mem_operand(src.low3(), base, disp);
    }

    /// `mov qword|dword [base + disp32], imm32` (sign-extended when `w`).
    pub fn store_mi32(&mut self, w: bool, base: Gpr, disp: i32, imm: i32) {
        self.rex(w, 0, base.high_bit());
        self.bytes.push(0xC7);
        self.mem_operand(0, base, disp);
        self.bytes.extend_from_slice(&imm.to_le_bytes());
    }

    /// Group-1 ALU `op dst, src` (register forms).
    pub fn grp1_rr(&mut self, op: Grp1, w: bool, dst: Gpr, src: Gpr) {
        self.rex(w, src.high_bit(), dst.high_bit());
        self.bytes.push(op.mr_opcode());
        self.modrm(0b11, src.low3(), dst.low3());
    }

    /// Group-1 ALU `op dst, imm32`.
    pub fn grp1_ri(&mut self, op: Grp1, w: bool, dst: Gpr, imm: i32) {
        self.rex(w, 0, dst.high_bit());
        self.bytes.push(0x81);
        self.modrm(0b11, op as u8, dst.low3());
        self.bytes.extend_from_slice(&imm.to_le_bytes());
    }

    /// Group-1 ALU `op dst, [base + disp32]`.
    pub fn grp1_rm(&mut self, op: Grp1, w: bool, dst: Gpr, base: Gpr, disp: i32) {
        self.rex(w, dst.high_bit(), base.high_bit());
        self.bytes.push(op.rm_opcode());
        self.mem_operand(dst.low3(), base, disp);
    }

    /// `imul dst, src`.
    pub fn imul_rr(&mut self, w: bool, dst: Gpr, src: Gpr) {
        self.rex(w, dst.high_bit(), src.high_bit());
        self.bytes.extend_from_slice(&[0x0F, 0xAF]);
        self.modrm(0b11, dst.low3(), src.low3());
    }

    /// `imul dst, src, imm32`.
    pub fn imul_rri(&mut self, w: bool, dst: Gpr, src: Gpr, imm: i32) {
        self.rex(w, dst.high_bit(), src.high_bit());
        self.bytes.push(0x69);
        self.modrm(0b11, dst.low3(), src.low3());
        self.bytes.extend_from_slice(&imm.to_le_bytes());
    }

    /// Shift/rotate `op dst, cl`.
    pub fn shift_cl(&mut self, op: ShiftOp, w: bool, dst: Gpr) {
        self.rex(w, 0, dst.high_bit());
        self.bytes.push(0xD3);
        self.modrm(0b11, op as u8, dst.low3());
    }

    /// Shift/rotate `op dst, imm8`.
    pub fn shift_ri(&mut self, op: ShiftOp, w: bool, dst: Gpr, imm: u8) {
        self.rex(w, 0, dst.high_bit());
        self.bytes.push(0xC1);
        self.modrm(0b11, op as u8, dst.low3());
        self.bytes.push(imm);
    }

    /// `cqo` (`w = true`) / `cdq`: sign-extend RAX into RDX ahead of a
    /// signed division.
    pub fn cqo(&mut self, w: bool) {
        if w {
            self.bytes.push(0x48);
        }
        self.bytes.push(0x99);
    }

    /// `idiv`/`div` with the divisor spilled at `[rsp]`.
    pub fn div_at_rsp(&mut self, signed: bool, w: bool) {
        if w {
            self.bytes.push(0x48);
        }
        self.bytes.push(0xF7);
        // mod=00, rm=100 (SIB), base=RSP: `[rsp]` with no displacement.
        self.modrm(0b00, if signed { 7 } else { 6 }, 0b100);
        self.bytes.push(0x24);
    }

    /// `test a, b`.
    pub fn test_rr(&mut self, w: bool, a: Gpr, b: Gpr) {
        self.rex(w, b.high_bit(), a.high_bit());
        self.bytes.push(0x85);
        self.modrm(0b11, b.low3(), a.low3());
    }

    /// `setcc dst8`. A REX prefix is always emitted so SIL/DIL/SPL/BPL
    /// encode as byte registers.
    pub fn setcc(&mut self, cond: Cond, dst: Gpr) {
        self.rex_always(false, 0, dst.high_bit());
        self.bytes.extend_from_slice(&[0x0F, 0x90 | cond as u8]);
        self.modrm(0b11, 0, dst.low3());
    }

    /// `cmovcc dst, src`.
    pub fn cmovcc(&mut self, cond: Cond, w: bool, dst: Gpr, src: Gpr) {
        self.rex(w, dst.high_bit(), src.high_bit());
        self.bytes.extend_from_slice(&[0x0F, 0x40 | cond as u8]);
        self.modrm(0b11, dst.low3(), src.low3());
    }

    // ---- Extensions and bit counts --------------------------------------

    /// `movzx dst, src8` (REX always, for SIL/DIL/SPL/BPL).
    pub fn movzx_r8(&mut self, dst: Gpr, src: Gpr) {
        self.rex_always(false, dst.high_bit(), src.high_bit());
        self.bytes.extend_from_slice(&[0x0F, 0xB6]);
        self.modrm(0b11, dst.low3(), src.low3());
    }

    /// `movsx dst, src8` with explicit destination width.
    pub fn movsx_r8(&mut self, w: bool, dst: Gpr, src: Gpr) {
        self.rex_always(w, dst.high_bit(), src.high_bit());
        self.bytes.extend_from_slice(&[0x0F, 0xBE]);
        self.modrm(0b11, dst.low3(), src.low3());
    }

    /// `movsx dst, src16` with explicit destination width.
    pub fn movsx_r16(&mut self, w: bool, dst: Gpr, src: Gpr) {
        self.rex(w, dst.high_bit(), src.high_bit());
        self.bytes.extend_from_slice(&[0x0F, 0xBF]);
        self.modrm(0b11, dst.low3(), src.low3());
    }

    /// `movsxd dst, src32` (64-bit destination).
    pub fn movsxd(&mut self, dst: Gpr, src: Gpr) {
        self.rex_always(true, dst.high_bit(), src.high_bit());
        self.bytes.push(0x63);
        self.modrm(0b11, dst.low3(), src.low3());
    }

    /// `movzx dst, byte [base + disp32]`.
    pub fn movzx_rm8(&mut self, dst: Gpr, base: Gpr, disp: i32) {
        self.rex(false, dst.high_bit(), base.high_bit());
        self.bytes.extend_from_slice(&[0x0F, 0xB6]);
        self.mem_operand(dst.low3(), base, disp);
    }

    /// `movzx dst, word [base + disp32]`.
    pub fn movzx_rm16(&mut self, dst: Gpr, base: Gpr, disp: i32) {
        self.rex(false, dst.high_bit(), base.high_bit());
        self.bytes.extend_from_slice(&[0x0F, 0xB7]);
        self.mem_operand(dst.low3(), base, disp);
    }

    /// `movsx dst, byte [base + disp32]` with explicit destination width.
    pub fn movsx_rm8(&mut self, w: bool, dst: Gpr, base: Gpr, disp: i32) {
        self.rex(w, dst.high_bit(), base.high_bit());
        self.bytes.extend_from_slice(&[0x0F, 0xBE]);
        self.mem_operand(dst.low3(), base, disp);
    }

    /// `movsx dst, word [base + disp32]` with explicit destination width.
    pub fn movsx_rm16(&mut self, w: bool, dst: Gpr, base: Gpr, disp: i32) {
        self.rex(w, dst.high_bit(), base.high_bit());
        self.bytes.extend_from_slice(&[0x0F, 0xBF]);
        self.mem_operand(dst.low3(), base, disp);
    }

    /// `movsxd dst, dword [base + disp32]`.
    pub fn movsxd_rm(&mut self, dst: Gpr, base: Gpr, disp: i32) {
        self.rex_always(true, dst.high_bit(), base.high_bit());
        self.bytes.push(0x63);
        self.mem_operand(dst.low3(), base, disp);
    }

    /// `popcnt` (0xB8), `lzcnt` (0xBD), or `tzcnt` (0xBC): `F3 0F op /r`.
    fn f3_bitcount(&mut self, opcode: u8, w: bool, dst: Gpr, src: Gpr) {
        self.bytes.push(0xF3);
        self.rex(w, dst.high_bit(), src.high_bit());
        self.bytes.extend_from_slice(&[0x0F, opcode]);
        self.modrm(0b11, dst.low3(), src.low3());
    }

    /// `popcnt dst, src`.
    pub fn popcnt(&mut self, w: bool, dst: Gpr, src: Gpr) {
        self.f3_bitcount(0xB8, w, dst, src);
    }

    /// `lzcnt dst, src`.
    pub fn lzcnt(&mut self, w: bool, dst: Gpr, src: Gpr) {
        self.f3_bitcount(0xBD, w, dst, src);
    }

    /// `tzcnt dst, src`.
    pub fn tzcnt(&mut self, w: bool, dst: Gpr, src: Gpr) {
        self.f3_bitcount(0xBC, w, dst, src);
    }

    /// `btc dst, imm8` — complement one bit (sign-bit flips for `f64.neg`).
    pub fn btc_ri(&mut self, w: bool, dst: Gpr, bit: u8) {
        self.rex(w, 0, dst.high_bit());
        self.bytes.extend_from_slice(&[0x0F, 0xBA]);
        self.modrm(0b11, 7, dst.low3());
        self.bytes.push(bit);
    }

    /// `ud2` — the canonical trap instruction.
    pub fn ud2(&mut self) {
        self.bytes.extend_from_slice(&[0x0F, 0x0B]);
    }

    // ---- Scalar SSE ------------------------------------------------------

    /// `movaps dst, src` (full-register XMM copy).
    pub fn movaps_rr(&mut self, dst: Xmm, src: Xmm) {
        self.rex(false, dst.high_bit(), src.high_bit());
        self.bytes.extend_from_slice(&[0x0F, 0x28]);
        self.modrm(0b11, dst.low3(), src.low3());
    }

    /// `movsd`/`movss dst, [base + disp32]` (`double = true` for `sd`).
    pub fn movs_rm(&mut self, double: bool, dst: Xmm, base: Gpr, disp: i32) {
        self.bytes.push(if double { 0xF2 } else { 0xF3 });
        self.rex(false, dst.high_bit(), base.high_bit());
        self.bytes.extend_from_slice(&[0x0F, 0x10]);
        self.mem_operand(dst.low3(), base, disp);
    }

    /// `movsd`/`movss [base + disp32], src`.
    pub fn movs_mr(&mut self, double: bool, base: Gpr, disp: i32, src: Xmm) {
        self.bytes.push(if double { 0xF2 } else { 0xF3 });
        self.rex(false, src.high_bit(), base.high_bit());
        self.bytes.extend_from_slice(&[0x0F, 0x11]);
        self.mem_operand(src.low3(), base, disp);
    }

    /// Scalar SSE arithmetic `op dst, src` (`addsd`, `mulss`, `sqrtsd`, ...).
    pub fn sse_op(&mut self, op: SseOp, double: bool, dst: Xmm, src: Xmm) {
        self.bytes.push(if double { 0xF2 } else { 0xF3 });
        self.rex(false, dst.high_bit(), src.high_bit());
        self.bytes.extend_from_slice(&[0x0F, op as u8]);
        self.modrm(0b11, dst.low3(), src.low3());
    }

    /// `cmpsd`/`cmpss dst, src, pred` — compare to an all-ones/zero mask.
    pub fn cmps(&mut self, double: bool, dst: Xmm, src: Xmm, pred: u8) {
        self.bytes.push(if double { 0xF2 } else { 0xF3 });
        self.rex(false, dst.high_bit(), src.high_bit());
        self.bytes.extend_from_slice(&[0x0F, 0xC2]);
        self.modrm(0b11, dst.low3(), src.low3());
        self.bytes.push(pred);
    }

    /// `roundsd`/`roundss dst, src, mode` (SSE4.1).
    pub fn rounds(&mut self, double: bool, dst: Xmm, src: Xmm, mode: u8) {
        self.bytes.push(0x66);
        self.rex(false, dst.high_bit(), src.high_bit());
        self.bytes
            .extend_from_slice(&[0x0F, 0x3A, if double { 0x0B } else { 0x0A }]);
        self.modrm(0b11, dst.low3(), src.low3());
        self.bytes.push(mode);
    }

    /// `cvttsd2si`/`cvttss2si dst, src` (truncating float-to-int).
    pub fn cvtt_f2i(&mut self, double: bool, w: bool, dst: Gpr, src: Xmm) {
        self.bytes.push(if double { 0xF2 } else { 0xF3 });
        self.rex(w, dst.high_bit(), src.high_bit());
        self.bytes.extend_from_slice(&[0x0F, 0x2C]);
        self.modrm(0b11, dst.low3(), src.low3());
    }

    /// `cvtsi2sd`/`cvtsi2ss dst, src` (int-to-float).
    pub fn cvt_i2f(&mut self, double: bool, w: bool, dst: Xmm, src: Gpr) {
        self.bytes.push(if double { 0xF2 } else { 0xF3 });
        self.rex(w, dst.high_bit(), src.high_bit());
        self.bytes.extend_from_slice(&[0x0F, 0x2A]);
        self.modrm(0b11, dst.low3(), src.low3());
    }

    /// `cvtsd2ss`/`cvtss2sd dst, src` (`to_double` selects the result type).
    pub fn cvt_f2f(&mut self, to_double: bool, dst: Xmm, src: Xmm) {
        // The prefix names the *source* format.
        self.bytes.push(if to_double { 0xF3 } else { 0xF2 });
        self.rex(false, dst.high_bit(), src.high_bit());
        self.bytes.extend_from_slice(&[0x0F, 0x5A]);
        self.modrm(0b11, dst.low3(), src.low3());
    }

    /// `movq`/`movd dst_xmm, src_gpr`.
    pub fn movq_xr(&mut self, w: bool, dst: Xmm, src: Gpr) {
        self.bytes.push(0x66);
        self.rex(w, dst.high_bit(), src.high_bit());
        self.bytes.extend_from_slice(&[0x0F, 0x6E]);
        self.modrm(0b11, dst.low3(), src.low3());
    }

    /// `movq`/`movd dst_gpr, src_xmm`.
    pub fn movq_rx(&mut self, w: bool, dst: Gpr, src: Xmm) {
        self.bytes.push(0x66);
        self.rex(w, src.high_bit(), dst.high_bit());
        self.bytes.extend_from_slice(&[0x0F, 0x7E]);
        self.modrm(0b11, src.low3(), dst.low3());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mov_immediate_encodings() {
        let mut a = X64Assembler::new();
        a.mov_ri32(Gpr::Rax, 7);
        assert_eq!(a.bytes(), &[0x48, 0xC7, 0xC0, 0x07, 0x00, 0x00, 0x00]);

        let mut a = X64Assembler::new();
        a.mov_ri32(Gpr::R12, -1);
        assert_eq!(a.bytes(), &[0x49, 0xC7, 0xC4, 0xFF, 0xFF, 0xFF, 0xFF]);

        let mut a = X64Assembler::new();
        a.mov_ri64(Gpr::Rcx, 0x1122334455667788);
        assert_eq!(
            a.bytes(),
            &[0x48, 0xB9, 0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11]
        );
    }

    #[test]
    fn register_moves_and_alu() {
        let mut a = X64Assembler::new();
        a.mov_rr(Gpr::Rbx, Gpr::Rax);
        assert_eq!(a.bytes(), &[0x48, 0x89, 0xC3]);

        let mut a = X64Assembler::new();
        a.add_rr(Gpr::Rax, Gpr::R9);
        assert_eq!(a.bytes(), &[0x4C, 0x01, 0xC8]);

        let mut a = X64Assembler::new();
        a.sub_rr(Gpr::Rdx, Gpr::Rcx);
        assert_eq!(a.bytes(), &[0x48, 0x29, 0xCA]);

        let mut a = X64Assembler::new();
        a.add_ri(Gpr::Rsi, 64);
        assert_eq!(a.bytes(), &[0x48, 0x81, 0xC6, 0x40, 0x00, 0x00, 0x00]);

        let mut a = X64Assembler::new();
        a.cmp_rr(Gpr::Rax, Gpr::Rbx);
        assert_eq!(a.bytes(), &[0x48, 0x39, 0xD8]);
    }

    #[test]
    fn loads_and_stores_off_frame_register() {
        // mov rax, [r14 + 0x10] — loading a value-stack slot off VFP (r14).
        let mut a = X64Assembler::new();
        a.load_rm(Gpr::Rax, Gpr::R14, 0x10);
        assert_eq!(a.bytes(), &[0x49, 0x8B, 0x86, 0x10, 0x00, 0x00, 0x00]);

        // mov [r14 + 0x18], rbx — spilling to the value stack.
        let mut a = X64Assembler::new();
        a.store_mr(Gpr::R14, 0x18, Gpr::Rbx);
        assert_eq!(a.bytes(), &[0x49, 0x89, 0x9E, 0x18, 0x00, 0x00, 0x00]);

        // RSP-based addressing requires a SIB byte.
        let mut a = X64Assembler::new();
        a.load_rm(Gpr::Rcx, Gpr::Rsp, 8);
        assert_eq!(a.bytes(), &[0x48, 0x8B, 0x8C, 0x24, 0x08, 0x00, 0x00, 0x00]);
    }

    #[test]
    fn tag_store_byte_encoding() {
        // mov byte [r14 + 0x21], 5 — a value tag store.
        let mut a = X64Assembler::new();
        a.store_tag_byte(Gpr::R14, 0x21, 5);
        assert_eq!(a.bytes(), &[0x41, 0xC6, 0x86, 0x21, 0x00, 0x00, 0x00, 0x05]);

        // Low register needs no REX prefix.
        let mut a = X64Assembler::new();
        a.store_tag_byte(Gpr::Rdi, 4, 1);
        assert_eq!(a.bytes(), &[0xC6, 0x87, 0x04, 0x00, 0x00, 0x00, 0x01]);
    }

    #[test]
    fn stack_and_width_parameterized_forms() {
        let mut a = X64Assembler::new();
        a.push_r(Gpr::Rdx);
        a.push_r(Gpr::R12);
        a.pop_r(Gpr::Rdx);
        assert_eq!(a.bytes(), &[0x52, 0x41, 0x54, 0x5A]);

        let mut a = X64Assembler::new();
        a.push_i32(7);
        a.add_rsp_i8(8);
        assert_eq!(a.bytes(), &[0x68, 0x07, 0x00, 0x00, 0x00, 0x48, 0x83, 0xC4, 0x08]);

        // 32-bit register move has no REX for low registers.
        let mut a = X64Assembler::new();
        a.mov_rr_w(false, Gpr::Rcx, Gpr::Rax);
        assert_eq!(a.bytes(), &[0x89, 0xC1]);

        let mut a = X64Assembler::new();
        a.grp1_rr(Grp1::Xor, false, Gpr::Rdx, Gpr::Rdx);
        assert_eq!(a.bytes(), &[0x31, 0xD2]);

        let mut a = X64Assembler::new();
        a.grp1_ri(Grp1::Cmp, false, Gpr::Rcx, 3);
        assert_eq!(a.bytes(), &[0x81, 0xF9, 0x03, 0x00, 0x00, 0x00]);

        let mut a = X64Assembler::new();
        a.grp1_rm(Grp1::Or, true, Gpr::Rax, Gpr::Rsp, 0);
        assert_eq!(a.bytes(), &[0x48, 0x0B, 0x84, 0x24, 0x00, 0x00, 0x00, 0x00]);
    }

    #[test]
    fn multiply_divide_and_shift_sequences() {
        let mut a = X64Assembler::new();
        a.imul_rr(true, Gpr::Rax, Gpr::Rcx);
        assert_eq!(a.bytes(), &[0x48, 0x0F, 0xAF, 0xC1]);

        let mut a = X64Assembler::new();
        a.imul_rri(false, Gpr::Rax, Gpr::Rcx, 10);
        assert_eq!(a.bytes(), &[0x69, 0xC1, 0x0A, 0x00, 0x00, 0x00]);

        let mut a = X64Assembler::new();
        a.shift_cl(ShiftOp::Shl, true, Gpr::Rax);
        a.shift_ri(ShiftOp::Sar, false, Gpr::Rcx, 5);
        assert_eq!(a.bytes(), &[0x48, 0xD3, 0xE0, 0xC1, 0xF9, 0x05]);

        let mut a = X64Assembler::new();
        a.cqo(true);
        a.div_at_rsp(true, true);
        assert_eq!(a.bytes(), &[0x48, 0x99, 0x48, 0xF7, 0x3C, 0x24]);
        let mut a = X64Assembler::new();
        a.div_at_rsp(false, false);
        assert_eq!(a.bytes(), &[0xF7, 0x34, 0x24]);
    }

    #[test]
    fn flags_extensions_and_bit_counts() {
        let mut a = X64Assembler::new();
        a.test_rr(false, Gpr::Rax, Gpr::Rax);
        a.setcc(Cond::Eq, Gpr::Rax);
        a.movzx_r8(Gpr::Rax, Gpr::Rax);
        assert_eq!(a.bytes(), &[0x85, 0xC0, 0x40, 0x0F, 0x94, 0xC0, 0x40, 0x0F, 0xB6, 0xC0]);

        let mut a = X64Assembler::new();
        a.cmovcc(Cond::Ne, true, Gpr::Rax, Gpr::R9);
        assert_eq!(a.bytes(), &[0x49, 0x0F, 0x45, 0xC1]);

        let mut a = X64Assembler::new();
        a.popcnt(true, Gpr::Rax, Gpr::Rcx);
        a.lzcnt(false, Gpr::Rax, Gpr::Rcx);
        a.tzcnt(false, Gpr::Rax, Gpr::Rcx);
        assert_eq!(
            a.bytes(),
            &[0xF3, 0x48, 0x0F, 0xB8, 0xC1, 0xF3, 0x0F, 0xBD, 0xC1, 0xF3, 0x0F, 0xBC, 0xC1]
        );

        let mut a = X64Assembler::new();
        a.movsxd(Gpr::Rax, Gpr::Rcx);
        a.btc_ri(true, Gpr::Rax, 63);
        assert_eq!(a.bytes(), &[0x48, 0x63, 0xC1, 0x48, 0x0F, 0xBA, 0xF8, 0x3F]);

        let mut a = X64Assembler::new();
        a.ud2();
        assert_eq!(a.bytes(), &[0x0F, 0x0B]);
    }

    #[test]
    fn scalar_sse_encodings() {
        let mut a = X64Assembler::new();
        a.movaps_rr(Xmm(1), Xmm(2));
        assert_eq!(a.bytes(), &[0x0F, 0x28, 0xCA]);

        let mut a = X64Assembler::new();
        a.sse_op(SseOp::Add, true, Xmm(0), Xmm(1));
        a.sse_op(SseOp::Mul, false, Xmm(0), Xmm(1));
        assert_eq!(a.bytes(), &[0xF2, 0x0F, 0x58, 0xC1, 0xF3, 0x0F, 0x59, 0xC1]);

        // movsd xmm1, [r14 + 0x20] — loading a slot off the frame register.
        let mut a = X64Assembler::new();
        a.movs_rm(true, Xmm(1), Gpr::R14, 0x20);
        assert_eq!(a.bytes(), &[0xF2, 0x41, 0x0F, 0x10, 0x8E, 0x20, 0x00, 0x00, 0x00]);

        let mut a = X64Assembler::new();
        a.cmps(true, Xmm(0), Xmm(3), 1);
        assert_eq!(a.bytes(), &[0xF2, 0x0F, 0xC2, 0xC3, 0x01]);

        let mut a = X64Assembler::new();
        a.rounds(true, Xmm(1), Xmm(2), 3);
        assert_eq!(a.bytes(), &[0x66, 0x0F, 0x3A, 0x0B, 0xCA, 0x03]);

        let mut a = X64Assembler::new();
        a.cvtt_f2i(true, true, Gpr::Rax, Xmm(1));
        a.cvt_i2f(true, true, Xmm(1), Gpr::Rax);
        assert_eq!(
            a.bytes(),
            &[0xF2, 0x48, 0x0F, 0x2C, 0xC1, 0xF2, 0x48, 0x0F, 0x2A, 0xC8]
        );

        let mut a = X64Assembler::new();
        a.movq_rx(true, Gpr::Rax, Xmm(0));
        a.movq_xr(true, Xmm(0), Gpr::Rax);
        assert_eq!(
            a.bytes(),
            &[0x66, 0x48, 0x0F, 0x7E, 0xC0, 0x66, 0x48, 0x0F, 0x6E, 0xC0]
        );
    }

    #[test]
    fn control_flow_and_patching() {
        let mut a = X64Assembler::new();
        a.ret();
        assert_eq!(a.bytes(), &[0xC3]);

        let mut a = X64Assembler::new();
        a.call(0x10);
        assert_eq!(a.bytes(), &[0xE8, 0x10, 0x00, 0x00, 0x00]);

        // Forward jump patched to land on the ret.
        let mut a = X64Assembler::new();
        let disp = a.jmp(0);
        a.mov_ri32(Gpr::Rax, 1);
        let target = a.offset();
        a.ret();
        a.patch_rel32(disp, target);
        // jmp is 5 bytes; mov is 7 bytes; so rel = 7.
        assert_eq!(&a.bytes()[..5], &[0xE9, 0x07, 0x00, 0x00, 0x00]);

        // Conditional jump encoding.
        let mut a = X64Assembler::new();
        a.jcc(Cond::Eq, -6);
        assert_eq!(a.bytes(), &[0x0F, 0x84, 0xFA, 0xFF, 0xFF, 0xFF]);
        let mut a = X64Assembler::new();
        a.jcc(Cond::Lt, 2);
        assert_eq!(a.bytes(), &[0x0F, 0x8C, 0x02, 0x00, 0x00, 0x00]);
    }
}
