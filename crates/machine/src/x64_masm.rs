//! The x86-64 [`Masm`] backend: real machine bytes for the single-pass
//! compiler.
//!
//! This module promotes the byte-level encoder in [`crate::x64`] from a
//! demonstration to a first-class backend. It expands every semantic
//! operation of the [`Masm`] trait into concrete x86-64 instruction
//! sequences, with its own forward-reference label patching (rel32
//! displacements recorded as fixups and patched at `finish`, exactly as the
//! virtual assembler patches instruction indices) and its own byte-offset
//! source map.
//!
//! # Runtime contract
//!
//! The emitted code follows the same frame discipline as the virtual ISA:
//!
//! * **R14 is the value-frame pointer (VFP).** Each frame slot occupies
//!   [`SLOT_SIZE`] bytes: the 64-bit value at `[r14 + slot*16]` and the value
//!   tag byte at `[r14 + slot*16 + 8]` — the boxed slot layout of the paper's
//!   tagged value stack.
//! * **RAX is the macro-assembler scratch.** It is the image of the virtual
//!   scratch register `r0`, which the register allocator never assigns to a
//!   value, so macro expansions may clobber it freely. XMM0 plays the same
//!   role for the float bank. Expansions that need RCX (shift counts) or RDX
//!   (division) preserve them with push/pop.
//! * **The linear-memory base is cached in the frame header** at
//!   `[r14 - 8]`; memory accesses add it to the zero-extended 32-bit address
//!   and rely on guard pages for bounds checks, as production engines do.
//! * **Engine transfers are relocated calls.** Calls, indirect calls,
//!   probes, `memory.size`/`grow`, and global accesses emit a `call rel32`
//!   whose displacement is left for the engine to patch; each is recorded in
//!   [`X64Code::runtime_refs`] with its [`RuntimeOp`]. Traps are `ud2` sites
//!   recorded the same way. Two argument registers suffice because the
//!   compiler flushes all live state to the frame before observable points:
//!   a single value travels in RAX.
//!
//! Site indices returned from calls and probes are the byte offset of the
//! start of the emitted sequence.

use crate::inst::{
    AluOp, CmpOp, ConvOp, FAluOp, FCmpOp, FUnOp, Label, TrapCode, UnOp, Width,
};
use crate::masm::Masm;
use crate::reg::{AnyReg, FReg, Reg};
use crate::values::ValueTag;
use crate::x64::{Cond, Gpr, Grp1, ShiftOp, SseOp, X64Assembler, Xmm};

/// The value-frame pointer register.
pub const VFP: Gpr = Gpr::R14;
/// The macro-assembler scratch GPR (the image of virtual `r0`).
pub const SCRATCH: Gpr = Gpr::Rax;
/// The macro-assembler scratch XMM register (the image of virtual `f0`).
pub const FSCRATCH: Xmm = Xmm(0);
/// Bytes per value-stack slot: a 64-bit value plus its tag byte, padded.
pub const SLOT_SIZE: i32 = 16;
/// Frame-header displacement of the cached linear-memory base pointer.
pub const MEMBASE_DISP: i32 = -8;

/// Maps a virtual general-purpose register to its x86-64 image.
///
/// The mapping is injective: the 14 virtual GPRs cover every architectural
/// register except RSP (the machine stack) and R14 (the VFP). Virtual `r0`
/// maps to RAX, which doubles as the macro-assembler scratch — safe because
/// the register allocator never assigns `r0` to a value.
pub fn gpr_map(r: Reg) -> Gpr {
    const MAP: [Gpr; 14] = [
        Gpr::Rax,
        Gpr::Rcx,
        Gpr::Rdx,
        Gpr::Rbx,
        Gpr::Rsi,
        Gpr::Rdi,
        Gpr::R8,
        Gpr::R9,
        Gpr::R10,
        Gpr::R11,
        Gpr::R12,
        Gpr::R13,
        Gpr::R15,
        Gpr::Rbp,
    ];
    MAP[r.index()]
}

/// Maps a virtual floating-point register to its XMM image (the identity).
pub fn fpr_map(f: FReg) -> Xmm {
    Xmm(f.0)
}

/// Byte displacement of a slot's value within the frame.
pub fn slot_disp(slot: u32) -> i32 {
    slot as i32 * SLOT_SIZE
}

/// Byte displacement of a slot's tag byte within the frame.
pub fn tag_disp(slot: u32) -> i32 {
    slot_disp(slot) + 8
}

/// What a relocated runtime transfer does, recorded per call site so the
/// engine (or a linker) can patch the displacement to the right stub.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeOp {
    /// Direct Wasm call.
    Call {
        /// Callee function index.
        func_index: u32,
    },
    /// Indirect Wasm call; the table element index travels in RAX.
    CallIndirect {
        /// Expected signature (type index).
        type_index: u32,
        /// Table to index.
        table_index: u32,
    },
    /// `memory.size`; result in RAX.
    MemorySize,
    /// `memory.grow`; delta in RAX, result in RAX.
    MemoryGrow,
    /// Global read; result in RAX.
    GlobalGet {
        /// Global index.
        index: u32,
    },
    /// Global write; value in RAX.
    GlobalSet {
        /// Global index.
        index: u32,
    },
    /// Unoptimized probe (runtime lookup).
    ProbeRuntime {
        /// Probe site id.
        probe_id: u32,
    },
    /// Optimized direct-call probe.
    ProbeDirect {
        /// Probe site id.
        probe_id: u32,
    },
    /// Intrinsified counter probe.
    ProbeCounter {
        /// Counter id.
        counter_id: u32,
    },
    /// Optimized top-of-stack probe; the value travels in RAX.
    ProbeTos {
        /// Probe site id.
        probe_id: u32,
    },
    /// A conversion with no single-instruction x86-64 encoding
    /// (the unsigned 64-bit float/int cases); value in RAX.
    ConvertHelper {
        /// The conversion performed by the helper.
        op: ConvOp,
    },
    /// Fuel decrement-and-check; traps out of line on exhaustion.
    FuelCheck {
        /// Fuel units deducted by this check.
        amount: u64,
    },
    /// Epoch poll; traps out of line when the deadline has passed.
    EpochCheck,
    /// A trap site (`ud2`).
    Trap {
        /// The trap reason.
        code: TrapCode,
    },
}

/// One relocated engine transfer in the emitted code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeRef {
    /// Byte offset of the rel32 displacement to patch (or of the `ud2` for
    /// traps).
    pub patch_offset: usize,
    /// What the transfer does.
    pub op: RuntimeOp,
}

/// Finished x86-64 machine code plus the metadata the engine needs.
///
/// Equality compares the encoded bytes and all metadata, so `==` means
/// byte-identical output — what the pipeline's determinism tests check.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct X64Code {
    bytes: Vec<u8>,
    label_targets: Vec<usize>,
    source_map: Vec<(usize, u32)>,
    runtime_refs: Vec<RuntimeRef>,
    num_insts: usize,
}

impl X64Code {
    /// The machine-code bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The size of the code in bytes.
    pub fn code_size(&self) -> usize {
        self.bytes.len()
    }

    /// The number of macro operations that produced this code.
    pub fn num_insts(&self) -> usize {
        self.num_insts
    }

    /// The resolved label targets (byte offsets), indexed by label id.
    pub fn label_targets(&self) -> &[usize] {
        &self.label_targets
    }

    /// Resolves a label to its byte offset.
    pub fn target(&self, label: Label) -> usize {
        self.label_targets[label.0 as usize]
    }

    /// The (byte offset, bytecode offset) source map, sorted by byte offset.
    pub fn source_map(&self) -> &[(usize, u32)] {
        &self.source_map
    }

    /// The relocated engine transfers, in emission order.
    pub fn runtime_refs(&self) -> &[RuntimeRef] {
        &self.runtime_refs
    }

    /// Recomputes the Wasm bytecode offset for a machine-code byte offset.
    pub fn source_offset(&self, byte_offset: usize) -> Option<u32> {
        match self
            .source_map
            .binary_search_by_key(&byte_offset, |&(i, _)| i)
        {
            Ok(i) => Some(self.source_map[i].1),
            Err(0) => None,
            Err(i) => Some(self.source_map[i - 1].1),
        }
    }
}

/// The x86-64 macro-assembler.
#[derive(Debug, Clone, Default)]
pub struct X64Masm {
    asm: X64Assembler,
    labels: Vec<Option<usize>>,
    fixups: Vec<(usize, Label)>,
    source_map: Vec<(usize, u32)>,
    runtime_refs: Vec<RuntimeRef>,
    num_insts: usize,
}

impl X64Masm {
    /// Creates an empty x86-64 macro-assembler.
    pub fn new() -> X64Masm {
        X64Masm::default()
    }

    fn count(&mut self) {
        self.num_insts += 1;
    }

    /// Emits a jmp/jcc displacement fixup: patches immediately for bound
    /// labels, defers unbound ones.
    fn branch_to(&mut self, disp_offset: usize, label: Label) {
        match self.labels[label.0 as usize] {
            Some(target) => self.asm.patch_rel32(disp_offset, target),
            None => self.fixups.push((disp_offset, label)),
        }
    }

    /// Emits `call rel32` with a zero displacement and records a runtime
    /// relocation for it.
    fn runtime_call(&mut self, op: RuntimeOp) {
        self.asm.call(0);
        let patch_offset = self.asm.offset() - 4;
        self.runtime_refs.push(RuntimeRef { patch_offset, op });
    }

    /// Loads `map(a)` into the scratch, applies `f`, and stores the scratch
    /// into `map(dst)` — the canonical three-address-to-two-address shape.
    fn via_scratch(&mut self, w: bool, dst: Reg, a: Reg, f: impl FnOnce(&mut X64Assembler)) {
        self.asm.mov_rr_w(w, SCRATCH, gpr_map(a));
        f(&mut self.asm);
        self.asm.mov_rr_w(w, gpr_map(dst), SCRATCH);
    }

    /// `setcc` + zero-extend the scratch, then store it into `map(dst)`.
    fn set_result(&mut self, cond: Cond, dst: Reg) {
        self.asm.setcc(cond, SCRATCH);
        self.asm.movzx_r8(SCRATCH, SCRATCH);
        self.asm.mov_rr_w(false, gpr_map(dst), SCRATCH);
    }

    /// The signed/unsigned division expansion. The divisor is spilled to the
    /// machine stack so arbitrary register assignments (including RDX) work;
    /// RDX is preserved around the sequence.
    fn div_sequence(
        &mut self,
        op: AluOp,
        w: bool,
        dst: Reg,
        a: Reg,
        divisor: impl FnOnce(&mut X64Assembler),
    ) {
        let signed = matches!(op, AluOp::DivS | AluOp::RemS);
        let rem = matches!(op, AluOp::RemS | AluOp::RemU);
        self.asm.push_r(Gpr::Rdx);
        divisor(&mut self.asm);
        self.asm.mov_rr_w(w, SCRATCH, gpr_map(a));
        if signed {
            self.asm.cqo(w);
        } else {
            self.asm.grp1_rr(Grp1::Xor, false, Gpr::Rdx, Gpr::Rdx);
        }
        self.asm.div_at_rsp(signed, w);
        if rem {
            self.asm.mov_rr_w(w, SCRATCH, Gpr::Rdx);
        }
        self.asm.add_rsp_i8(8);
        self.asm.pop_r(Gpr::Rdx);
        self.asm.mov_rr_w(w, gpr_map(dst), SCRATCH);
    }

    /// The shift/rotate expansion: count in CL, which is preserved.
    fn shift_sequence(&mut self, op: ShiftOp, w: bool, dst: Reg, a: Reg, b: Reg) {
        self.asm.push_r(Gpr::Rcx);
        self.asm.mov_rr_w(w, SCRATCH, gpr_map(a));
        self.asm.mov_rr_w(w, Gpr::Rcx, gpr_map(b));
        self.asm.shift_cl(op, w, SCRATCH);
        self.asm.pop_r(Gpr::Rcx);
        self.asm.mov_rr_w(w, gpr_map(dst), SCRATCH);
    }

    /// Computes `base + zero-extended 32-bit address` into the scratch and
    /// returns the displacement to use for the access. A memarg offset that
    /// fits a positive disp32 is folded into the addressing mode; larger
    /// offsets (Wasm allows up to 2^32 - 1) are added to the scratch in
    /// i32-safe chunks, since x86-64 sign-extends disp32.
    fn memory_address(&mut self, addr: Reg, offset: u32) -> i32 {
        self.asm.mov_rr_w(false, SCRATCH, gpr_map(addr));
        self.asm.grp1_rm(Grp1::Add, true, SCRATCH, VFP, MEMBASE_DISP);
        if offset <= i32::MAX as u32 {
            return offset as i32;
        }
        let mut remaining = offset;
        while remaining > 0 {
            let chunk = remaining.min(i32::MAX as u32);
            self.asm.grp1_ri(Grp1::Add, true, SCRATCH, chunk as i32);
            remaining -= chunk;
        }
        0
    }
}

fn shift_op_of(op: AluOp) -> Option<ShiftOp> {
    match op {
        AluOp::Shl => Some(ShiftOp::Shl),
        AluOp::ShrS => Some(ShiftOp::Sar),
        AluOp::ShrU => Some(ShiftOp::Shr),
        AluOp::Rotl => Some(ShiftOp::Rol),
        AluOp::Rotr => Some(ShiftOp::Ror),
        _ => None,
    }
}

fn grp1_of(op: AluOp) -> Option<Grp1> {
    match op {
        AluOp::Add => Some(Grp1::Add),
        AluOp::Sub => Some(Grp1::Sub),
        AluOp::And => Some(Grp1::And),
        AluOp::Or => Some(Grp1::Or),
        AluOp::Xor => Some(Grp1::Xor),
        _ => None,
    }
}

fn cond_of(op: CmpOp) -> Cond {
    match op {
        CmpOp::Eq => Cond::Eq,
        CmpOp::Ne => Cond::Ne,
        CmpOp::LtS => Cond::Lt,
        CmpOp::LtU => Cond::Below,
        CmpOp::GtS => Cond::Gt,
        CmpOp::GtU => Cond::Above,
        CmpOp::LeS => Cond::Le,
        CmpOp::LeU => Cond::BelowEq,
        CmpOp::GeS => Cond::Ge,
        CmpOp::GeU => Cond::AboveEq,
    }
}

fn is_w64(width: Width) -> bool {
    width == Width::W64
}

fn fits_i32(imm: i64) -> bool {
    imm >= i32::MIN as i64 && imm <= i32::MAX as i64
}

impl Masm for X64Masm {
    type Output = X64Code;

    fn new_label(&mut self) -> Label {
        let label = Label(self.labels.len() as u32);
        self.labels.push(None);
        label
    }

    fn bind(&mut self, label: Label) {
        let at = self.asm.offset();
        let slot = &mut self.labels[label.0 as usize];
        assert!(slot.is_none(), "label {label} bound twice");
        *slot = Some(at);
    }

    fn mark_source(&mut self, offset: u32) {
        crate::masm::push_source_mark(&mut self.source_map, self.asm.offset(), offset);
    }

    fn num_insts(&self) -> usize {
        self.num_insts
    }

    fn position(&self) -> usize {
        self.asm.offset()
    }

    fn code_size(&self) -> usize {
        self.asm.offset()
    }

    fn finish(mut self) -> X64Code {
        for (disp_offset, label) in std::mem::take(&mut self.fixups) {
            let target = self.labels[label.0 as usize]
                .unwrap_or_else(|| panic!("label {label} was never bound"));
            self.asm.patch_rel32(disp_offset, target);
        }
        let label_targets = self
            .labels
            .iter()
            .enumerate()
            .map(|(i, t)| t.unwrap_or_else(|| panic!("label L{i} was never bound")))
            .collect();
        X64Code {
            bytes: self.asm.bytes().to_vec(),
            label_targets,
            source_map: self.source_map,
            runtime_refs: self.runtime_refs,
            num_insts: self.num_insts,
        }
    }

    fn mov_imm(&mut self, dst: Reg, imm: i64) {
        self.count();
        if fits_i32(imm) {
            self.asm.mov_ri32(gpr_map(dst), imm as i32);
        } else {
            self.asm.mov_ri64(gpr_map(dst), imm);
        }
    }

    fn fmov_imm(&mut self, dst: FReg, bits: u64) {
        self.count();
        self.asm.mov_ri64(SCRATCH, bits as i64);
        self.asm.movq_xr(true, fpr_map(dst), SCRATCH);
    }

    fn mov(&mut self, dst: Reg, src: Reg) {
        self.count();
        self.asm.mov_rr(gpr_map(dst), gpr_map(src));
    }

    fn fmov(&mut self, dst: FReg, src: FReg) {
        self.count();
        self.asm.movaps_rr(fpr_map(dst), fpr_map(src));
    }

    fn load_slot(&mut self, dst: AnyReg, slot: u32) {
        self.count();
        match dst {
            AnyReg::Gpr(r) => self.asm.load_rm(gpr_map(r), VFP, slot_disp(slot)),
            AnyReg::Fpr(f) => self.asm.movs_rm(true, fpr_map(f), VFP, slot_disp(slot)),
        }
    }

    fn store_slot(&mut self, slot: u32, src: AnyReg) {
        self.count();
        match src {
            AnyReg::Gpr(r) => self.asm.store_mr(VFP, slot_disp(slot), gpr_map(r)),
            AnyReg::Fpr(f) => self.asm.movs_mr(true, VFP, slot_disp(slot), fpr_map(f)),
        }
    }

    fn store_slot_imm(&mut self, slot: u32, imm: i64) {
        self.count();
        if fits_i32(imm) {
            self.asm.store_mi32(true, VFP, slot_disp(slot), imm as i32);
        } else {
            self.asm.mov_ri64(SCRATCH, imm);
            self.asm.store_mr(VFP, slot_disp(slot), SCRATCH);
        }
    }

    fn store_tag(&mut self, slot: u32, tag: ValueTag) {
        self.count();
        self.asm.store_tag_byte(VFP, tag_disp(slot), tag as u8);
    }

    fn alu(&mut self, op: AluOp, width: Width, dst: Reg, a: Reg, b: Reg) {
        self.count();
        let w = is_w64(width);
        if let Some(g) = grp1_of(op) {
            let rb = gpr_map(b);
            self.via_scratch(w, dst, a, |asm| asm.grp1_rr(g, w, SCRATCH, rb));
        } else if op == AluOp::Mul {
            let rb = gpr_map(b);
            self.via_scratch(w, dst, a, |asm| asm.imul_rr(w, SCRATCH, rb));
        } else if let Some(s) = shift_op_of(op) {
            self.shift_sequence(s, w, dst, a, b);
        } else {
            let rb = gpr_map(b);
            self.div_sequence(op, w, dst, a, |asm| asm.push_r(rb));
        }
    }

    fn alu_imm(&mut self, op: AluOp, width: Width, dst: Reg, a: Reg, imm: i64) {
        self.count();
        let w = is_w64(width);
        if let Some(g) = grp1_of(op) {
            if fits_i32(imm) {
                self.via_scratch(w, dst, a, |asm| asm.grp1_ri(g, w, SCRATCH, imm as i32));
            } else {
                // Spill the wide immediate; `op scratch, [rsp]`.
                self.asm.mov_ri64(SCRATCH, imm);
                self.asm.push_r(SCRATCH);
                self.via_scratch(w, dst, a, |asm| asm.grp1_rm(g, w, SCRATCH, Gpr::Rsp, 0));
                self.asm.add_rsp_i8(8);
            }
        } else if op == AluOp::Mul {
            let ra = gpr_map(a);
            if fits_i32(imm) {
                self.asm.imul_rri(w, SCRATCH, ra, imm as i32);
            } else {
                // Commutative: materialize the wide immediate in the
                // scratch and multiply by the register operand.
                self.asm.mov_ri64(SCRATCH, imm);
                self.asm.imul_rr(w, SCRATCH, ra);
            }
            self.asm.mov_rr_w(w, gpr_map(dst), SCRATCH);
        } else if let Some(s) = shift_op_of(op) {
            // Shift counts are taken modulo the width, so truncation is the
            // correct semantics here.
            let mask = if w { 63 } else { 31 };
            self.via_scratch(w, dst, a, |asm| {
                asm.shift_ri(s, w, SCRATCH, (imm as u8) & mask)
            });
        } else if fits_i32(imm) {
            self.div_sequence(op, w, dst, a, |asm| asm.push_i32(imm as i32));
        } else {
            // The scratch is still free inside the divisor stage (the
            // dividend is loaded afterwards), so stage the wide divisor
            // through it.
            self.div_sequence(op, w, dst, a, |asm| {
                asm.mov_ri64(SCRATCH, imm);
                asm.push_r(SCRATCH);
            });
        }
    }

    fn unop(&mut self, op: UnOp, width: Width, dst: Reg, src: Reg) {
        self.count();
        let w = is_w64(width);
        let rs = gpr_map(src);
        match op {
            UnOp::Eqz => {
                self.asm.test_rr(w, rs, rs);
                self.set_result(Cond::Eq, dst);
                return;
            }
            UnOp::Clz => self.asm.lzcnt(w, SCRATCH, rs),
            UnOp::Ctz => self.asm.tzcnt(w, SCRATCH, rs),
            UnOp::Popcnt => self.asm.popcnt(w, SCRATCH, rs),
            UnOp::Extend8S => self.asm.movsx_r8(w, SCRATCH, rs),
            UnOp::Extend16S => self.asm.movsx_r16(w, SCRATCH, rs),
            UnOp::Extend32S => self.asm.movsxd(SCRATCH, rs),
        }
        self.asm.mov_rr_w(w, gpr_map(dst), SCRATCH);
    }

    fn cmp(&mut self, op: CmpOp, width: Width, dst: Reg, a: Reg, b: Reg) {
        self.count();
        self.asm.grp1_rr(Grp1::Cmp, is_w64(width), gpr_map(a), gpr_map(b));
        self.set_result(cond_of(op), dst);
    }

    fn cmp_imm(&mut self, op: CmpOp, width: Width, dst: Reg, a: Reg, imm: i64) {
        self.count();
        let w = is_w64(width);
        if fits_i32(imm) {
            self.asm.grp1_ri(Grp1::Cmp, w, gpr_map(a), imm as i32);
        } else {
            self.asm.mov_ri64(SCRATCH, imm);
            self.asm.grp1_rr(Grp1::Cmp, w, gpr_map(a), SCRATCH);
        }
        self.set_result(cond_of(op), dst);
    }

    fn falu(&mut self, op: FAluOp, width: Width, dst: FReg, a: FReg, b: FReg) {
        self.count();
        let d = is_w64(width);
        let sse = match op {
            FAluOp::Add => Some(SseOp::Add),
            FAluOp::Sub => Some(SseOp::Sub),
            FAluOp::Mul => Some(SseOp::Mul),
            FAluOp::Div => Some(SseOp::Div),
            FAluOp::Min => Some(SseOp::Min),
            FAluOp::Max => Some(SseOp::Max),
            FAluOp::Copysign => None,
        };
        if let Some(sse) = sse {
            self.asm.movaps_rr(FSCRATCH, fpr_map(a));
            self.asm.sse_op(sse, d, FSCRATCH, fpr_map(b));
            self.asm.movaps_rr(fpr_map(dst), FSCRATCH);
            return;
        }
        // copysign(a, b) = (a & !sign_bit) | (b & sign_bit), via the GPR
        // scratch; the sign mask is staged on the machine stack.
        let w = d;
        let bits = if d { 63 } else { 31 };
        self.asm.movq_rx(w, SCRATCH, fpr_map(b));
        self.asm.shift_ri(ShiftOp::Shr, w, SCRATCH, bits);
        self.asm.shift_ri(ShiftOp::Shl, w, SCRATCH, bits);
        self.asm.push_r(SCRATCH);
        self.asm.movq_rx(w, SCRATCH, fpr_map(a));
        self.asm.shift_ri(ShiftOp::Shl, w, SCRATCH, 1);
        self.asm.shift_ri(ShiftOp::Shr, w, SCRATCH, 1);
        self.asm.grp1_rm(Grp1::Or, w, SCRATCH, Gpr::Rsp, 0);
        self.asm.add_rsp_i8(8);
        self.asm.movq_xr(w, fpr_map(dst), SCRATCH);
    }

    fn funop(&mut self, op: FUnOp, width: Width, dst: FReg, src: FReg) {
        self.count();
        let d = is_w64(width);
        let bits = if d { 63 } else { 31 };
        match op {
            FUnOp::Abs => {
                self.asm.movq_rx(d, SCRATCH, fpr_map(src));
                self.asm.shift_ri(ShiftOp::Shl, d, SCRATCH, 1);
                self.asm.shift_ri(ShiftOp::Shr, d, SCRATCH, 1);
                self.asm.movq_xr(d, fpr_map(dst), SCRATCH);
            }
            FUnOp::Neg => {
                self.asm.movq_rx(d, SCRATCH, fpr_map(src));
                self.asm.btc_ri(d, SCRATCH, bits);
                self.asm.movq_xr(d, fpr_map(dst), SCRATCH);
            }
            FUnOp::Sqrt => self.asm.sse_op(SseOp::Sqrt, d, fpr_map(dst), fpr_map(src)),
            // roundsd immediates: 0 = nearest-even, 1 = down, 2 = up,
            // 3 = toward zero.
            FUnOp::Nearest => self.asm.rounds(d, fpr_map(dst), fpr_map(src), 0),
            FUnOp::Floor => self.asm.rounds(d, fpr_map(dst), fpr_map(src), 1),
            FUnOp::Ceil => self.asm.rounds(d, fpr_map(dst), fpr_map(src), 2),
            FUnOp::Trunc => self.asm.rounds(d, fpr_map(dst), fpr_map(src), 3),
        }
    }

    fn fcmp(&mut self, op: FCmpOp, width: Width, dst: Reg, a: FReg, b: FReg) {
        self.count();
        let d = is_w64(width);
        // cmpsd/cmpss produce an all-ones/zero mask with Wasm's NaN
        // semantics (EQ/LT/LE false on NaN, NEQ true); GT/GE swap operands.
        let (first, second, pred) = match op {
            FCmpOp::Eq => (a, b, 0),
            FCmpOp::Lt => (a, b, 1),
            FCmpOp::Le => (a, b, 2),
            FCmpOp::Ne => (a, b, 4),
            FCmpOp::Gt => (b, a, 1),
            FCmpOp::Ge => (b, a, 2),
        };
        self.asm.movaps_rr(FSCRATCH, fpr_map(first));
        self.asm.cmps(d, FSCRATCH, fpr_map(second), pred);
        self.asm.movq_rx(false, SCRATCH, FSCRATCH);
        self.asm.grp1_ri(Grp1::And, false, SCRATCH, 1);
        self.asm.mov_rr_w(false, gpr_map(dst), SCRATCH);
    }

    fn convert(&mut self, op: ConvOp, dst: AnyReg, src: AnyReg) {
        self.count();
        use ConvOp::*;
        let gdst = dst.as_gpr().map(gpr_map);
        let xdst = dst.as_fpr().map(fpr_map);
        let gsrc = src.as_gpr().map(gpr_map);
        let xsrc = src.as_fpr().map(fpr_map);
        match op {
            I32WrapI64 => self.asm.mov_rr_w(false, gdst.unwrap(), gsrc.unwrap()),
            I64ExtendI32S => self.asm.movsxd(gdst.unwrap(), gsrc.unwrap()),
            I64ExtendI32U => self.asm.mov_rr_w(false, gdst.unwrap(), gsrc.unwrap()),
            I32TruncF32S => self.asm.cvtt_f2i(false, false, gdst.unwrap(), xsrc.unwrap()),
            I32TruncF64S => self.asm.cvtt_f2i(true, false, gdst.unwrap(), xsrc.unwrap()),
            I32TruncF32U | I32TruncF64U => {
                // Truncate through the 64-bit form, then take the low half.
                let double = op == I32TruncF64U;
                self.asm.cvtt_f2i(double, true, SCRATCH, xsrc.unwrap());
                self.asm.mov_rr_w(false, gdst.unwrap(), SCRATCH);
            }
            I64TruncF32S => self.asm.cvtt_f2i(false, true, gdst.unwrap(), xsrc.unwrap()),
            I64TruncF64S => self.asm.cvtt_f2i(true, true, gdst.unwrap(), xsrc.unwrap()),
            I64TruncF32U | I64TruncF64U => {
                self.asm.movq_rx(true, SCRATCH, xsrc.unwrap());
                self.runtime_call(RuntimeOp::ConvertHelper { op });
                self.asm.mov_rr(gdst.unwrap(), SCRATCH);
            }
            F32ConvertI32S => self.asm.cvt_i2f(false, false, xdst.unwrap(), gsrc.unwrap()),
            F64ConvertI32S => self.asm.cvt_i2f(true, false, xdst.unwrap(), gsrc.unwrap()),
            F32ConvertI32U | F64ConvertI32U => {
                // Zero-extend, then convert from 64 bits (always in range).
                let double = op == F64ConvertI32U;
                self.asm.mov_rr_w(false, SCRATCH, gsrc.unwrap());
                self.asm.cvt_i2f(double, true, xdst.unwrap(), SCRATCH);
            }
            F32ConvertI64S => self.asm.cvt_i2f(false, true, xdst.unwrap(), gsrc.unwrap()),
            F64ConvertI64S => self.asm.cvt_i2f(true, true, xdst.unwrap(), gsrc.unwrap()),
            F32ConvertI64U | F64ConvertI64U => {
                self.asm.mov_rr(SCRATCH, gsrc.unwrap());
                self.runtime_call(RuntimeOp::ConvertHelper { op });
                self.asm.movq_xr(true, xdst.unwrap(), SCRATCH);
            }
            F32DemoteF64 => self.asm.cvt_f2f(false, xdst.unwrap(), xsrc.unwrap()),
            F64PromoteF32 => self.asm.cvt_f2f(true, xdst.unwrap(), xsrc.unwrap()),
            I32ReinterpretF32 => self.asm.movq_rx(false, gdst.unwrap(), xsrc.unwrap()),
            I64ReinterpretF64 => self.asm.movq_rx(true, gdst.unwrap(), xsrc.unwrap()),
            F32ReinterpretI32 => self.asm.movq_xr(false, xdst.unwrap(), gsrc.unwrap()),
            F64ReinterpretI64 => self.asm.movq_xr(true, xdst.unwrap(), gsrc.unwrap()),
        }
    }

    fn select(&mut self, dst: Reg, cond: Reg, if_true: Reg, if_false: Reg) {
        self.count();
        self.asm.mov_rr(SCRATCH, gpr_map(if_false));
        let rc = gpr_map(cond);
        self.asm.test_rr(false, rc, rc);
        self.asm.cmovcc(Cond::Ne, true, SCRATCH, gpr_map(if_true));
        self.asm.mov_rr(gpr_map(dst), SCRATCH);
    }

    fn fselect(&mut self, dst: FReg, cond: Reg, if_true: FReg, if_false: FReg) {
        self.count();
        self.asm.movaps_rr(FSCRATCH, fpr_map(if_false));
        let rc = gpr_map(cond);
        self.asm.test_rr(false, rc, rc);
        let disp = self.asm.jcc(Cond::Eq, 0);
        self.asm.movaps_rr(FSCRATCH, fpr_map(if_true));
        let after = self.asm.offset();
        self.asm.patch_rel32(disp, after);
        self.asm.movaps_rr(fpr_map(dst), FSCRATCH);
    }

    fn mem_load(
        &mut self,
        dst: AnyReg,
        addr: Reg,
        offset: u32,
        width: u32,
        signed: bool,
        dst_width: Width,
    ) {
        self.count();
        let disp = self.memory_address(addr, offset);
        match dst {
            AnyReg::Fpr(f) => self.asm.movs_rm(width == 8, fpr_map(f), SCRATCH, disp),
            AnyReg::Gpr(r) => {
                let rd = gpr_map(r);
                let w = is_w64(dst_width);
                match (width, signed) {
                    (1, false) => self.asm.movzx_rm8(rd, SCRATCH, disp),
                    (1, true) => self.asm.movsx_rm8(w, rd, SCRATCH, disp),
                    (2, false) => self.asm.movzx_rm16(rd, SCRATCH, disp),
                    (2, true) => self.asm.movsx_rm16(w, rd, SCRATCH, disp),
                    (4, true) if w => self.asm.movsxd_rm(rd, SCRATCH, disp),
                    (4, _) => self.asm.load_rm_w(false, rd, SCRATCH, disp),
                    _ => self.asm.load_rm_w(true, rd, SCRATCH, disp),
                }
            }
        }
    }

    fn mem_store(&mut self, src: AnyReg, addr: Reg, offset: u32, width: u32) {
        self.count();
        // The source must be read before the scratch is clobbered — it never
        // is RAX (the allocator does not hand out virtual r0), so computing
        // the address first is safe.
        let disp = self.memory_address(addr, offset);
        match src {
            AnyReg::Fpr(f) => self.asm.movs_mr(width == 8, SCRATCH, disp, fpr_map(f)),
            AnyReg::Gpr(r) => {
                let rs = gpr_map(r);
                match width {
                    1 => self.asm.store_mr8(SCRATCH, disp, rs),
                    2 => self.asm.store_mr16(SCRATCH, disp, rs),
                    4 => self.asm.store_mr_w(false, SCRATCH, disp, rs),
                    _ => self.asm.store_mr_w(true, SCRATCH, disp, rs),
                }
            }
        }
    }

    fn memory_size(&mut self, dst: Reg) {
        self.count();
        self.runtime_call(RuntimeOp::MemorySize);
        self.asm.mov_rr_w(false, gpr_map(dst), SCRATCH);
    }

    fn memory_grow(&mut self, dst: Reg, delta: Reg) {
        self.count();
        self.asm.mov_rr_w(false, SCRATCH, gpr_map(delta));
        self.runtime_call(RuntimeOp::MemoryGrow);
        self.asm.mov_rr_w(false, gpr_map(dst), SCRATCH);
    }

    fn global_get(&mut self, dst: AnyReg, index: u32) {
        self.count();
        self.runtime_call(RuntimeOp::GlobalGet { index });
        match dst {
            AnyReg::Gpr(r) => self.asm.mov_rr(gpr_map(r), SCRATCH),
            AnyReg::Fpr(f) => self.asm.movq_xr(true, fpr_map(f), SCRATCH),
        }
    }

    fn global_set(&mut self, index: u32, src: AnyReg) {
        self.count();
        match src {
            AnyReg::Gpr(r) => self.asm.mov_rr(SCRATCH, gpr_map(r)),
            AnyReg::Fpr(f) => self.asm.movq_rx(true, SCRATCH, fpr_map(f)),
        }
        self.runtime_call(RuntimeOp::GlobalSet { index });
    }

    fn jump(&mut self, target: Label) {
        self.count();
        let disp = self.asm.jmp(0);
        self.branch_to(disp, target);
    }

    fn br_if(&mut self, cond: Reg, target: Label, negate: bool) {
        self.count();
        let rc = gpr_map(cond);
        self.asm.test_rr(false, rc, rc);
        let cc = if negate { Cond::Eq } else { Cond::Ne };
        let disp = self.asm.jcc(cc, 0);
        self.branch_to(disp, target);
    }

    fn br_table(&mut self, index: Reg, targets: Vec<Label>, default: Label) {
        self.count();
        // A compare-and-branch chain: compact and patchable without an
        // embedded table (baseline compilers use this shape for small
        // tables).
        let ri = gpr_map(index);
        for (i, target) in targets.into_iter().enumerate() {
            self.asm.grp1_ri(Grp1::Cmp, false, ri, i as i32);
            let disp = self.asm.jcc(Cond::Eq, 0);
            self.branch_to(disp, target);
        }
        let disp = self.asm.jmp(0);
        self.branch_to(disp, default);
    }

    fn call(&mut self, func_index: u32) -> usize {
        self.count();
        let site = self.asm.offset();
        self.runtime_call(RuntimeOp::Call { func_index });
        site
    }

    fn call_indirect(&mut self, type_index: u32, table_index: u32, index: Reg) -> usize {
        self.count();
        let site = self.asm.offset();
        self.asm.mov_rr_w(false, SCRATCH, gpr_map(index));
        self.runtime_call(RuntimeOp::CallIndirect {
            type_index,
            table_index,
        });
        site
    }

    fn trap(&mut self, code: TrapCode) {
        self.count();
        let patch_offset = self.asm.offset();
        self.runtime_refs.push(RuntimeRef {
            patch_offset,
            op: RuntimeOp::Trap { code },
        });
        self.asm.ud2();
    }

    fn ret(&mut self) {
        self.count();
        self.asm.ret();
    }

    fn fuel_check(&mut self, amount: u64) {
        self.count();
        self.runtime_call(RuntimeOp::FuelCheck { amount });
    }

    fn epoch_check(&mut self) {
        self.count();
        self.runtime_call(RuntimeOp::EpochCheck);
    }

    fn probe_runtime(&mut self, probe_id: u32) -> usize {
        self.count();
        let site = self.asm.offset();
        self.runtime_call(RuntimeOp::ProbeRuntime { probe_id });
        site
    }

    fn probe_direct(&mut self, probe_id: u32) -> usize {
        self.count();
        let site = self.asm.offset();
        self.runtime_call(RuntimeOp::ProbeDirect { probe_id });
        site
    }

    fn probe_counter(&mut self, counter_id: u32) -> usize {
        self.count();
        let site = self.asm.offset();
        self.runtime_call(RuntimeOp::ProbeCounter { counter_id });
        site
    }

    fn probe_tos(&mut self, probe_id: u32, src: AnyReg) -> usize {
        self.count();
        let site = self.asm.offset();
        match src {
            AnyReg::Gpr(r) => self.asm.mov_rr(SCRATCH, gpr_map(r)),
            AnyReg::Fpr(f) => self.asm.movq_rx(true, SCRATCH, fpr_map(f)),
        }
        self.runtime_call(RuntimeOp::ProbeTos { probe_id });
        site
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::NUM_GPRS;

    #[test]
    fn gpr_map_is_injective_and_avoids_reserved() {
        let mut seen = Vec::new();
        for i in 0..NUM_GPRS as u8 {
            let g = gpr_map(Reg(i));
            assert_ne!(g, Gpr::Rsp, "the stack pointer is never allocatable");
            assert_ne!(g, VFP, "the frame register is never allocatable");
            assert!(!seen.contains(&g), "mapping must be injective");
            seen.push(g);
        }
        assert_eq!(gpr_map(Reg(0)), SCRATCH, "virtual r0 is the scratch image");
    }

    #[test]
    fn forward_labels_patch_to_byte_offsets() {
        let mut m = X64Masm::new();
        let skip = m.new_label();
        m.br_if(Reg(1), skip, true);
        m.mov_imm(Reg(1), 7);
        m.bind(skip);
        m.ret();
        let code = m.finish();
        let target = code.target(skip);
        // The branch lands exactly on the mov's end / ret.
        assert_eq!(target + 1, code.code_size());
        // test ecx,ecx (2) + jz rel32 (6): displacement covers the 7-byte mov.
        assert_eq!(&code.bytes()[..8], &[0x85, 0xC9, 0x0F, 0x84, 0x07, 0x00, 0x00, 0x00]);
    }

    #[test]
    fn backward_jump_has_negative_displacement() {
        let mut m = X64Masm::new();
        let top = m.new_bound_label();
        m.jump(top);
        let code = m.finish();
        assert_eq!(code.target(top), 0);
        // jmp rel32 back over its own 5 bytes.
        assert_eq!(code.bytes(), &[0xE9, 0xFB, 0xFF, 0xFF, 0xFF]);
    }

    #[test]
    fn runtime_transfers_are_recorded() {
        let mut m = X64Masm::new();
        let call_site = m.call(3);
        m.trap(TrapCode::Unreachable);
        m.ret();
        let code = m.finish();
        assert_eq!(call_site, 0);
        assert_eq!(code.runtime_refs().len(), 2);
        assert_eq!(code.runtime_refs()[0].op, RuntimeOp::Call { func_index: 3 });
        assert_eq!(code.runtime_refs()[0].patch_offset, 1);
        assert!(matches!(
            code.runtime_refs()[1].op,
            RuntimeOp::Trap { code: TrapCode::Unreachable }
        ));
        // call rel32, ud2, ret.
        assert_eq!(code.bytes(), &[0xE8, 0, 0, 0, 0, 0x0F, 0x0B, 0xC3]);
    }

    #[test]
    fn source_map_tracks_byte_offsets() {
        let mut m = X64Masm::new();
        m.mark_source(0);
        m.mov_imm(Reg(1), 1); // 7 bytes
        m.mark_source(5);
        m.mark_source(6); // collapses with the previous mark
        m.ret();
        let code = m.finish();
        assert_eq!(code.source_map(), &[(0, 0), (7, 6)]);
        assert_eq!(code.source_offset(0), Some(0));
        assert_eq!(code.source_offset(7), Some(6));
        assert_eq!(code.source_offset(3), Some(0));
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics_at_finish() {
        let mut m = X64Masm::new();
        let l = m.new_label();
        m.jump(l);
        let _ = m.finish();
    }

    #[test]
    fn huge_memarg_offsets_avoid_negative_disp32() {
        let mut m = X64Masm::new();
        m.mem_load(AnyReg::Gpr(Reg(1)), Reg(2), 0x8000_0000, 4, false, Width::W32);
        m.ret();
        let code = m.finish();
        let b = code.bytes();
        // x86-64 sign-extends disp32, so the 2 GiB offset must be added to
        // the address in i32-safe chunks (0x7FFFFFFF + 1) with disp 0:
        // add rax, 0x7FFFFFFF; add rax, 1.
        assert!(b.windows(7).any(|w| w == [0x48, 0x81, 0xC0, 0xFF, 0xFF, 0xFF, 0x7F]));
        assert!(b.windows(7).any(|w| w == [0x48, 0x81, 0xC0, 0x01, 0x00, 0x00, 0x00]));
        // And small offsets fold into the displacement untouched.
        let mut m = X64Masm::new();
        m.mem_load(AnyReg::Gpr(Reg(1)), Reg(2), 0x10, 4, false, Width::W32);
        m.ret();
        let small = m.finish();
        assert!(small.bytes().windows(4).any(|w| w == [0x10, 0x00, 0x00, 0x00]));
    }

    #[test]
    fn division_preserves_rdx_and_uses_stack_divisor() {
        let mut m = X64Masm::new();
        m.alu(AluOp::DivS, Width::W64, Reg(3), Reg(1), Reg(2));
        let code = m.finish();
        let b = code.bytes();
        assert_eq!(b[0], 0x52, "push rdx first");
        assert_eq!(b[1], 0x52, "divisor (rdx-mapped r2) pushed");
        assert!(b.windows(4).any(|w| w == [0x48, 0xF7, 0x3C, 0x24]), "idiv qword [rsp]");
        assert!(b.windows(1).any(|w| w == [0x5A]), "pop rdx");
    }
}
