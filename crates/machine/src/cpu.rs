//! The CPU simulator that executes compiled code.
//!
//! Compiled functions run against exactly the same runtime objects as the
//! interpreter: the tagged value stack, linear memory, globals, and tables.
//! Execution is *resumable*: calls, probes, returns, and traps exit back to
//! the engine, which performs the transfer (possibly into a different
//! execution tier) and then resumes the code at `resume_pc`. Register
//! contents live in a per-frame [`CpuState`], and the calling convention
//! requires compilers to spill live values to the value stack before any
//! exiting instruction, so nothing is lost across an exit.
//!
//! Every executed instruction is charged to a [`CycleCounter`] using the
//! shared [`CostModel`]; those cycles are the "execution time" that the
//! paper's figures compare.

use crate::asm::CodeBuffer;
use crate::cost::{CostModel, CycleCounter};
use crate::inst::{MachInst, TrapCode, Width};
use crate::memory::{LinearMemory, Table};
use crate::ops;
use crate::reg::{AnyReg, NUM_FPRS, NUM_GPRS};
use crate::values::{GlobalSlot, ValueStack};
use std::sync::atomic::{AtomicU64, Ordering};
use wasm::fuel::FuelPlan;

/// The register file of one JIT frame activation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuState {
    /// General-purpose registers.
    pub gprs: [u64; NUM_GPRS],
    /// Floating-point registers (raw bits).
    pub fprs: [u64; NUM_FPRS],
}

impl Default for CpuState {
    fn default() -> CpuState {
        CpuState {
            gprs: [0; NUM_GPRS],
            fprs: [0; NUM_FPRS],
        }
    }
}

impl CpuState {
    /// Creates a zeroed register file.
    pub fn new() -> CpuState {
        CpuState::default()
    }

    /// Reads a register of either bank.
    pub fn read(&self, reg: AnyReg) -> u64 {
        match reg {
            AnyReg::Gpr(r) => self.gprs[r.index()],
            AnyReg::Fpr(r) => self.fprs[r.index()],
        }
    }

    /// Writes a register of either bank.
    pub fn write(&mut self, reg: AnyReg, bits: u64) {
        match reg {
            AnyReg::Gpr(r) => self.gprs[r.index()] = bits,
            AnyReg::Fpr(r) => self.fprs[r.index()] = bits,
        }
    }
}

/// The producer half of the epoch-driven sampling profiler.
///
/// Execution loops poll this at their metering sites (loop back-edges and
/// function entries); whenever the shared epoch has advanced since the last
/// sample, the current wasm byte offset is pushed through `record`. The
/// sampler deliberately knows nothing about telemetry — the engine supplies
/// a closure that attributes the sample to a (function, tier) — so this
/// crate stays free of upward dependencies.
pub struct EpochSampler<'a> {
    /// The shared engine epoch (the same counter preemption deadlines watch).
    pub epoch: &'a AtomicU64,
    /// The epoch value the last sample was taken at; samples fire only when
    /// the epoch moves past it, so sampling frequency is the ticker's, not
    /// the back-edge rate's.
    pub last: &'a mut u64,
    /// Receives each sample's current wasm byte offset.
    pub record: &'a mut dyn FnMut(u32),
}

impl std::fmt::Debug for EpochSampler<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochSampler")
            .field("epoch", &self.epoch)
            .field("last", &self.last)
            .finish_non_exhaustive()
    }
}

impl EpochSampler<'_> {
    /// Takes a sample if the epoch has advanced since the last one. The
    /// offset is computed lazily — only when a sample actually fires.
    #[inline]
    pub fn poll(&mut self, offset: impl FnOnce() -> u32) {
        let now = self.epoch.load(Ordering::Relaxed);
        if now != *self.last {
            *self.last = now;
            (self.record)(offset());
        }
    }
}

/// The hot-loop detection hook for on-stack replacement.
///
/// Execution loops poll this at the fused meter-check sites. The hook fires
/// only at *loop-body starts* — offsets the function's [`FuelPlan`] records
/// as epoch-check sites — because those are the back-edge targets where the
/// frame is in canonical interpreter layout and the optimizing tier emits an
/// OSR entry stub. Each firing site increments one shared per-function
/// counter; once it passes `threshold` the execution loop exits with an OSR
/// request and the engine attempts the tier transition.
pub struct OsrHook<'a> {
    /// The function's fuel plan; its epoch-check offsets are exactly the
    /// loop-body starts eligible for OSR entry.
    pub plan: &'a FuelPlan,
    /// The per-function back-edge counter (persists across exits).
    pub count: &'a mut u32,
    /// Fire once `count` exceeds this. Zero forces OSR at every back edge.
    pub threshold: u32,
    /// Skip exactly one firing (set after a failed or still-pending
    /// transition so the activation makes loop progress between attempts).
    pub skip_once: &'a mut bool,
}

impl std::fmt::Debug for OsrHook<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OsrHook")
            .field("count", &self.count)
            .field("threshold", &self.threshold)
            .field("skip_once", &self.skip_once)
            .finish_non_exhaustive()
    }
}

/// Fuel and preemption state for one activation.
///
/// Both meters are optional so un-metered execution stays exactly the code
/// path it was before metering existed: a `FuelCheck` or `EpochCheck`
/// instruction executed against [`Meter::off`] is a no-op.
#[derive(Debug, Default)]
pub struct Meter<'a> {
    /// Remaining fuel, decremented by `FuelCheck`. `None` disables metering.
    pub fuel: Option<&'a mut u64>,
    /// The shared engine epoch and this activation's deadline; execution is
    /// interrupted once the epoch reaches the deadline. `None` disables
    /// preemption.
    pub epoch: Option<(&'a AtomicU64, u64)>,
    /// Sampling-profiler hook, polled at the same sites as the meters.
    /// `None` (the overwhelmingly common case) costs one branch per site and
    /// never charges simulated cycles.
    pub sampler: Option<EpochSampler<'a>>,
    /// On-stack-replacement hook, polled at the same sites as the meters
    /// *before* any fuel is charged (so a completed transition re-executes
    /// the site's check in the new tier exactly once). `None` disables OSR.
    pub osr: Option<OsrHook<'a>>,
}

impl<'a> Meter<'a> {
    /// A meter that charges nothing and never interrupts.
    pub fn off() -> Meter<'a> {
        Meter::default()
    }

    /// Charges `amount` fuel. On exhaustion the remaining fuel is clamped to
    /// zero (so consumed-at-trap equals the initial budget in every tier) and
    /// [`TrapCode::OutOfFuel`] is returned.
    pub fn charge_fuel(&mut self, amount: u64) -> Result<(), TrapCode> {
        if let Some(fuel) = self.fuel.as_deref_mut() {
            if *fuel >= amount {
                *fuel -= amount;
            } else {
                *fuel = 0;
                return Err(TrapCode::OutOfFuel);
            }
        }
        Ok(())
    }

    /// Polls the epoch; returns [`TrapCode::Interrupted`] once it has reached
    /// this activation's deadline.
    pub fn check_epoch(&self) -> Result<(), TrapCode> {
        if let Some((epoch, deadline)) = self.epoch {
            if epoch.load(Ordering::Relaxed) >= deadline {
                return Err(TrapCode::Interrupted);
            }
        }
        Ok(())
    }

    /// Polls the sampling profiler, if one is attached. Charges nothing.
    #[inline]
    pub fn poll_sampler(&mut self, offset: impl FnOnce() -> u32) {
        if let Some(sampler) = self.sampler.as_mut() {
            sampler.poll(offset);
        }
    }

    /// True when a sampling profiler is attached.
    pub fn has_sampler(&self) -> bool {
        self.sampler.is_some()
    }

    /// Polls the OSR hook at a meter-check site. Returns `Some(offset)` when
    /// the site is a loop-body start whose back-edge counter has passed the
    /// threshold — the execution loop must then exit with an OSR request.
    /// Charges nothing. The offset is computed lazily, like the sampler's.
    #[inline]
    pub fn poll_osr(&mut self, offset: impl FnOnce() -> u32) -> Option<u32> {
        let hook = self.osr.as_mut()?;
        let off = offset();
        if !hook.plan.epoch_check_at(off) {
            return None;
        }
        *hook.count = hook.count.saturating_add(1);
        if *hook.count <= hook.threshold {
            return None;
        }
        if *hook.skip_once {
            *hook.skip_once = false;
            return None;
        }
        Some(off)
    }

    /// True when an OSR hook is attached.
    pub fn has_osr(&self) -> bool {
        self.osr.is_some()
    }
}

/// The mutable runtime state a frame executes against.
#[derive(Debug)]
pub struct ExecContext<'a> {
    /// The shared value stack.
    pub values: &'a mut ValueStack,
    /// The executing frame's base slot (VFP) within the value stack.
    pub frame_base: usize,
    /// The instance's linear memory, if it has one.
    pub memory: Option<&'a mut LinearMemory>,
    /// The instance's globals.
    pub globals: &'a mut [GlobalSlot],
    /// The instance's tables.
    pub tables: &'a mut [Table],
    /// Fuel and preemption state.
    pub meter: Meter<'a>,
}

impl<'a> ExecContext<'a> {
    fn slot_index(&self, slot: u32) -> usize {
        self.frame_base + slot as usize
    }
}

/// Why a probe instruction exited to the engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProbeExit {
    /// Unoptimized probe: the runtime must look up and fire probes.
    Runtime {
        /// Probe site id.
        probe_id: u32,
    },
    /// Optimized direct probe call.
    Direct {
        /// Probe site id.
        probe_id: u32,
    },
    /// Intrinsified counter increment.
    Counter {
        /// Counter id.
        counter_id: u32,
    },
    /// Optimized probe passing the top-of-stack value.
    TosValue {
        /// Probe site id.
        probe_id: u32,
        /// The value passed to the probe.
        bits: u64,
    },
}

/// The reason compiled code stopped executing.
#[derive(Debug, Clone, PartialEq)]
pub enum CpuExit {
    /// The function returned. Results are in the frame's first result slots.
    Return,
    /// A direct call; the engine must execute `func_index` and resume at
    /// `resume_pc`.
    Call {
        /// Callee function index.
        func_index: u32,
        /// Program counter to resume this code at after the call.
        resume_pc: usize,
    },
    /// An indirect call; the engine must check and execute the table entry.
    CallIndirect {
        /// Expected signature (type index).
        type_index: u32,
        /// Table index.
        table_index: u32,
        /// The dynamic element index.
        entry_index: u32,
        /// Program counter to resume at after the call.
        resume_pc: usize,
    },
    /// A probe fired; the engine must notify the instrumentation and resume.
    Probe {
        /// What kind of probe and its payload.
        exit: ProbeExit,
        /// Program counter to resume at.
        resume_pc: usize,
    },
    /// The OSR hook fired at a hot loop-body start; the engine should try to
    /// transfer this activation into the optimizing tier, or resume at
    /// `resume_pc` (the check instruction itself, whose meter work has not
    /// yet run) to continue in place.
    Osr {
        /// The wasm bytecode offset of the loop-body start.
        offset: u32,
        /// Program counter to resume at if the transition is not taken.
        resume_pc: usize,
    },
    /// Execution trapped.
    Trap {
        /// The trap reason.
        code: TrapCode,
        /// Program counter of the trapping instruction — the engine maps it
        /// back to a wasm bytecode offset through the code's source map when
        /// building a backtrace.
        pc: usize,
    },
}

/// Executes compiled code until it exits.
#[derive(Debug, Clone, Default)]
pub struct Cpu {
    cost: CostModel,
}

impl Cpu {
    /// Creates a CPU with the given cost model.
    pub fn new(cost: CostModel) -> Cpu {
        Cpu { cost }
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Runs `code` starting at instruction `pc` until it exits, charging
    /// executed instructions to `cycles`.
    pub fn run(
        &self,
        state: &mut CpuState,
        code: &CodeBuffer,
        mut pc: usize,
        ctx: &mut ExecContext<'_>,
        cycles: &mut CycleCounter,
    ) -> CpuExit {
        let insts = code.insts();
        loop {
            let inst = match insts.get(pc) {
                Some(inst) => inst,
                None => return CpuExit::Return,
            };
            cycles.charge(self.cost.inst_cost(inst));
            match inst {
                MachInst::Nop => {}
                MachInst::MovImm { dst, imm } => state.gprs[dst.index()] = *imm as u64,
                MachInst::FMovImm { dst, bits } => state.fprs[dst.index()] = *bits,
                MachInst::Mov { dst, src } => state.gprs[dst.index()] = state.gprs[src.index()],
                MachInst::FMov { dst, src } => state.fprs[dst.index()] = state.fprs[src.index()],
                MachInst::LoadSlot { dst, slot } => {
                    let bits = ctx.values.read(ctx.slot_index(*slot));
                    state.write(*dst, bits);
                }
                MachInst::StoreSlot { slot, src } => {
                    let bits = state.read(*src);
                    ctx.values.write(ctx.slot_index(*slot), bits);
                }
                MachInst::StoreSlotImm { slot, imm } => {
                    ctx.values.write(ctx.slot_index(*slot), *imm as u64);
                }
                MachInst::StoreTag { slot, tag } => {
                    ctx.values.set_tag(ctx.slot_index(*slot), *tag);
                }
                MachInst::Alu { op, width, dst, a, b } => {
                    let a = state.gprs[a.index()];
                    let b = state.gprs[b.index()];
                    match ops::eval_alu(*op, *width, a, b) {
                        Ok(v) => state.gprs[dst.index()] = v,
                        Err(t) => return CpuExit::Trap { code: t, pc },
                    }
                }
                MachInst::AluImm { op, width, dst, a, imm } => {
                    let a = state.gprs[a.index()];
                    let b = match width {
                        Width::W32 => *imm as i32 as u32 as u64,
                        Width::W64 => *imm as u64,
                    };
                    match ops::eval_alu(*op, *width, a, b) {
                        Ok(v) => state.gprs[dst.index()] = v,
                        Err(t) => return CpuExit::Trap { code: t, pc },
                    }
                }
                MachInst::Unop { op, width, dst, src } => {
                    state.gprs[dst.index()] = ops::eval_unop(*op, *width, state.gprs[src.index()]);
                }
                MachInst::Cmp { op, width, dst, a, b } => {
                    state.gprs[dst.index()] =
                        ops::eval_cmp(*op, *width, state.gprs[a.index()], state.gprs[b.index()]);
                }
                MachInst::CmpImm { op, width, dst, a, imm } => {
                    let b = match width {
                        Width::W32 => *imm as i32 as u32 as u64,
                        Width::W64 => *imm as u64,
                    };
                    state.gprs[dst.index()] =
                        ops::eval_cmp(*op, *width, state.gprs[a.index()], b);
                }
                MachInst::FAlu { op, width, dst, a, b } => {
                    state.fprs[dst.index()] =
                        ops::eval_falu(*op, *width, state.fprs[a.index()], state.fprs[b.index()]);
                }
                MachInst::FUnop { op, width, dst, src } => {
                    state.fprs[dst.index()] = ops::eval_funop(*op, *width, state.fprs[src.index()]);
                }
                MachInst::FCmp { op, width, dst, a, b } => {
                    state.gprs[dst.index()] =
                        ops::eval_fcmp(*op, *width, state.fprs[a.index()], state.fprs[b.index()]);
                }
                MachInst::Convert { op, dst, src } => {
                    let v = state.read(*src);
                    match ops::eval_convert(*op, v) {
                        Ok(bits) => state.write(*dst, bits),
                        Err(t) => return CpuExit::Trap { code: t, pc },
                    }
                }
                MachInst::Select { dst, cond, if_true, if_false } => {
                    let take = state.gprs[cond.index()] != 0;
                    state.gprs[dst.index()] = if take {
                        state.gprs[if_true.index()]
                    } else {
                        state.gprs[if_false.index()]
                    };
                }
                MachInst::FSelect { dst, cond, if_true, if_false } => {
                    let take = state.gprs[cond.index()] != 0;
                    state.fprs[dst.index()] = if take {
                        state.fprs[if_true.index()]
                    } else {
                        state.fprs[if_false.index()]
                    };
                }
                MachInst::MemLoad { dst, addr, offset, width, signed, dst_width } => {
                    let memory = match ctx.memory.as_deref() {
                        Some(m) => m,
                        None => return CpuExit::Trap { code: TrapCode::MemoryOutOfBounds, pc },
                    };
                    let addr = state.gprs[addr.index()] as u32;
                    let raw = match memory.load(addr, *offset, *width) {
                        Ok(v) => v,
                        Err(t) => return CpuExit::Trap { code: t, pc },
                    };
                    let bits = extend_loaded(raw, *width, *signed, *dst_width);
                    state.write(*dst, bits);
                }
                MachInst::MemStore { src, addr, offset, width } => {
                    let addr_v = state.gprs[addr.index()] as u32;
                    let bits = state.read(*src);
                    let memory = match ctx.memory.as_deref_mut() {
                        Some(m) => m,
                        None => return CpuExit::Trap { code: TrapCode::MemoryOutOfBounds, pc },
                    };
                    if let Err(t) = memory.store(addr_v, *offset, *width, bits) {
                        return CpuExit::Trap { code: t, pc };
                    }
                }
                MachInst::MemorySize { dst } => {
                    let pages = ctx.memory.as_deref().map(|m| m.size_pages()).unwrap_or(0);
                    state.gprs[dst.index()] = pages as u64;
                }
                MachInst::MemoryGrow { dst, delta } => {
                    let delta_v = state.gprs[delta.index()] as u32;
                    let result = match ctx.memory.as_deref_mut() {
                        Some(m) => m.grow(delta_v),
                        None => -1,
                    };
                    state.gprs[dst.index()] = result as u32 as u64;
                }
                MachInst::GlobalGet { dst, index } => {
                    let bits = ctx.globals[*index as usize].bits;
                    state.write(*dst, bits);
                }
                MachInst::GlobalSet { index, src } => {
                    let bits = state.read(*src);
                    ctx.globals[*index as usize].bits = bits;
                }
                MachInst::Jump { target } => {
                    pc = code.target(*target);
                    continue;
                }
                MachInst::BrIf { cond, target, negate } => {
                    let taken = (state.gprs[cond.index()] != 0) ^ negate;
                    if taken {
                        pc = code.target(*target);
                        continue;
                    }
                }
                MachInst::BrTable { index, targets, default } => {
                    let i = state.gprs[index.index()] as usize;
                    let label = targets.get(i).copied().unwrap_or(*default);
                    pc = code.target(label);
                    continue;
                }
                MachInst::Call { func_index } => {
                    return CpuExit::Call {
                        func_index: *func_index,
                        resume_pc: pc + 1,
                    };
                }
                MachInst::CallIndirect { type_index, table_index, index } => {
                    return CpuExit::CallIndirect {
                        type_index: *type_index,
                        table_index: *table_index,
                        entry_index: state.gprs[index.index()] as u32,
                        resume_pc: pc + 1,
                    };
                }
                MachInst::ProbeRuntime { probe_id } => {
                    return CpuExit::Probe {
                        exit: ProbeExit::Runtime { probe_id: *probe_id },
                        resume_pc: pc + 1,
                    };
                }
                MachInst::ProbeDirect { probe_id } => {
                    return CpuExit::Probe {
                        exit: ProbeExit::Direct { probe_id: *probe_id },
                        resume_pc: pc + 1,
                    };
                }
                MachInst::ProbeCounter { counter_id } => {
                    return CpuExit::Probe {
                        exit: ProbeExit::Counter { counter_id: *counter_id },
                        resume_pc: pc + 1,
                    };
                }
                MachInst::ProbeTosValue { probe_id, src } => {
                    return CpuExit::Probe {
                        exit: ProbeExit::TosValue {
                            probe_id: *probe_id,
                            bits: state.read(*src),
                        },
                        resume_pc: pc + 1,
                    };
                }
                MachInst::FuelCheck { amount } => {
                    // OSR is polled before any metering runs: when the hook
                    // fires, the site's fuel has not been charged, and the
                    // opt-tier entry stub jumps to the loop header whose
                    // first instruction is this same check — so the charge
                    // happens exactly once regardless of the transition.
                    if let Some(offset) =
                        ctx.meter.poll_osr(|| code.source_offset(pc).unwrap_or(0))
                    {
                        return CpuExit::Osr { offset, resume_pc: pc };
                    }
                    // The fused meter check: decrement fuel, then observe a
                    // pending preemption request. A real engine implements
                    // this as one register decrement-and-branch (the
                    // supervisor delivers preemption by zeroing the
                    // activation's counter); the simulator keeps the two
                    // meters separate but preserves that single-sequence
                    // cost, which is why no distinct epoch poll is emitted.
                    if let Err(t) = ctx.meter.charge_fuel(*amount) {
                        return CpuExit::Trap { code: t, pc };
                    }
                    if let Err(t) = ctx.meter.check_epoch() {
                        return CpuExit::Trap { code: t, pc };
                    }
                    ctx.meter.poll_sampler(|| code.source_offset(pc).unwrap_or(0));
                }
                MachInst::EpochCheck => {
                    if let Some(offset) =
                        ctx.meter.poll_osr(|| code.source_offset(pc).unwrap_or(0))
                    {
                        return CpuExit::Osr { offset, resume_pc: pc };
                    }
                    if let Err(t) = ctx.meter.check_epoch() {
                        return CpuExit::Trap { code: t, pc };
                    }
                    ctx.meter.poll_sampler(|| code.source_offset(pc).unwrap_or(0));
                }
                MachInst::Trap { code } => return CpuExit::Trap { code: *code, pc },
                MachInst::Return => return CpuExit::Return,
            }
            pc += 1;
        }
    }
}

fn extend_loaded(raw: u64, width: u32, signed: bool, dst_width: Width) -> u64 {
    let value = if signed {
        match width {
            1 => raw as u8 as i8 as i64 as u64,
            2 => raw as u16 as i16 as i64 as u64,
            4 => raw as u32 as i32 as i64 as u64,
            _ => raw,
        }
    } else {
        raw
    };
    match dst_width {
        Width::W32 => value as u32 as u64,
        Width::W64 => value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::inst::{AluOp, CmpOp, FAluOp};
    use crate::reg::{FReg, Reg};
    use crate::values::{ValueTag, WasmValue};
    use wasm::types::Limits;

    struct World {
        values: ValueStack,
        memory: LinearMemory,
        globals: Vec<GlobalSlot>,
        tables: Vec<Table>,
    }

    impl World {
        fn new() -> World {
            World {
                values: ValueStack::with_capacity(256),
                memory: LinearMemory::new(Limits::at_least(1)),
                globals: vec![GlobalSlot::from_value(WasmValue::I64(11))],
                tables: vec![Table::new(Limits::at_least(4))],
            }
        }

        fn run(&mut self, code: &CodeBuffer) -> (CpuExit, CpuState, u64) {
            let cpu = Cpu::new(CostModel::default());
            let mut state = CpuState::new();
            let mut cycles = CycleCounter::new();
            let mut ctx = ExecContext {
                values: &mut self.values,
                frame_base: 0,
                memory: Some(&mut self.memory),
                globals: &mut self.globals,
                tables: &mut self.tables,
                meter: Meter::off(),
            };
            let exit = cpu.run(&mut state, code, 0, &mut ctx, &mut cycles);
            (exit, state, cycles.total())
        }
    }

    #[test]
    fn arithmetic_and_moves() {
        let mut asm = Assembler::new();
        asm.emit(MachInst::MovImm { dst: Reg(0), imm: 21 });
        asm.emit(MachInst::MovImm { dst: Reg(1), imm: 2 });
        asm.emit(MachInst::Alu {
            op: AluOp::Mul,
            width: Width::W32,
            dst: Reg(2),
            a: Reg(0),
            b: Reg(1),
        });
        asm.emit(MachInst::AluImm {
            op: AluOp::Add,
            width: Width::W32,
            dst: Reg(2),
            a: Reg(2),
            imm: -2,
        });
        asm.emit(MachInst::StoreSlot { slot: 0, src: Reg(2).into() });
        asm.emit(MachInst::StoreTag { slot: 0, tag: ValueTag::I32 });
        asm.emit(MachInst::Return);
        let code = asm.finish();

        let mut w = World::new();
        let (exit, state, cycles) = w.run(&code);
        assert_eq!(exit, CpuExit::Return);
        assert_eq!(state.gprs[2], 40);
        assert_eq!(w.values.read_value(0), WasmValue::I32(40));
        assert!(cycles > 0);
    }

    #[test]
    fn loop_sums_one_to_ten() {
        // r0 = counter, r1 = sum
        let mut asm = Assembler::new();
        asm.emit(MachInst::MovImm { dst: Reg(0), imm: 10 });
        asm.emit(MachInst::MovImm { dst: Reg(1), imm: 0 });
        let top = asm.new_bound_label();
        asm.emit(MachInst::Alu {
            op: AluOp::Add,
            width: Width::W64,
            dst: Reg(1),
            a: Reg(1),
            b: Reg(0),
        });
        asm.emit(MachInst::AluImm {
            op: AluOp::Sub,
            width: Width::W64,
            dst: Reg(0),
            a: Reg(0),
            imm: 1,
        });
        asm.emit(MachInst::BrIf { cond: Reg(0), target: top, negate: false });
        asm.emit(MachInst::Return);
        let code = asm.finish();

        let mut w = World::new();
        let (exit, state, _) = w.run(&code);
        assert_eq!(exit, CpuExit::Return);
        assert_eq!(state.gprs[1], 55);
    }

    #[test]
    fn float_ops_and_selects() {
        let mut asm = Assembler::new();
        asm.emit(MachInst::FMovImm { dst: FReg(0), bits: 2.0f64.to_bits() });
        asm.emit(MachInst::FMovImm { dst: FReg(1), bits: 0.5f64.to_bits() });
        asm.emit(MachInst::FAlu {
            op: FAluOp::Div,
            width: Width::W64,
            dst: FReg(2),
            a: FReg(0),
            b: FReg(1),
        });
        asm.emit(MachInst::MovImm { dst: Reg(0), imm: 0 });
        asm.emit(MachInst::FSelect {
            dst: FReg(3),
            cond: Reg(0),
            if_true: FReg(0),
            if_false: FReg(2),
        });
        asm.emit(MachInst::Return);
        let code = asm.finish();
        let mut w = World::new();
        let (_, state, _) = w.run(&code);
        assert_eq!(f64::from_bits(state.fprs[2]), 4.0);
        assert_eq!(f64::from_bits(state.fprs[3]), 4.0);
    }

    #[test]
    fn memory_access_and_bounds_trap() {
        let mut asm = Assembler::new();
        asm.emit(MachInst::MovImm { dst: Reg(0), imm: 64 });
        asm.emit(MachInst::MovImm { dst: Reg(1), imm: -1 });
        asm.emit(MachInst::MemStore { src: Reg(1).into(), addr: Reg(0), offset: 0, width: 4 });
        asm.emit(MachInst::MemLoad {
            dst: Reg(2).into(),
            addr: Reg(0),
            offset: 2,
            width: 2,
            signed: true,
            dst_width: Width::W32,
        });
        asm.emit(MachInst::Return);
        let code = asm.finish();
        let mut w = World::new();
        let (exit, state, _) = w.run(&code);
        assert_eq!(exit, CpuExit::Return);
        assert_eq!(state.gprs[2] as u32 as i32, -1);

        // Out-of-bounds store traps.
        let mut asm = Assembler::new();
        asm.emit(MachInst::MovImm { dst: Reg(0), imm: 65536 });
        asm.emit(MachInst::MemStore { src: Reg(0).into(), addr: Reg(0), offset: 0, width: 4 });
        asm.emit(MachInst::Return);
        let code = asm.finish();
        let (exit, _, _) = w.run(&code);
        assert_eq!(exit, CpuExit::Trap { code: TrapCode::MemoryOutOfBounds, pc: 1 });
    }

    #[test]
    fn memory_size_and_grow() {
        let mut asm = Assembler::new();
        asm.emit(MachInst::MemorySize { dst: Reg(0) });
        asm.emit(MachInst::MovImm { dst: Reg(1), imm: 2 });
        asm.emit(MachInst::MemoryGrow { dst: Reg(2), delta: Reg(1) });
        asm.emit(MachInst::MemorySize { dst: Reg(3) });
        asm.emit(MachInst::Return);
        let code = asm.finish();
        let mut w = World::new();
        let (_, state, _) = w.run(&code);
        assert_eq!(state.gprs[0], 1);
        assert_eq!(state.gprs[2], 1);
        assert_eq!(state.gprs[3], 3);
    }

    #[test]
    fn globals_and_tags() {
        let mut asm = Assembler::new();
        asm.emit(MachInst::GlobalGet { dst: Reg(0).into(), index: 0 });
        asm.emit(MachInst::AluImm {
            op: AluOp::Add,
            width: Width::W64,
            dst: Reg(0),
            a: Reg(0),
            imm: 1,
        });
        asm.emit(MachInst::GlobalSet { index: 0, src: Reg(0).into() });
        asm.emit(MachInst::Return);
        let code = asm.finish();
        let mut w = World::new();
        let (_, _, _) = w.run(&code);
        assert_eq!(w.globals[0].value(), WasmValue::I64(12));
    }

    #[test]
    fn division_trap_exits() {
        let mut asm = Assembler::new();
        asm.emit(MachInst::MovImm { dst: Reg(0), imm: 9 });
        asm.emit(MachInst::MovImm { dst: Reg(1), imm: 0 });
        asm.emit(MachInst::Alu {
            op: AluOp::DivU,
            width: Width::W32,
            dst: Reg(2),
            a: Reg(0),
            b: Reg(1),
        });
        asm.emit(MachInst::Return);
        let code = asm.finish();
        let mut w = World::new();
        let (exit, _, _) = w.run(&code);
        assert_eq!(exit, CpuExit::Trap { code: TrapCode::DivisionByZero, pc: 2 });
    }

    #[test]
    fn call_and_probe_exits_resume_pcs() {
        let mut asm = Assembler::new();
        asm.emit(MachInst::Call { func_index: 3 });
        asm.emit(MachInst::ProbeTosValue { probe_id: 9, src: Reg(5).into() });
        asm.emit(MachInst::Return);
        let code = asm.finish();
        let mut w = World::new();
        let (exit, _, _) = w.run(&code);
        assert_eq!(exit, CpuExit::Call { func_index: 3, resume_pc: 1 });

        // Resume at pc 1: the probe exit carries the register value.
        let cpu = Cpu::new(CostModel::default());
        let mut state = CpuState::new();
        state.gprs[5] = 77;
        let mut cycles = CycleCounter::new();
        let mut ctx = ExecContext {
            values: &mut w.values,
            frame_base: 0,
            memory: Some(&mut w.memory),
            globals: &mut w.globals,
            tables: &mut w.tables,
            meter: Meter::off(),
        };
        let exit = cpu.run(&mut state, &code, 1, &mut ctx, &mut cycles);
        assert_eq!(
            exit,
            CpuExit::Probe {
                exit: ProbeExit::TosValue { probe_id: 9, bits: 77 },
                resume_pc: 2
            }
        );
        let exit = cpu.run(&mut state, &code, 2, &mut ctx, &mut cycles);
        assert_eq!(exit, CpuExit::Return);
    }

    #[test]
    fn br_table_dispatch() {
        let mut asm = Assembler::new();
        let l0 = asm.new_label();
        let l1 = asm.new_label();
        let ldefault = asm.new_label();
        asm.emit(MachInst::BrTable {
            index: Reg(0),
            targets: vec![l0, l1],
            default: ldefault,
        });
        asm.bind(l0);
        asm.emit(MachInst::MovImm { dst: Reg(1), imm: 100 });
        asm.emit(MachInst::Return);
        asm.bind(l1);
        asm.emit(MachInst::MovImm { dst: Reg(1), imm: 200 });
        asm.emit(MachInst::Return);
        asm.bind(ldefault);
        asm.emit(MachInst::MovImm { dst: Reg(1), imm: 300 });
        asm.emit(MachInst::Return);
        let code = asm.finish();

        for (input, expected) in [(0u64, 100u64), (1, 200), (2, 300), (99, 300)] {
            let cpu = Cpu::new(CostModel::default());
            let mut w = World::new();
            let mut state = CpuState::new();
            state.gprs[0] = input;
            let mut cycles = CycleCounter::new();
            let mut ctx = ExecContext {
                values: &mut w.values,
                frame_base: 0,
                memory: Some(&mut w.memory),
                globals: &mut w.globals,
                tables: &mut w.tables,
                meter: Meter::off(),
            };
            let exit = cpu.run(&mut state, &code, 0, &mut ctx, &mut cycles);
            assert_eq!(exit, CpuExit::Return);
            assert_eq!(state.gprs[1], expected, "input {input}");
        }
    }

    #[test]
    fn frame_base_offsets_slot_access() {
        let mut asm = Assembler::new();
        asm.emit(MachInst::LoadSlot { dst: Reg(0).into(), slot: 1 });
        asm.emit(MachInst::AluImm {
            op: AluOp::Add,
            width: Width::W64,
            dst: Reg(0),
            a: Reg(0),
            imm: 5,
        });
        asm.emit(MachInst::StoreSlot { slot: 2, src: Reg(0).into() });
        asm.emit(MachInst::Return);
        let code = asm.finish();

        let mut w = World::new();
        w.values.write_tagged(10, 0, ValueTag::I64);
        w.values.write_tagged(11, 30, ValueTag::I64);
        let cpu = Cpu::new(CostModel::default());
        let mut state = CpuState::new();
        let mut cycles = CycleCounter::new();
        let mut ctx = ExecContext {
            values: &mut w.values,
            frame_base: 10,
            memory: Some(&mut w.memory),
            globals: &mut w.globals,
            tables: &mut w.tables,
            meter: Meter::off(),
        };
        cpu.run(&mut state, &code, 0, &mut ctx, &mut cycles);
        assert_eq!(w.values.read(12), 35);
    }

    #[test]
    fn comparisons_feed_branches() {
        let mut asm = Assembler::new();
        asm.emit(MachInst::MovImm { dst: Reg(0), imm: 3 });
        asm.emit(MachInst::CmpImm {
            op: CmpOp::LtS,
            width: Width::W32,
            dst: Reg(1),
            a: Reg(0),
            imm: 10,
        });
        let yes = asm.new_label();
        asm.emit(MachInst::BrIf { cond: Reg(1), target: yes, negate: false });
        asm.emit(MachInst::MovImm { dst: Reg(2), imm: 0 });
        asm.emit(MachInst::Return);
        asm.bind(yes);
        asm.emit(MachInst::MovImm { dst: Reg(2), imm: 1 });
        asm.emit(MachInst::Return);
        let code = asm.finish();
        let mut w = World::new();
        let (_, state, _) = w.run(&code);
        assert_eq!(state.gprs[2], 1);
    }

    #[test]
    fn cycles_reflect_cost_model() {
        let cost = CostModel::default();
        let mut asm = Assembler::new();
        asm.emit(MachInst::MovImm { dst: Reg(0), imm: 1 });
        asm.emit(MachInst::Return);
        let code = asm.finish();
        let mut w = World::new();
        let (_, _, cycles) = w.run(&code);
        assert_eq!(cycles, cost.mov + cost.ret);
    }
}
