//! Scalar operation semantics shared by every execution tier.
//!
//! The in-place interpreter, the CPU simulator (executing baseline- or
//! optimizing-compiled code), and the compilers' constant folders all call
//! these functions, so a Wasm `i32.div_s` means exactly the same thing in
//! every tier — which is what makes cross-tier differential testing precise.
//!
//! All functions operate on raw 64-bit slot bits. 32-bit results are stored
//! zero-extended, matching the value-stack representation.

use crate::inst::{AluOp, CmpOp, ConvOp, FAluOp, FCmpOp, FUnOp, TrapCode, UnOp, Width};

#[inline]
fn mask(width: Width, v: u64) -> u64 {
    match width {
        Width::W32 => v as u32 as u64,
        Width::W64 => v,
    }
}

/// Evaluates an integer ALU operation on raw slot bits.
///
/// # Errors
///
/// Returns a trap code for division by zero and signed division overflow.
pub fn eval_alu(op: AluOp, width: Width, a: u64, b: u64) -> Result<u64, TrapCode> {
    let result = match width {
        Width::W32 => {
            let a = a as u32;
            let b = b as u32;
            let r: u32 = match op {
                AluOp::Add => a.wrapping_add(b),
                AluOp::Sub => a.wrapping_sub(b),
                AluOp::Mul => a.wrapping_mul(b),
                AluOp::DivS => {
                    let (a, b) = (a as i32, b as i32);
                    if b == 0 {
                        return Err(TrapCode::DivisionByZero);
                    }
                    if a == i32::MIN && b == -1 {
                        return Err(TrapCode::IntegerOverflow);
                    }
                    (a / b) as u32
                }
                AluOp::DivU => {
                    if b == 0 {
                        return Err(TrapCode::DivisionByZero);
                    }
                    a / b
                }
                AluOp::RemS => {
                    let (a, b) = (a as i32, b as i32);
                    if b == 0 {
                        return Err(TrapCode::DivisionByZero);
                    }
                    a.wrapping_rem(b) as u32
                }
                AluOp::RemU => {
                    if b == 0 {
                        return Err(TrapCode::DivisionByZero);
                    }
                    a % b
                }
                AluOp::And => a & b,
                AluOp::Or => a | b,
                AluOp::Xor => a ^ b,
                AluOp::Shl => a.wrapping_shl(b),
                AluOp::ShrS => ((a as i32).wrapping_shr(b)) as u32,
                AluOp::ShrU => a.wrapping_shr(b),
                AluOp::Rotl => a.rotate_left(b % 32),
                AluOp::Rotr => a.rotate_right(b % 32),
            };
            r as u64
        }
        Width::W64 => {
            let r: u64 = match op {
                AluOp::Add => a.wrapping_add(b),
                AluOp::Sub => a.wrapping_sub(b),
                AluOp::Mul => a.wrapping_mul(b),
                AluOp::DivS => {
                    let (a, b) = (a as i64, b as i64);
                    if b == 0 {
                        return Err(TrapCode::DivisionByZero);
                    }
                    if a == i64::MIN && b == -1 {
                        return Err(TrapCode::IntegerOverflow);
                    }
                    (a / b) as u64
                }
                AluOp::DivU => {
                    if b == 0 {
                        return Err(TrapCode::DivisionByZero);
                    }
                    a / b
                }
                AluOp::RemS => {
                    let (a, b) = (a as i64, b as i64);
                    if b == 0 {
                        return Err(TrapCode::DivisionByZero);
                    }
                    a.wrapping_rem(b) as u64
                }
                AluOp::RemU => {
                    if b == 0 {
                        return Err(TrapCode::DivisionByZero);
                    }
                    a % b
                }
                AluOp::And => a & b,
                AluOp::Or => a | b,
                AluOp::Xor => a ^ b,
                AluOp::Shl => a.wrapping_shl(b as u32),
                AluOp::ShrS => ((a as i64).wrapping_shr(b as u32)) as u64,
                AluOp::ShrU => a.wrapping_shr(b as u32),
                AluOp::Rotl => a.rotate_left((b % 64) as u32),
                AluOp::Rotr => a.rotate_right((b % 64) as u32),
            };
            r
        }
    };
    Ok(mask(width, result))
}

/// Evaluates a single-operand integer operation.
pub fn eval_unop(op: UnOp, width: Width, v: u64) -> u64 {
    let r = match width {
        Width::W32 => {
            let v32 = v as u32;
            match op {
                UnOp::Clz => v32.leading_zeros() as u64,
                UnOp::Ctz => v32.trailing_zeros() as u64,
                UnOp::Popcnt => v32.count_ones() as u64,
                UnOp::Eqz => (v32 == 0) as u64,
                UnOp::Extend8S => (v32 as u8 as i8 as i32) as u32 as u64,
                UnOp::Extend16S => (v32 as u16 as i16 as i32) as u32 as u64,
                UnOp::Extend32S => v32 as u64,
            }
        }
        Width::W64 => match op {
            UnOp::Clz => v.leading_zeros() as u64,
            UnOp::Ctz => v.trailing_zeros() as u64,
            UnOp::Popcnt => v.count_ones() as u64,
            UnOp::Eqz => (v == 0) as u64,
            UnOp::Extend8S => (v as u8 as i8 as i64) as u64,
            UnOp::Extend16S => (v as u16 as i16 as i64) as u64,
            UnOp::Extend32S => (v as u32 as i32 as i64) as u64,
        },
    };
    mask(width, r)
}

/// Evaluates an integer comparison, producing 0 or 1.
pub fn eval_cmp(op: CmpOp, width: Width, a: u64, b: u64) -> u64 {
    let result = match width {
        Width::W32 => {
            let (ua, ub) = (a as u32, b as u32);
            let (sa, sb) = (ua as i32, ub as i32);
            match op {
                CmpOp::Eq => ua == ub,
                CmpOp::Ne => ua != ub,
                CmpOp::LtS => sa < sb,
                CmpOp::LtU => ua < ub,
                CmpOp::GtS => sa > sb,
                CmpOp::GtU => ua > ub,
                CmpOp::LeS => sa <= sb,
                CmpOp::LeU => ua <= ub,
                CmpOp::GeS => sa >= sb,
                CmpOp::GeU => ua >= ub,
            }
        }
        Width::W64 => {
            let (sa, sb) = (a as i64, b as i64);
            match op {
                CmpOp::Eq => a == b,
                CmpOp::Ne => a != b,
                CmpOp::LtS => sa < sb,
                CmpOp::LtU => a < b,
                CmpOp::GtS => sa > sb,
                CmpOp::GtU => a > b,
                CmpOp::LeS => sa <= sb,
                CmpOp::LeU => a <= b,
                CmpOp::GeS => sa >= sb,
                CmpOp::GeU => a >= b,
            }
        }
    };
    result as u64
}

fn f32_of(bits: u64) -> f32 {
    f32::from_bits(bits as u32)
}

fn f64_of(bits: u64) -> f64 {
    f64::from_bits(bits)
}

fn bits_of_f32(v: f32) -> u64 {
    v.to_bits() as u64
}

fn bits_of_f64(v: f64) -> u64 {
    v.to_bits()
}

fn wasm_min_f64(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        f64::NAN
    } else if a == 0.0 && b == 0.0 {
        if a.is_sign_negative() || b.is_sign_negative() {
            -0.0
        } else {
            0.0
        }
    } else {
        a.min(b)
    }
}

fn wasm_max_f64(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        f64::NAN
    } else if a == 0.0 && b == 0.0 {
        if a.is_sign_positive() || b.is_sign_positive() {
            0.0
        } else {
            -0.0
        }
    } else {
        a.max(b)
    }
}

/// Evaluates a two-operand floating-point operation on raw bits.
pub fn eval_falu(op: FAluOp, width: Width, a: u64, b: u64) -> u64 {
    match width {
        Width::W32 => {
            let (x, y) = (f32_of(a), f32_of(b));
            let r = match op {
                FAluOp::Add => x + y,
                FAluOp::Sub => x - y,
                FAluOp::Mul => x * y,
                FAluOp::Div => x / y,
                FAluOp::Min => wasm_min_f64(x as f64, y as f64) as f32,
                FAluOp::Max => wasm_max_f64(x as f64, y as f64) as f32,
                FAluOp::Copysign => x.copysign(y),
            };
            bits_of_f32(r)
        }
        Width::W64 => {
            let (x, y) = (f64_of(a), f64_of(b));
            let r = match op {
                FAluOp::Add => x + y,
                FAluOp::Sub => x - y,
                FAluOp::Mul => x * y,
                FAluOp::Div => x / y,
                FAluOp::Min => wasm_min_f64(x, y),
                FAluOp::Max => wasm_max_f64(x, y),
                FAluOp::Copysign => x.copysign(y),
            };
            bits_of_f64(r)
        }
    }
}

/// Evaluates a single-operand floating-point operation on raw bits.
pub fn eval_funop(op: FUnOp, width: Width, v: u64) -> u64 {
    match width {
        Width::W32 => {
            let x = f32_of(v);
            let r = match op {
                FUnOp::Abs => x.abs(),
                FUnOp::Neg => -x,
                FUnOp::Ceil => x.ceil(),
                FUnOp::Floor => x.floor(),
                FUnOp::Trunc => x.trunc(),
                FUnOp::Nearest => x.round_ties_even(),
                FUnOp::Sqrt => x.sqrt(),
            };
            bits_of_f32(r)
        }
        Width::W64 => {
            let x = f64_of(v);
            let r = match op {
                FUnOp::Abs => x.abs(),
                FUnOp::Neg => -x,
                FUnOp::Ceil => x.ceil(),
                FUnOp::Floor => x.floor(),
                FUnOp::Trunc => x.trunc(),
                FUnOp::Nearest => x.round_ties_even(),
                FUnOp::Sqrt => x.sqrt(),
            };
            bits_of_f64(r)
        }
    }
}

/// Evaluates a floating-point comparison, producing 0 or 1.
pub fn eval_fcmp(op: FCmpOp, width: Width, a: u64, b: u64) -> u64 {
    let (x, y) = match width {
        Width::W32 => (f32_of(a) as f64, f32_of(b) as f64),
        Width::W64 => (f64_of(a), f64_of(b)),
    };
    let result = match op {
        FCmpOp::Eq => x == y,
        FCmpOp::Ne => x != y,
        FCmpOp::Lt => x < y,
        FCmpOp::Gt => x > y,
        FCmpOp::Le => x <= y,
        FCmpOp::Ge => x >= y,
    };
    result as u64
}

fn trunc_to_int(v: f64, min: f64, max: f64) -> Result<f64, TrapCode> {
    if v.is_nan() {
        return Err(TrapCode::InvalidConversionToInteger);
    }
    let t = v.trunc();
    if t < min || t > max {
        return Err(TrapCode::IntegerOverflow);
    }
    Ok(t)
}

/// Evaluates a numeric conversion on raw bits.
///
/// # Errors
///
/// Returns a trap code for float-to-integer truncations of NaN or
/// out-of-range values.
pub fn eval_convert(op: ConvOp, v: u64) -> Result<u64, TrapCode> {
    use ConvOp::*;
    Ok(match op {
        I32WrapI64 => v as u32 as u64,
        I64ExtendI32S => (v as u32 as i32 as i64) as u64,
        I64ExtendI32U => v as u32 as u64,
        I32TruncF32S => {
            trunc_to_int(f32_of(v) as f64, -2147483648.0, 2147483647.0)? as i32 as u32 as u64
        }
        I32TruncF32U => trunc_to_int(f32_of(v) as f64, 0.0, 4294967295.0)? as u32 as u64,
        I32TruncF64S => {
            trunc_to_int(f64_of(v), -2147483648.0, 2147483647.0)? as i32 as u32 as u64
        }
        I32TruncF64U => trunc_to_int(f64_of(v), 0.0, 4294967295.0)? as u32 as u64,
        I64TruncF32S => {
            trunc_to_int(f32_of(v) as f64, -9223372036854775808.0, 9223372036854774784.0)? as i64
                as u64
        }
        I64TruncF32U => {
            trunc_to_int(f32_of(v) as f64, 0.0, 18446744073709549568.0)? as u64
        }
        I64TruncF64S => {
            trunc_to_int(f64_of(v), -9223372036854775808.0, 9223372036854774784.0)? as i64 as u64
        }
        I64TruncF64U => trunc_to_int(f64_of(v), 0.0, 18446744073709549568.0)? as u64,
        F32ConvertI32S => bits_of_f32(v as u32 as i32 as f32),
        F32ConvertI32U => bits_of_f32(v as u32 as f32),
        F32ConvertI64S => bits_of_f32(v as i64 as f32),
        F32ConvertI64U => bits_of_f32(v as f32),
        F64ConvertI32S => bits_of_f64(v as u32 as i32 as f64),
        F64ConvertI32U => bits_of_f64(v as u32 as f64),
        F64ConvertI64S => bits_of_f64(v as i64 as f64),
        F64ConvertI64U => bits_of_f64(v as f64),
        F32DemoteF64 => bits_of_f32(f64_of(v) as f32),
        F64PromoteF32 => bits_of_f64(f32_of(v) as f64),
        I32ReinterpretF32 => v as u32 as u64,
        I64ReinterpretF64 => v,
        F32ReinterpretI32 => v as u32 as u64,
        F64ReinterpretI64 => v,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b32(v: i32) -> u64 {
        v as u32 as u64
    }

    #[test]
    fn alu_32_bit_wrapping_and_masking() {
        assert_eq!(eval_alu(AluOp::Add, Width::W32, b32(-1), b32(1)).unwrap(), 0);
        assert_eq!(
            eval_alu(AluOp::Add, Width::W32, b32(i32::MAX), 1).unwrap(),
            b32(i32::MIN)
        );
        assert_eq!(eval_alu(AluOp::Sub, Width::W32, 0, 1).unwrap(), b32(-1));
        assert_eq!(
            eval_alu(AluOp::Mul, Width::W32, b32(65536), b32(65536)).unwrap(),
            0
        );
        // Results must be zero-extended to 64 bits.
        assert_eq!(
            eval_alu(AluOp::Add, Width::W32, b32(-2), b32(1)).unwrap() >> 32,
            0
        );
    }

    #[test]
    fn division_traps() {
        assert_eq!(
            eval_alu(AluOp::DivS, Width::W32, 1, 0),
            Err(TrapCode::DivisionByZero)
        );
        assert_eq!(
            eval_alu(AluOp::DivS, Width::W32, b32(i32::MIN), b32(-1)),
            Err(TrapCode::IntegerOverflow)
        );
        assert_eq!(
            eval_alu(AluOp::RemS, Width::W32, b32(i32::MIN), b32(-1)).unwrap(),
            0,
            "rem of MIN by -1 is defined as 0"
        );
        assert_eq!(
            eval_alu(AluOp::DivU, Width::W64, 10, 3).unwrap(),
            3
        );
        assert_eq!(
            eval_alu(AluOp::DivS, Width::W64, (-9i64) as u64, 2).unwrap(),
            (-4i64) as u64
        );
    }

    #[test]
    fn shifts_mask_their_counts() {
        assert_eq!(eval_alu(AluOp::Shl, Width::W32, 1, 33).unwrap(), 2);
        assert_eq!(eval_alu(AluOp::ShrU, Width::W32, 4, 33).unwrap(), 2);
        assert_eq!(
            eval_alu(AluOp::ShrS, Width::W32, b32(-8), 1).unwrap(),
            b32(-4)
        );
        assert_eq!(eval_alu(AluOp::Shl, Width::W64, 1, 65).unwrap(), 2);
        assert_eq!(eval_alu(AluOp::Rotl, Width::W32, 0x8000_0001, 1).unwrap(), 3);
        assert_eq!(
            eval_alu(AluOp::Rotr, Width::W64, 1, 1).unwrap(),
            0x8000_0000_0000_0000
        );
    }

    #[test]
    fn unops() {
        assert_eq!(eval_unop(UnOp::Clz, Width::W32, 1), 31);
        assert_eq!(eval_unop(UnOp::Clz, Width::W32, 0), 32);
        assert_eq!(eval_unop(UnOp::Ctz, Width::W64, 0), 64);
        assert_eq!(eval_unop(UnOp::Popcnt, Width::W32, 0xFF), 8);
        assert_eq!(eval_unop(UnOp::Eqz, Width::W32, 0), 1);
        assert_eq!(eval_unop(UnOp::Eqz, Width::W64, 5), 0);
        assert_eq!(eval_unop(UnOp::Extend8S, Width::W32, 0x80), b32(-128));
        assert_eq!(eval_unop(UnOp::Extend16S, Width::W32, 0x8000), b32(-32768));
        assert_eq!(
            eval_unop(UnOp::Extend32S, Width::W64, 0x8000_0000),
            (-2147483648i64) as u64
        );
    }

    #[test]
    fn comparisons_signed_vs_unsigned() {
        assert_eq!(eval_cmp(CmpOp::LtS, Width::W32, b32(-1), b32(1)), 1);
        assert_eq!(eval_cmp(CmpOp::LtU, Width::W32, b32(-1), b32(1)), 0);
        assert_eq!(eval_cmp(CmpOp::GeU, Width::W64, u64::MAX, 0), 1);
        assert_eq!(eval_cmp(CmpOp::GeS, Width::W64, u64::MAX, 0), 0);
        assert_eq!(eval_cmp(CmpOp::Eq, Width::W32, 7, 7), 1);
        assert_eq!(eval_cmp(CmpOp::Ne, Width::W32, 7, 7), 0);
    }

    #[test]
    fn float_arithmetic_and_special_values() {
        let a = bits_of_f64(1.5);
        let b = bits_of_f64(2.25);
        assert_eq!(f64_of(eval_falu(FAluOp::Add, Width::W64, a, b)), 3.75);
        assert_eq!(f64_of(eval_falu(FAluOp::Div, Width::W64, a, bits_of_f64(0.0))), f64::INFINITY);
        // NaN propagation in min/max.
        let nan = bits_of_f64(f64::NAN);
        assert!(f64_of(eval_falu(FAluOp::Min, Width::W64, nan, b)).is_nan());
        assert!(f64_of(eval_falu(FAluOp::Max, Width::W64, a, nan)).is_nan());
        // Signed zero handling.
        let nz = bits_of_f64(-0.0);
        let pz = bits_of_f64(0.0);
        assert!(f64_of(eval_falu(FAluOp::Min, Width::W64, pz, nz)).is_sign_negative());
        assert!(f64_of(eval_falu(FAluOp::Max, Width::W64, pz, nz)).is_sign_positive());
        // Copysign.
        assert_eq!(
            f64_of(eval_falu(FAluOp::Copysign, Width::W64, a, nz)),
            -1.5
        );
        // f32 path.
        let x = bits_of_f32(3.0);
        let y = bits_of_f32(0.5);
        assert_eq!(f32_of(eval_falu(FAluOp::Mul, Width::W32, x, y)), 1.5);
    }

    #[test]
    fn float_unops_and_rounding() {
        assert_eq!(f64_of(eval_funop(FUnOp::Abs, Width::W64, bits_of_f64(-2.0))), 2.0);
        assert_eq!(f64_of(eval_funop(FUnOp::Neg, Width::W64, bits_of_f64(2.0))), -2.0);
        assert_eq!(f64_of(eval_funop(FUnOp::Ceil, Width::W64, bits_of_f64(1.2))), 2.0);
        assert_eq!(f64_of(eval_funop(FUnOp::Floor, Width::W64, bits_of_f64(-1.2))), -2.0);
        assert_eq!(f64_of(eval_funop(FUnOp::Trunc, Width::W64, bits_of_f64(-1.7))), -1.0);
        // Ties to even.
        assert_eq!(f64_of(eval_funop(FUnOp::Nearest, Width::W64, bits_of_f64(2.5))), 2.0);
        assert_eq!(f64_of(eval_funop(FUnOp::Nearest, Width::W64, bits_of_f64(3.5))), 4.0);
        assert_eq!(f64_of(eval_funop(FUnOp::Sqrt, Width::W64, bits_of_f64(9.0))), 3.0);
        assert_eq!(f32_of(eval_funop(FUnOp::Sqrt, Width::W32, bits_of_f32(4.0))), 2.0);
    }

    #[test]
    fn float_comparisons_with_nan() {
        let nan = bits_of_f64(f64::NAN);
        let one = bits_of_f64(1.0);
        assert_eq!(eval_fcmp(FCmpOp::Eq, Width::W64, nan, nan), 0);
        assert_eq!(eval_fcmp(FCmpOp::Ne, Width::W64, nan, one), 1);
        assert_eq!(eval_fcmp(FCmpOp::Lt, Width::W64, nan, one), 0);
        assert_eq!(eval_fcmp(FCmpOp::Le, Width::W64, one, one), 1);
        assert_eq!(
            eval_fcmp(FCmpOp::Gt, Width::W32, bits_of_f32(2.0), bits_of_f32(1.0)),
            1
        );
    }

    #[test]
    fn conversions() {
        assert_eq!(
            eval_convert(ConvOp::I32WrapI64, 0x1_0000_0005).unwrap(),
            5
        );
        assert_eq!(
            eval_convert(ConvOp::I64ExtendI32S, b32(-3)).unwrap(),
            (-3i64) as u64
        );
        assert_eq!(eval_convert(ConvOp::I64ExtendI32U, b32(-3)).unwrap(), 0xFFFF_FFFD);
        assert_eq!(
            eval_convert(ConvOp::I32TruncF64S, bits_of_f64(-3.9)).unwrap(),
            b32(-3)
        );
        assert_eq!(
            eval_convert(ConvOp::I32TruncF64S, bits_of_f64(f64::NAN)),
            Err(TrapCode::InvalidConversionToInteger)
        );
        assert_eq!(
            eval_convert(ConvOp::I32TruncF64S, bits_of_f64(3e10)),
            Err(TrapCode::IntegerOverflow)
        );
        assert_eq!(
            eval_convert(ConvOp::I32TruncF64U, bits_of_f64(-1.0)),
            Err(TrapCode::IntegerOverflow)
        );
        assert_eq!(
            f64_of(eval_convert(ConvOp::F64ConvertI32S, b32(-2)).unwrap()),
            -2.0
        );
        assert_eq!(
            f64_of(eval_convert(ConvOp::F64ConvertI32U, b32(-2)).unwrap()),
            4294967294.0
        );
        assert_eq!(
            f32_of(eval_convert(ConvOp::F32DemoteF64, bits_of_f64(1.5)).unwrap()),
            1.5
        );
        assert_eq!(
            f64_of(eval_convert(ConvOp::F64PromoteF32, bits_of_f32(2.5)).unwrap()),
            2.5
        );
        // Reinterpretations preserve bits.
        assert_eq!(
            eval_convert(ConvOp::I64ReinterpretF64, bits_of_f64(1.0)).unwrap(),
            bits_of_f64(1.0)
        );
        assert_eq!(
            eval_convert(ConvOp::F32ReinterpretI32, 0x3F80_0000).unwrap(),
            bits_of_f32(1.0)
        );
    }

    #[test]
    fn i64_trunc_large_values() {
        assert_eq!(
            eval_convert(ConvOp::I64TruncF64S, bits_of_f64(-1e15)).unwrap(),
            (-1_000_000_000_000_000i64) as u64
        );
        assert!(eval_convert(ConvOp::I64TruncF64U, bits_of_f64(1e20)).is_err());
        assert_eq!(
            eval_convert(ConvOp::I64TruncF64U, bits_of_f64(1e15)).unwrap(),
            1_000_000_000_000_000
        );
    }
}
