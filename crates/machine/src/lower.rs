//! Classification of Wasm opcodes into target-machine operation classes.
//!
//! Both the single-pass compiler and the in-place interpreter need to know,
//! for a given Wasm opcode, which ALU/compare/convert operation it denotes and
//! at what width. Centralizing the mapping here keeps the tiers semantically
//! identical and gives the compilers' constant folders a single evaluation
//! path (via [`crate::ops`]).

use crate::inst::{AluOp, CmpOp, ConvOp, FAluOp, FCmpOp, FUnOp, UnOp, Width};
use crate::ops;
use crate::inst::TrapCode;
use wasm::opcode::Opcode;
use wasm::types::ValueType;

/// The machine-level class of a simple (non-control) Wasm value instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// Two-operand integer arithmetic.
    Alu(AluOp, Width),
    /// One-operand integer arithmetic.
    Unop(UnOp, Width),
    /// Integer comparison (result is i32).
    Cmp(CmpOp, Width),
    /// Two-operand float arithmetic.
    FAlu(FAluOp, Width),
    /// One-operand float arithmetic.
    FUnop(FUnOp, Width),
    /// Float comparison (result is i32).
    FCmp(FCmpOp, Width),
    /// Numeric conversion.
    Convert(ConvOp),
}

impl OpClass {
    /// The value type of the operation's operands.
    pub fn operand_type(&self) -> ValueType {
        match self {
            OpClass::Alu(_, w) | OpClass::Unop(_, w) | OpClass::Cmp(_, w) => int_type(*w),
            OpClass::FAlu(_, w) | OpClass::FUnop(_, w) | OpClass::FCmp(_, w) => float_type(*w),
            OpClass::Convert(c) => conv_src_type(*c),
        }
    }

    /// The value type of the operation's result.
    pub fn result_type(&self) -> ValueType {
        match self {
            // eqz produces an i32 boolean regardless of its operand width.
            OpClass::Unop(UnOp::Eqz, _) => ValueType::I32,
            OpClass::Alu(_, w) | OpClass::Unop(_, w) => int_type(*w),
            OpClass::Cmp(..) | OpClass::FCmp(..) => ValueType::I32,
            OpClass::FAlu(_, w) | OpClass::FUnop(_, w) => float_type(*w),
            OpClass::Convert(c) => conv_dst_type(*c),
        }
    }

    /// The number of operands popped from the stack.
    pub fn arity(&self) -> usize {
        match self {
            OpClass::Alu(..) | OpClass::Cmp(..) | OpClass::FAlu(..) | OpClass::FCmp(..) => 2,
            OpClass::Unop(..) | OpClass::FUnop(..) | OpClass::Convert(..) => 1,
        }
    }

    /// True if evaluating this operation can trap.
    pub fn can_trap(&self) -> bool {
        match self {
            OpClass::Alu(op, _) => op.is_division(),
            OpClass::Convert(c) => c.can_trap(),
            _ => false,
        }
    }

    /// Constant-evaluates this operation on raw slot bits. Used by the
    /// compilers' constant folding and by the interpreter.
    ///
    /// # Errors
    ///
    /// Returns the trap this operation would raise at runtime.
    pub fn evaluate(&self, operands: &[u64]) -> Result<u64, TrapCode> {
        match *self {
            OpClass::Alu(op, w) => ops::eval_alu(op, w, operands[0], operands[1]),
            OpClass::Unop(op, w) => Ok(ops::eval_unop(op, w, operands[0])),
            OpClass::Cmp(op, w) => Ok(ops::eval_cmp(op, w, operands[0], operands[1])),
            OpClass::FAlu(op, w) => Ok(ops::eval_falu(op, w, operands[0], operands[1])),
            OpClass::FUnop(op, w) => Ok(ops::eval_funop(op, w, operands[0])),
            OpClass::FCmp(op, w) => Ok(ops::eval_fcmp(op, w, operands[0], operands[1])),
            OpClass::Convert(c) => ops::eval_convert(c, operands[0]),
        }
    }
}

fn int_type(w: Width) -> ValueType {
    match w {
        Width::W32 => ValueType::I32,
        Width::W64 => ValueType::I64,
    }
}

fn float_type(w: Width) -> ValueType {
    match w {
        Width::W32 => ValueType::F32,
        Width::W64 => ValueType::F64,
    }
}

/// The source value type of a conversion.
pub fn conv_src_type(op: ConvOp) -> ValueType {
    use ConvOp::*;
    match op {
        I32WrapI64 | F32ConvertI64S | F32ConvertI64U | F64ConvertI64S | F64ConvertI64U
        | F64ReinterpretI64 => ValueType::I64,
        I64ExtendI32S | I64ExtendI32U | F32ConvertI32S | F32ConvertI32U | F64ConvertI32S
        | F64ConvertI32U | F32ReinterpretI32 => ValueType::I32,
        I32TruncF32S | I32TruncF32U | I64TruncF32S | I64TruncF32U | F64PromoteF32
        | I32ReinterpretF32 => ValueType::F32,
        I32TruncF64S | I32TruncF64U | I64TruncF64S | I64TruncF64U | F32DemoteF64
        | I64ReinterpretF64 => ValueType::F64,
    }
}

/// The destination value type of a conversion.
pub fn conv_dst_type(op: ConvOp) -> ValueType {
    use ConvOp::*;
    match op {
        I32WrapI64 | I32TruncF32S | I32TruncF32U | I32TruncF64S | I32TruncF64U
        | I32ReinterpretF32 => ValueType::I32,
        I64ExtendI32S | I64ExtendI32U | I64TruncF32S | I64TruncF32U | I64TruncF64S
        | I64TruncF64U | I64ReinterpretF64 => ValueType::I64,
        F32ConvertI32S | F32ConvertI32U | F32ConvertI64S | F32ConvertI64U | F32DemoteF64
        | F32ReinterpretI32 => ValueType::F32,
        F64ConvertI32S | F64ConvertI32U | F64ConvertI64S | F64ConvertI64U | F64PromoteF32
        | F64ReinterpretI64 => ValueType::F64,
    }
}

/// Classifies a Wasm opcode into its machine operation class, or `None` for
/// control-flow, memory, variable, and other "special" instructions.
pub fn classify(op: Opcode) -> Option<OpClass> {
    use Opcode::*;
    use Width::{W32, W64};
    Some(match op {
        // i32 unary / comparisons.
        I32Eqz => OpClass::Unop(UnOp::Eqz, W32),
        I32Clz => OpClass::Unop(UnOp::Clz, W32),
        I32Ctz => OpClass::Unop(UnOp::Ctz, W32),
        I32Popcnt => OpClass::Unop(UnOp::Popcnt, W32),
        I32Extend8S => OpClass::Unop(UnOp::Extend8S, W32),
        I32Extend16S => OpClass::Unop(UnOp::Extend16S, W32),
        I32Eq => OpClass::Cmp(CmpOp::Eq, W32),
        I32Ne => OpClass::Cmp(CmpOp::Ne, W32),
        I32LtS => OpClass::Cmp(CmpOp::LtS, W32),
        I32LtU => OpClass::Cmp(CmpOp::LtU, W32),
        I32GtS => OpClass::Cmp(CmpOp::GtS, W32),
        I32GtU => OpClass::Cmp(CmpOp::GtU, W32),
        I32LeS => OpClass::Cmp(CmpOp::LeS, W32),
        I32LeU => OpClass::Cmp(CmpOp::LeU, W32),
        I32GeS => OpClass::Cmp(CmpOp::GeS, W32),
        I32GeU => OpClass::Cmp(CmpOp::GeU, W32),
        // i32 binary.
        I32Add => OpClass::Alu(AluOp::Add, W32),
        I32Sub => OpClass::Alu(AluOp::Sub, W32),
        I32Mul => OpClass::Alu(AluOp::Mul, W32),
        I32DivS => OpClass::Alu(AluOp::DivS, W32),
        I32DivU => OpClass::Alu(AluOp::DivU, W32),
        I32RemS => OpClass::Alu(AluOp::RemS, W32),
        I32RemU => OpClass::Alu(AluOp::RemU, W32),
        I32And => OpClass::Alu(AluOp::And, W32),
        I32Or => OpClass::Alu(AluOp::Or, W32),
        I32Xor => OpClass::Alu(AluOp::Xor, W32),
        I32Shl => OpClass::Alu(AluOp::Shl, W32),
        I32ShrS => OpClass::Alu(AluOp::ShrS, W32),
        I32ShrU => OpClass::Alu(AluOp::ShrU, W32),
        I32Rotl => OpClass::Alu(AluOp::Rotl, W32),
        I32Rotr => OpClass::Alu(AluOp::Rotr, W32),
        // i64 unary / comparisons.
        I64Eqz => OpClass::Unop(UnOp::Eqz, W64),
        I64Clz => OpClass::Unop(UnOp::Clz, W64),
        I64Ctz => OpClass::Unop(UnOp::Ctz, W64),
        I64Popcnt => OpClass::Unop(UnOp::Popcnt, W64),
        I64Extend8S => OpClass::Unop(UnOp::Extend8S, W64),
        I64Extend16S => OpClass::Unop(UnOp::Extend16S, W64),
        I64Extend32S => OpClass::Unop(UnOp::Extend32S, W64),
        I64Eq => OpClass::Cmp(CmpOp::Eq, W64),
        I64Ne => OpClass::Cmp(CmpOp::Ne, W64),
        I64LtS => OpClass::Cmp(CmpOp::LtS, W64),
        I64LtU => OpClass::Cmp(CmpOp::LtU, W64),
        I64GtS => OpClass::Cmp(CmpOp::GtS, W64),
        I64GtU => OpClass::Cmp(CmpOp::GtU, W64),
        I64LeS => OpClass::Cmp(CmpOp::LeS, W64),
        I64LeU => OpClass::Cmp(CmpOp::LeU, W64),
        I64GeS => OpClass::Cmp(CmpOp::GeS, W64),
        I64GeU => OpClass::Cmp(CmpOp::GeU, W64),
        // i64 binary.
        I64Add => OpClass::Alu(AluOp::Add, W64),
        I64Sub => OpClass::Alu(AluOp::Sub, W64),
        I64Mul => OpClass::Alu(AluOp::Mul, W64),
        I64DivS => OpClass::Alu(AluOp::DivS, W64),
        I64DivU => OpClass::Alu(AluOp::DivU, W64),
        I64RemS => OpClass::Alu(AluOp::RemS, W64),
        I64RemU => OpClass::Alu(AluOp::RemU, W64),
        I64And => OpClass::Alu(AluOp::And, W64),
        I64Or => OpClass::Alu(AluOp::Or, W64),
        I64Xor => OpClass::Alu(AluOp::Xor, W64),
        I64Shl => OpClass::Alu(AluOp::Shl, W64),
        I64ShrS => OpClass::Alu(AluOp::ShrS, W64),
        I64ShrU => OpClass::Alu(AluOp::ShrU, W64),
        I64Rotl => OpClass::Alu(AluOp::Rotl, W64),
        I64Rotr => OpClass::Alu(AluOp::Rotr, W64),
        // f32.
        F32Eq => OpClass::FCmp(FCmpOp::Eq, W32),
        F32Ne => OpClass::FCmp(FCmpOp::Ne, W32),
        F32Lt => OpClass::FCmp(FCmpOp::Lt, W32),
        F32Gt => OpClass::FCmp(FCmpOp::Gt, W32),
        F32Le => OpClass::FCmp(FCmpOp::Le, W32),
        F32Ge => OpClass::FCmp(FCmpOp::Ge, W32),
        F32Abs => OpClass::FUnop(FUnOp::Abs, W32),
        F32Neg => OpClass::FUnop(FUnOp::Neg, W32),
        F32Ceil => OpClass::FUnop(FUnOp::Ceil, W32),
        F32Floor => OpClass::FUnop(FUnOp::Floor, W32),
        F32Trunc => OpClass::FUnop(FUnOp::Trunc, W32),
        F32Nearest => OpClass::FUnop(FUnOp::Nearest, W32),
        F32Sqrt => OpClass::FUnop(FUnOp::Sqrt, W32),
        F32Add => OpClass::FAlu(FAluOp::Add, W32),
        F32Sub => OpClass::FAlu(FAluOp::Sub, W32),
        F32Mul => OpClass::FAlu(FAluOp::Mul, W32),
        F32Div => OpClass::FAlu(FAluOp::Div, W32),
        F32Min => OpClass::FAlu(FAluOp::Min, W32),
        F32Max => OpClass::FAlu(FAluOp::Max, W32),
        F32Copysign => OpClass::FAlu(FAluOp::Copysign, W32),
        // f64.
        F64Eq => OpClass::FCmp(FCmpOp::Eq, W64),
        F64Ne => OpClass::FCmp(FCmpOp::Ne, W64),
        F64Lt => OpClass::FCmp(FCmpOp::Lt, W64),
        F64Gt => OpClass::FCmp(FCmpOp::Gt, W64),
        F64Le => OpClass::FCmp(FCmpOp::Le, W64),
        F64Ge => OpClass::FCmp(FCmpOp::Ge, W64),
        F64Abs => OpClass::FUnop(FUnOp::Abs, W64),
        F64Neg => OpClass::FUnop(FUnOp::Neg, W64),
        F64Ceil => OpClass::FUnop(FUnOp::Ceil, W64),
        F64Floor => OpClass::FUnop(FUnOp::Floor, W64),
        F64Trunc => OpClass::FUnop(FUnOp::Trunc, W64),
        F64Nearest => OpClass::FUnop(FUnOp::Nearest, W64),
        F64Sqrt => OpClass::FUnop(FUnOp::Sqrt, W64),
        F64Add => OpClass::FAlu(FAluOp::Add, W64),
        F64Sub => OpClass::FAlu(FAluOp::Sub, W64),
        F64Mul => OpClass::FAlu(FAluOp::Mul, W64),
        F64Div => OpClass::FAlu(FAluOp::Div, W64),
        F64Min => OpClass::FAlu(FAluOp::Min, W64),
        F64Max => OpClass::FAlu(FAluOp::Max, W64),
        F64Copysign => OpClass::FAlu(FAluOp::Copysign, W64),
        // Conversions.
        I32WrapI64 => OpClass::Convert(ConvOp::I32WrapI64),
        I32TruncF32S => OpClass::Convert(ConvOp::I32TruncF32S),
        I32TruncF32U => OpClass::Convert(ConvOp::I32TruncF32U),
        I32TruncF64S => OpClass::Convert(ConvOp::I32TruncF64S),
        I32TruncF64U => OpClass::Convert(ConvOp::I32TruncF64U),
        I64ExtendI32S => OpClass::Convert(ConvOp::I64ExtendI32S),
        I64ExtendI32U => OpClass::Convert(ConvOp::I64ExtendI32U),
        I64TruncF32S => OpClass::Convert(ConvOp::I64TruncF32S),
        I64TruncF32U => OpClass::Convert(ConvOp::I64TruncF32U),
        I64TruncF64S => OpClass::Convert(ConvOp::I64TruncF64S),
        I64TruncF64U => OpClass::Convert(ConvOp::I64TruncF64U),
        F32ConvertI32S => OpClass::Convert(ConvOp::F32ConvertI32S),
        F32ConvertI32U => OpClass::Convert(ConvOp::F32ConvertI32U),
        F32ConvertI64S => OpClass::Convert(ConvOp::F32ConvertI64S),
        F32ConvertI64U => OpClass::Convert(ConvOp::F32ConvertI64U),
        F32DemoteF64 => OpClass::Convert(ConvOp::F32DemoteF64),
        F64ConvertI32S => OpClass::Convert(ConvOp::F64ConvertI32S),
        F64ConvertI32U => OpClass::Convert(ConvOp::F64ConvertI32U),
        F64ConvertI64S => OpClass::Convert(ConvOp::F64ConvertI64S),
        F64ConvertI64U => OpClass::Convert(ConvOp::F64ConvertI64U),
        F64PromoteF32 => OpClass::Convert(ConvOp::F64PromoteF32),
        I32ReinterpretF32 => OpClass::Convert(ConvOp::I32ReinterpretF32),
        I64ReinterpretF64 => OpClass::Convert(ConvOp::I64ReinterpretF64),
        F32ReinterpretI32 => OpClass::Convert(ConvOp::F32ReinterpretI32),
        F64ReinterpretI64 => OpClass::Convert(ConvOp::F64ReinterpretI64),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasm::opcode::OpSignature;

    #[test]
    fn classification_matches_opcode_signatures() {
        // Every opcode with a simple Unary/Binary signature must classify, and
        // its operand/result types must agree with the opcode's signature.
        for &op in Opcode::ALL {
            if op == Opcode::RefIsNull {
                // ref.is_null is handled specially by the tiers (null check
                // against the reference encoding), not as a machine unop.
                assert_eq!(classify(op), None);
                continue;
            }
            match op.signature() {
                OpSignature::Unary(input, output) => {
                    let class = classify(op).unwrap_or_else(|| panic!("{op} must classify"));
                    assert_eq!(class.arity(), 1, "{op}");
                    assert_eq!(class.operand_type(), input, "{op}");
                    assert_eq!(class.result_type(), output, "{op}");
                }
                OpSignature::Binary(input, output) => {
                    let class = classify(op).unwrap_or_else(|| panic!("{op} must classify"));
                    assert_eq!(class.arity(), 2, "{op}");
                    assert_eq!(class.operand_type(), input, "{op}");
                    assert_eq!(class.result_type(), output, "{op}");
                }
                _ => {
                    // Special opcodes (except eqz/ref ops handled elsewhere)
                    // must not classify as simple operations.
                    if !matches!(
                        op,
                        Opcode::I32Eqz | Opcode::I64Eqz | Opcode::RefIsNull
                    ) {
                        if let OpSignature::Special | OpSignature::Const(_) = op.signature() {
                            assert!(
                                classify(op).is_none()
                                    || matches!(op.signature(), OpSignature::Special),
                                "{op}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn eqz_classifies_as_unop() {
        assert_eq!(classify(Opcode::I32Eqz), Some(OpClass::Unop(UnOp::Eqz, Width::W32)));
        assert_eq!(classify(Opcode::I64Eqz), Some(OpClass::Unop(UnOp::Eqz, Width::W64)));
        assert_eq!(classify(Opcode::I64Eqz).unwrap().result_type(), ValueType::I32);
    }

    #[test]
    fn control_and_memory_do_not_classify() {
        for op in [
            Opcode::Block,
            Opcode::Br,
            Opcode::Call,
            Opcode::LocalGet,
            Opcode::I32Load,
            Opcode::I32Store,
            Opcode::I32Const,
            Opcode::MemoryGrow,
            Opcode::Drop,
            Opcode::Select,
        ] {
            assert_eq!(classify(op), None, "{op}");
        }
    }

    #[test]
    fn evaluate_matches_ops() {
        let add = classify(Opcode::I32Add).unwrap();
        assert_eq!(add.evaluate(&[7, 8]).unwrap(), 15);
        let div = classify(Opcode::I32DivU).unwrap();
        assert_eq!(div.evaluate(&[8, 0]), Err(TrapCode::DivisionByZero));
        assert!(div.can_trap());
        assert!(!add.can_trap());
        let trunc = classify(Opcode::I32TruncF64S).unwrap();
        assert!(trunc.can_trap());
        let sqrt = classify(Opcode::F64Sqrt).unwrap();
        assert_eq!(sqrt.evaluate(&[16.0f64.to_bits()]).unwrap(), 4.0f64.to_bits());
    }

    #[test]
    fn conversion_types() {
        let c = classify(Opcode::F64ConvertI32S).unwrap();
        assert_eq!(c.operand_type(), ValueType::I32);
        assert_eq!(c.result_type(), ValueType::F64);
        let c = classify(Opcode::I32WrapI64).unwrap();
        assert_eq!(c.operand_type(), ValueType::I64);
        assert_eq!(c.result_type(), ValueType::I32);
    }
}
