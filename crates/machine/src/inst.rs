//! The virtual target instruction set.
//!
//! The virtual-ISA [`Masm`](crate::masm::Masm) backend emits these
//! instructions — one per macro operation — and the CPU simulator executes
//! them (see DESIGN.md for the substitution argument); the x86-64 backend
//! emits real machine bytes for the same operations instead.
//! The set deliberately mirrors what the production Wasm baseline compilers
//! emit: register/register and register/immediate ALU forms (immediate forms
//! are the paper's *instruction selection* optimization), loads and stores of
//! value-stack slots, explicit **value tag stores**, linear-memory accesses,
//! structured branches to labels, calls that exit to the engine, and probe
//! instructions for instrumentation.

use crate::reg::{AnyReg, FReg, Reg};
use crate::values::ValueTag;
use std::fmt;

/// Operand width of an integer operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// 32-bit operation.
    W32,
    /// 64-bit operation.
    W64,
}

impl Width {
    /// The width in bits.
    pub fn bits(self) -> u32 {
        match self {
            Width::W32 => 32,
            Width::W64 => 64,
        }
    }
}

/// Two-operand integer ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Signed division (traps on divide-by-zero and overflow).
    DivS,
    /// Unsigned division (traps on divide-by-zero).
    DivU,
    /// Signed remainder (traps on divide-by-zero).
    RemS,
    /// Unsigned remainder (traps on divide-by-zero).
    RemU,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left.
    Shl,
    /// Arithmetic shift right.
    ShrS,
    /// Logical shift right.
    ShrU,
    /// Rotate left.
    Rotl,
    /// Rotate right.
    Rotr,
}

impl AluOp {
    /// True for division/remainder, which can trap and are slower.
    pub fn is_division(self) -> bool {
        matches!(self, AluOp::DivS | AluOp::DivU | AluOp::RemS | AluOp::RemU)
    }
}

/// Single-operand integer operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Count leading zeros.
    Clz,
    /// Count trailing zeros.
    Ctz,
    /// Population count.
    Popcnt,
    /// Test-for-zero, producing 0 or 1.
    Eqz,
    /// Sign-extend the low 8 bits.
    Extend8S,
    /// Sign-extend the low 16 bits.
    Extend16S,
    /// Sign-extend the low 32 bits (64-bit only).
    Extend32S,
}

/// Integer comparison operations producing 0 or 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    LtS,
    /// Unsigned less-than.
    LtU,
    /// Signed greater-than.
    GtS,
    /// Unsigned greater-than.
    GtU,
    /// Signed less-or-equal.
    LeS,
    /// Unsigned less-or-equal.
    LeU,
    /// Signed greater-or-equal.
    GeS,
    /// Unsigned greater-or-equal.
    GeU,
}

/// Two-operand floating-point operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FAluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Minimum (NaN-propagating, as Wasm requires).
    Min,
    /// Maximum (NaN-propagating, as Wasm requires).
    Max,
    /// Copy sign.
    Copysign,
}

/// Single-operand floating-point operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FUnOp {
    /// Absolute value.
    Abs,
    /// Negation.
    Neg,
    /// Round up.
    Ceil,
    /// Round down.
    Floor,
    /// Round toward zero.
    Trunc,
    /// Round to nearest, ties to even.
    Nearest,
    /// Square root.
    Sqrt,
}

/// Floating-point comparisons producing 0 or 1 in a GPR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FCmpOp {
    /// Equal.
    Eq,
    /// Not equal (true for NaN operands).
    Ne,
    /// Less-than.
    Lt,
    /// Greater-than.
    Gt,
    /// Less-or-equal.
    Le,
    /// Greater-or-equal.
    Ge,
}

/// Conversions between numeric types, mirroring the Wasm conversion opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum ConvOp {
    I32WrapI64,
    I64ExtendI32S,
    I64ExtendI32U,
    I32TruncF32S,
    I32TruncF32U,
    I32TruncF64S,
    I32TruncF64U,
    I64TruncF32S,
    I64TruncF32U,
    I64TruncF64S,
    I64TruncF64U,
    F32ConvertI32S,
    F32ConvertI32U,
    F32ConvertI64S,
    F32ConvertI64U,
    F64ConvertI32S,
    F64ConvertI32U,
    F64ConvertI64S,
    F64ConvertI64U,
    F32DemoteF64,
    F64PromoteF32,
    I32ReinterpretF32,
    I64ReinterpretF64,
    F32ReinterpretI32,
    F64ReinterpretI64,
}

impl ConvOp {
    /// True if the source operand lives in a floating-point register.
    pub fn src_is_float(self) -> bool {
        use ConvOp::*;
        matches!(
            self,
            I32TruncF32S
                | I32TruncF32U
                | I32TruncF64S
                | I32TruncF64U
                | I64TruncF32S
                | I64TruncF32U
                | I64TruncF64S
                | I64TruncF64U
                | F32DemoteF64
                | F64PromoteF32
                | I32ReinterpretF32
                | I64ReinterpretF64
        )
    }

    /// True if the destination lives in a floating-point register.
    pub fn dst_is_float(self) -> bool {
        use ConvOp::*;
        matches!(
            self,
            F32ConvertI32S
                | F32ConvertI32U
                | F32ConvertI64S
                | F32ConvertI64U
                | F64ConvertI32S
                | F64ConvertI32U
                | F64ConvertI64S
                | F64ConvertI64U
                | F32DemoteF64
                | F64PromoteF32
                | F32ReinterpretI32
                | F64ReinterpretI64
        )
    }

    /// True for the trapping float-to-int truncations.
    pub fn can_trap(self) -> bool {
        use ConvOp::*;
        matches!(
            self,
            I32TruncF32S
                | I32TruncF32U
                | I32TruncF64S
                | I32TruncF64U
                | I64TruncF32S
                | I64TruncF32U
                | I64TruncF64S
                | I64TruncF64U
        )
    }
}

/// Reasons execution can trap. Identical codes are produced by the
/// interpreter and by JIT-compiled code so tests can compare tiers exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrapCode {
    /// The `unreachable` instruction was executed.
    Unreachable,
    /// A memory access was out of bounds.
    MemoryOutOfBounds,
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// Signed division overflow (`i32::MIN / -1`).
    IntegerOverflow,
    /// Float-to-integer conversion of NaN or out-of-range value.
    InvalidConversionToInteger,
    /// A table access was out of bounds.
    TableOutOfBounds,
    /// `call_indirect` through a null table entry.
    NullTableEntry,
    /// `call_indirect` signature mismatch.
    IndirectCallTypeMismatch,
    /// The value stack or call stack overflowed.
    StackOverflow,
    /// A host function reported an error.
    HostError,
    /// The instance's fuel budget was exhausted by a metered instruction.
    OutOfFuel,
    /// Execution was preempted by an epoch advance (deadline passed).
    Interrupted,
}

impl std::error::Error for TrapCode {}

impl fmt::Display for TrapCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TrapCode::Unreachable => "unreachable executed",
            TrapCode::MemoryOutOfBounds => "out of bounds memory access",
            TrapCode::DivisionByZero => "integer divide by zero",
            TrapCode::IntegerOverflow => "integer overflow",
            TrapCode::InvalidConversionToInteger => "invalid conversion to integer",
            TrapCode::TableOutOfBounds => "out of bounds table access",
            TrapCode::NullTableEntry => "uninitialized table element",
            TrapCode::IndirectCallTypeMismatch => "indirect call type mismatch",
            TrapCode::StackOverflow => "stack overflow",
            TrapCode::HostError => "host error",
            TrapCode::OutOfFuel => "all fuel consumed",
            TrapCode::Interrupted => "interrupt",
        };
        f.write_str(s)
    }
}

/// A branch target label, resolved by the assembler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(pub u32);

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A single instruction of the virtual target ISA.
#[derive(Debug, Clone, PartialEq)]
pub enum MachInst {
    /// No operation.
    Nop,
    /// Load an integer immediate into a GPR.
    MovImm {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// Load raw float bits into an FPR.
    FMovImm {
        /// Destination register.
        dst: FReg,
        /// Raw IEEE-754 bits (f32 in the low 32 bits).
        bits: u64,
    },
    /// Register-to-register move between GPRs.
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// Register-to-register move between FPRs.
    FMov {
        /// Destination register.
        dst: FReg,
        /// Source register.
        src: FReg,
    },
    /// Load a value-stack slot (relative to the frame base) into a register.
    LoadSlot {
        /// Destination register.
        dst: AnyReg,
        /// Frame-relative slot index.
        slot: u32,
    },
    /// Store a register into a value-stack slot.
    StoreSlot {
        /// Frame-relative slot index.
        slot: u32,
        /// Source register.
        src: AnyReg,
    },
    /// Store an immediate directly into a value-stack slot.
    StoreSlotImm {
        /// Frame-relative slot index.
        slot: u32,
        /// Immediate value (raw slot bits).
        imm: i64,
    },
    /// Store a value tag for a slot. This is the dynamic cost the paper's
    /// tag optimizations eliminate.
    StoreTag {
        /// Frame-relative slot index.
        slot: u32,
        /// The tag to store.
        tag: ValueTag,
    },
    /// Three-address integer ALU operation.
    Alu {
        /// Operation.
        op: AluOp,
        /// Operand width.
        width: Width,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// Integer ALU operation with an immediate right operand
    /// (the paper's "instruction selection" / immediate-mode optimization).
    AluImm {
        /// Operation.
        op: AluOp,
        /// Operand width.
        width: Width,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Immediate right operand.
        imm: i64,
    },
    /// Single-operand integer operation.
    Unop {
        /// Operation.
        op: UnOp,
        /// Operand width.
        width: Width,
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// Integer comparison producing 0/1.
    Cmp {
        /// Comparison.
        op: CmpOp,
        /// Operand width.
        width: Width,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// Integer comparison against an immediate.
    CmpImm {
        /// Comparison.
        op: CmpOp,
        /// Operand width.
        width: Width,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Immediate right operand.
        imm: i64,
    },
    /// Three-address floating-point operation.
    FAlu {
        /// Operation.
        op: FAluOp,
        /// Operand width (f32 or f64).
        width: Width,
        /// Destination register.
        dst: FReg,
        /// Left operand.
        a: FReg,
        /// Right operand.
        b: FReg,
    },
    /// Single-operand floating-point operation.
    FUnop {
        /// Operation.
        op: FUnOp,
        /// Operand width (f32 or f64).
        width: Width,
        /// Destination register.
        dst: FReg,
        /// Source register.
        src: FReg,
    },
    /// Floating-point comparison producing 0/1 in a GPR.
    FCmp {
        /// Comparison.
        op: FCmpOp,
        /// Operand width (f32 or f64).
        width: Width,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: FReg,
        /// Right operand.
        b: FReg,
    },
    /// Numeric conversion.
    Convert {
        /// The conversion.
        op: ConvOp,
        /// Destination register (bank determined by the conversion).
        dst: AnyReg,
        /// Source register (bank determined by the conversion).
        src: AnyReg,
    },
    /// Integer select: `dst = if cond != 0 { if_true } else { if_false }`.
    Select {
        /// Destination register.
        dst: Reg,
        /// Condition register.
        cond: Reg,
        /// Value if the condition is non-zero.
        if_true: Reg,
        /// Value if the condition is zero.
        if_false: Reg,
    },
    /// Floating-point select.
    FSelect {
        /// Destination register.
        dst: FReg,
        /// Condition register.
        cond: Reg,
        /// Value if the condition is non-zero.
        if_true: FReg,
        /// Value if the condition is zero.
        if_false: FReg,
    },
    /// Load from linear memory.
    MemLoad {
        /// Destination register (FPR for float loads).
        dst: AnyReg,
        /// Address register (i32 address).
        addr: Reg,
        /// Constant byte offset.
        offset: u32,
        /// Access width in bytes (1, 2, 4, 8).
        width: u32,
        /// Sign-extend the loaded integer value.
        signed: bool,
        /// Width of the destination value.
        dst_width: Width,
    },
    /// Store to linear memory.
    MemStore {
        /// Source register (FPR for float stores).
        src: AnyReg,
        /// Address register (i32 address).
        addr: Reg,
        /// Constant byte offset.
        offset: u32,
        /// Access width in bytes (1, 2, 4, 8).
        width: u32,
    },
    /// `memory.size` in pages.
    MemorySize {
        /// Destination register.
        dst: Reg,
    },
    /// `memory.grow` by a page delta.
    MemoryGrow {
        /// Destination register (old size or -1).
        dst: Reg,
        /// Number of pages to grow by.
        delta: Reg,
    },
    /// Read a global into a register.
    GlobalGet {
        /// Destination register.
        dst: AnyReg,
        /// Global index.
        index: u32,
    },
    /// Write a register into a global.
    GlobalSet {
        /// Global index.
        index: u32,
        /// Source register.
        src: AnyReg,
    },
    /// Unconditional jump.
    Jump {
        /// Target label.
        target: Label,
    },
    /// Conditional branch on a register being non-zero (or zero if negated).
    BrIf {
        /// Condition register.
        cond: Reg,
        /// Target label.
        target: Label,
        /// Branch when the condition is zero instead of non-zero.
        negate: bool,
    },
    /// Multi-way branch (jump table).
    BrTable {
        /// Index register.
        index: Reg,
        /// Table of targets.
        targets: Vec<Label>,
        /// Default target for out-of-range indices.
        default: Label,
    },
    /// Direct call. Execution exits to the engine, which runs the callee in
    /// whatever tier it currently has and then resumes this code.
    Call {
        /// Callee function index.
        func_index: u32,
    },
    /// Indirect call through a table. Checks are performed by the engine.
    CallIndirect {
        /// Expected signature (type index).
        type_index: u32,
        /// Table to index.
        table_index: u32,
        /// Register holding the table element index.
        index: Reg,
    },
    /// Unoptimized probe: call into the runtime, which looks up and fires the
    /// probes attached at this site (allocating a frame accessor).
    ProbeRuntime {
        /// Probe site id.
        probe_id: u32,
    },
    /// Optimized probe: a direct call to the probe, no runtime lookup.
    ProbeDirect {
        /// Probe site id.
        probe_id: u32,
    },
    /// Fully intrinsified counter probe: increments a counter in place.
    ProbeCounter {
        /// Counter id.
        counter_id: u32,
    },
    /// Optimized probe that passes the top-of-stack value directly,
    /// eliding the frame accessor.
    ProbeTosValue {
        /// Probe site id.
        probe_id: u32,
        /// Register holding the value to pass.
        src: AnyReg,
    },
    /// Deduct `amount` fuel from the executing instance's budget, trapping
    /// with [`TrapCode::OutOfFuel`] when the budget runs dry. A no-op when the
    /// instance has no fuel limit.
    FuelCheck {
        /// Fuel units charged by this check (one charge region's total cost).
        amount: u64,
    },
    /// Poll the engine epoch and trap with [`TrapCode::Interrupted`] when it
    /// has advanced past the instance's deadline. A no-op when the instance
    /// has no deadline.
    EpochCheck,
    /// Unconditional trap.
    Trap {
        /// The trap reason.
        code: TrapCode,
    },
    /// Return from the function. Results have already been stored to the
    /// frame's first result slots per the calling convention.
    Return,
}

impl MachInst {
    /// An estimate of the encoded size of this instruction in bytes, used for
    /// machine-code size statistics. The estimates approximate x86-64
    /// encodings of the equivalent instruction sequences.
    pub fn encoded_size(&self) -> usize {
        use MachInst::*;
        match self {
            Nop => 1,
            MovImm { imm, .. } => {
                if *imm >= i32::MIN as i64 && *imm <= i32::MAX as i64 {
                    5
                } else {
                    10
                }
            }
            FMovImm { .. } => 10,
            Mov { .. } | FMov { .. } => 3,
            LoadSlot { .. } | StoreSlot { .. } => 4,
            StoreSlotImm { .. } => 8,
            StoreTag { .. } => 4,
            Alu { op, .. } => {
                if op.is_division() {
                    6
                } else {
                    3
                }
            }
            AluImm { .. } => 4,
            Unop { .. } => 4,
            Cmp { .. } | CmpImm { .. } => 6,
            FAlu { .. } | FUnop { .. } => 4,
            FCmp { .. } => 7,
            Convert { .. } => 5,
            Select { .. } | FSelect { .. } => 7,
            MemLoad { .. } | MemStore { .. } => 5,
            MemorySize { .. } => 4,
            MemoryGrow { .. } => 12,
            GlobalGet { .. } | GlobalSet { .. } => 5,
            Jump { .. } => 5,
            BrIf { .. } => 6,
            BrTable { targets, .. } => 12 + 4 * targets.len(),
            Call { .. } => 5,
            CallIndirect { .. } => 14,
            ProbeRuntime { .. } => 10,
            ProbeDirect { .. } => 5,
            ProbeCounter { .. } => 7,
            ProbeTosValue { .. } => 6,
            // sub [fuel], imm32 ; jb trap — comparable to a guarded store.
            FuelCheck { .. } => 9,
            // cmp [epoch], reg ; jae trap.
            EpochCheck => 9,
            Trap { .. } => 2,
            Return => 3,
        }
    }

    /// True for instructions that end a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            MachInst::Jump { .. }
                | MachInst::BrTable { .. }
                | MachInst::Trap { .. }
                | MachInst::Return
        )
    }

    /// True for call-like instructions that exit to the engine.
    pub fn is_call(&self) -> bool {
        matches!(
            self,
            MachInst::Call { .. } | MachInst::CallIndirect { .. }
        )
    }
}

impl fmt::Display for MachInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use MachInst::*;
        match self {
            Nop => write!(f, "nop"),
            MovImm { dst, imm } => write!(f, "mov {dst}, #{imm}"),
            FMovImm { dst, bits } => write!(f, "fmov {dst}, #{bits:#x}"),
            Mov { dst, src } => write!(f, "mov {dst}, {src}"),
            FMov { dst, src } => write!(f, "fmov {dst}, {src}"),
            LoadSlot { dst, slot } => write!(f, "load {dst}, [vfp+{slot}]"),
            StoreSlot { slot, src } => write!(f, "store [vfp+{slot}], {src}"),
            StoreSlotImm { slot, imm } => write!(f, "store [vfp+{slot}], #{imm}"),
            StoreTag { slot, tag } => write!(f, "tag [vfp+{slot}], {tag}"),
            Alu { op, width, dst, a, b } => {
                write!(f, "{op:?}.{} {dst}, {a}, {b}", width.bits())
            }
            AluImm { op, width, dst, a, imm } => {
                write!(f, "{op:?}i.{} {dst}, {a}, #{imm}", width.bits())
            }
            Unop { op, width, dst, src } => {
                write!(f, "{op:?}.{} {dst}, {src}", width.bits())
            }
            Cmp { op, width, dst, a, b } => {
                write!(f, "cmp_{op:?}.{} {dst}, {a}, {b}", width.bits())
            }
            CmpImm { op, width, dst, a, imm } => {
                write!(f, "cmp_{op:?}i.{} {dst}, {a}, #{imm}", width.bits())
            }
            FAlu { op, width, dst, a, b } => {
                write!(f, "f{op:?}.{} {dst}, {a}, {b}", width.bits())
            }
            FUnop { op, width, dst, src } => {
                write!(f, "f{op:?}.{} {dst}, {src}", width.bits())
            }
            FCmp { op, width, dst, a, b } => {
                write!(f, "fcmp_{op:?}.{} {dst}, {a}, {b}", width.bits())
            }
            Convert { op, dst, src } => write!(f, "{op:?} {dst}, {src}"),
            Select { dst, cond, if_true, if_false } => {
                write!(f, "select {dst}, {cond} ? {if_true} : {if_false}")
            }
            FSelect { dst, cond, if_true, if_false } => {
                write!(f, "fselect {dst}, {cond} ? {if_true} : {if_false}")
            }
            MemLoad { dst, addr, offset, width, signed, .. } => write!(
                f,
                "mld{}{} {dst}, [{addr}+{offset}]",
                width * 8,
                if *signed { "s" } else { "u" }
            ),
            MemStore { src, addr, offset, width } => {
                write!(f, "mst{} [{addr}+{offset}], {src}", width * 8)
            }
            MemorySize { dst } => write!(f, "memsize {dst}"),
            MemoryGrow { dst, delta } => write!(f, "memgrow {dst}, {delta}"),
            GlobalGet { dst, index } => write!(f, "gget {dst}, g{index}"),
            GlobalSet { index, src } => write!(f, "gset g{index}, {src}"),
            Jump { target } => write!(f, "jmp {target}"),
            BrIf { cond, target, negate } => {
                write!(f, "br{} {cond}, {target}", if *negate { "z" } else { "nz" })
            }
            BrTable { index, targets, default } => {
                write!(f, "brtable {index}, {targets:?}, default {default}")
            }
            Call { func_index } => write!(f, "call func[{func_index}]"),
            CallIndirect { type_index, table_index, index } => {
                write!(f, "call_indirect table[{table_index}][{index}] sig{type_index}")
            }
            ProbeRuntime { probe_id } => write!(f, "probe_runtime {probe_id}"),
            ProbeDirect { probe_id } => write!(f, "probe_direct {probe_id}"),
            ProbeCounter { counter_id } => write!(f, "probe_counter {counter_id}"),
            ProbeTosValue { probe_id, src } => write!(f, "probe_tos {probe_id}, {src}"),
            FuelCheck { amount } => write!(f, "fuel_check #{amount}"),
            EpochCheck => write!(f, "epoch_check"),
            Trap { code } => write!(f, "trap {code}"),
            Return => write!(f, "ret"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_op_banks() {
        assert!(ConvOp::I32TruncF64S.src_is_float());
        assert!(!ConvOp::I32TruncF64S.dst_is_float());
        assert!(ConvOp::F64ConvertI32U.dst_is_float());
        assert!(!ConvOp::F64ConvertI32U.src_is_float());
        assert!(ConvOp::F32DemoteF64.src_is_float() && ConvOp::F32DemoteF64.dst_is_float());
        assert!(!ConvOp::I64ExtendI32S.src_is_float() && !ConvOp::I64ExtendI32S.dst_is_float());
        assert!(ConvOp::I32TruncF32U.can_trap());
        assert!(!ConvOp::F64PromoteF32.can_trap());
    }

    #[test]
    fn terminators_and_calls() {
        assert!(MachInst::Return.is_terminator());
        assert!(MachInst::Jump { target: Label(0) }.is_terminator());
        assert!(MachInst::Trap { code: TrapCode::Unreachable }.is_terminator());
        assert!(!MachInst::Nop.is_terminator());
        assert!(MachInst::Call { func_index: 1 }.is_call());
        assert!(!MachInst::ProbeDirect { probe_id: 0 }.is_call());
    }

    #[test]
    fn encoded_sizes_are_positive_and_scale() {
        let small = MachInst::MovImm { dst: Reg(0), imm: 1 };
        let large = MachInst::MovImm { dst: Reg(0), imm: i64::MAX };
        assert!(small.encoded_size() < large.encoded_size());
        let table = MachInst::BrTable {
            index: Reg(0),
            targets: vec![Label(0); 8],
            default: Label(1),
        };
        assert!(table.encoded_size() > MachInst::Jump { target: Label(0) }.encoded_size());
        assert!(MachInst::Nop.encoded_size() >= 1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(MachInst::Mov { dst: Reg(1), src: Reg(2) }.to_string(), "mov r1, r2");
        assert_eq!(
            MachInst::StoreTag { slot: 3, tag: ValueTag::Ref }.to_string(),
            "tag [vfp+3], ref"
        );
        assert_eq!(Label(4).to_string(), "L4");
        assert_eq!(TrapCode::DivisionByZero.to_string(), "integer divide by zero");
        let alu = MachInst::AluImm {
            op: AluOp::Add,
            width: Width::W32,
            dst: Reg(0),
            a: Reg(1),
            imm: 4,
        };
        assert!(alu.to_string().contains("Addi.32"));
    }

    #[test]
    fn alu_division_classification() {
        assert!(AluOp::DivS.is_division());
        assert!(AluOp::RemU.is_division());
        assert!(!AluOp::Add.is_division());
        assert!(!AluOp::Rotl.is_division());
    }
}
