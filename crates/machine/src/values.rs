//! Runtime value representation: tagged 64-bit slots and the value stack.
//!
//! Following the paper's Wizard design (Fig. 2), every Wasm value occupies one
//! 64-bit slot plus a one-byte *value tag* identifying what the slot holds.
//! The value stack is shared verbatim between the in-place interpreter and
//! JIT-compiled code: the interpreter reads and writes it for every
//! instruction, while compiled code keeps values in registers and only spills
//! to it at observable points (calls, traps, probes) or when registers run
//! out. The garbage collector finds reference roots by scanning tags.

use std::fmt;
use wasm::types::ValueType;

/// Encoding of a null reference in a 64-bit slot.
pub const NULL_REF_BITS: u64 = u64::MAX;

/// The dynamic tag stored alongside each value-stack slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ValueTag {
    /// The slot holds an `i32`.
    I32 = 0,
    /// The slot holds an `i64`.
    I64 = 1,
    /// The slot holds an `f32` (in its low 32 bits).
    F32 = 2,
    /// The slot holds an `f64`.
    F64 = 3,
    /// The slot holds a function reference (function index or null).
    FuncRef = 4,
    /// The slot holds a host object reference — a GC root.
    Ref = 5,
    /// The slot's contents are dead / uninitialized. Scanners skip it.
    Dead = 6,
}

impl ValueTag {
    /// The tag corresponding to a value type.
    pub fn for_type(t: ValueType) -> ValueTag {
        match t {
            ValueType::I32 => ValueTag::I32,
            ValueType::I64 => ValueTag::I64,
            ValueType::F32 => ValueTag::F32,
            ValueType::F64 => ValueTag::F64,
            ValueType::FuncRef => ValueTag::FuncRef,
            ValueType::ExternRef => ValueTag::Ref,
        }
    }

    /// Decodes a tag from its byte encoding.
    pub fn from_byte(b: u8) -> Option<ValueTag> {
        Some(match b {
            0 => ValueTag::I32,
            1 => ValueTag::I64,
            2 => ValueTag::F32,
            3 => ValueTag::F64,
            4 => ValueTag::FuncRef,
            5 => ValueTag::Ref,
            6 => ValueTag::Dead,
            _ => return None,
        })
    }

    /// True if slots with this tag are garbage-collection roots.
    pub fn is_gc_root(self) -> bool {
        self == ValueTag::Ref
    }
}

impl fmt::Display for ValueTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueTag::I32 => "i32",
            ValueTag::I64 => "i64",
            ValueTag::F32 => "f32",
            ValueTag::F64 => "f64",
            ValueTag::FuncRef => "funcref",
            ValueTag::Ref => "ref",
            ValueTag::Dead => "dead",
        };
        f.write_str(s)
    }
}

/// A WebAssembly runtime value at the host level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WasmValue {
    /// A 32-bit integer.
    I32(i32),
    /// A 64-bit integer.
    I64(i64),
    /// A 32-bit float.
    F32(f32),
    /// A 64-bit float.
    F64(f64),
    /// A function reference (function index) or null.
    FuncRef(Option<u32>),
    /// A host object reference (handle into the host GC heap) or null.
    ExternRef(Option<u32>),
}

impl WasmValue {
    /// The default (zero / null) value of a type.
    pub fn default_for(t: ValueType) -> WasmValue {
        match t {
            ValueType::I32 => WasmValue::I32(0),
            ValueType::I64 => WasmValue::I64(0),
            ValueType::F32 => WasmValue::F32(0.0),
            ValueType::F64 => WasmValue::F64(0.0),
            ValueType::FuncRef => WasmValue::FuncRef(None),
            ValueType::ExternRef => WasmValue::ExternRef(None),
        }
    }

    /// The value type of this value.
    pub fn value_type(&self) -> ValueType {
        match self {
            WasmValue::I32(_) => ValueType::I32,
            WasmValue::I64(_) => ValueType::I64,
            WasmValue::F32(_) => ValueType::F32,
            WasmValue::F64(_) => ValueType::F64,
            WasmValue::FuncRef(_) => ValueType::FuncRef,
            WasmValue::ExternRef(_) => ValueType::ExternRef,
        }
    }

    /// The tag of this value.
    pub fn tag(&self) -> ValueTag {
        ValueTag::for_type(self.value_type())
    }

    /// The raw 64-bit slot encoding of this value.
    pub fn to_bits(&self) -> u64 {
        match *self {
            WasmValue::I32(v) => v as u32 as u64,
            WasmValue::I64(v) => v as u64,
            WasmValue::F32(v) => v.to_bits() as u64,
            WasmValue::F64(v) => v.to_bits(),
            WasmValue::FuncRef(r) | WasmValue::ExternRef(r) => match r {
                Some(i) => i as u64,
                None => NULL_REF_BITS,
            },
        }
    }

    /// Reconstructs a value from its slot bits and tag.
    pub fn from_bits(bits: u64, tag: ValueTag) -> WasmValue {
        match tag {
            ValueTag::I32 => WasmValue::I32(bits as u32 as i32),
            ValueTag::I64 | ValueTag::Dead => WasmValue::I64(bits as i64),
            ValueTag::F32 => WasmValue::F32(f32::from_bits(bits as u32)),
            ValueTag::F64 => WasmValue::F64(f64::from_bits(bits)),
            ValueTag::FuncRef => WasmValue::FuncRef(decode_ref(bits)),
            ValueTag::Ref => WasmValue::ExternRef(decode_ref(bits)),
        }
    }

    /// Returns the i32 payload.
    ///
    /// # Panics
    ///
    /// Panics if this is not an `I32`.
    pub fn unwrap_i32(&self) -> i32 {
        match self {
            WasmValue::I32(v) => *v,
            other => panic!("expected i32, found {other:?}"),
        }
    }

    /// Returns the i64 payload.
    ///
    /// # Panics
    ///
    /// Panics if this is not an `I64`.
    pub fn unwrap_i64(&self) -> i64 {
        match self {
            WasmValue::I64(v) => *v,
            other => panic!("expected i64, found {other:?}"),
        }
    }

    /// Returns the f32 payload.
    ///
    /// # Panics
    ///
    /// Panics if this is not an `F32`.
    pub fn unwrap_f32(&self) -> f32 {
        match self {
            WasmValue::F32(v) => *v,
            other => panic!("expected f32, found {other:?}"),
        }
    }

    /// Returns the f64 payload.
    ///
    /// # Panics
    ///
    /// Panics if this is not an `F64`.
    pub fn unwrap_f64(&self) -> f64 {
        match self {
            WasmValue::F64(v) => *v,
            other => panic!("expected f64, found {other:?}"),
        }
    }
}

fn decode_ref(bits: u64) -> Option<u32> {
    if bits == NULL_REF_BITS {
        None
    } else {
        Some(bits as u32)
    }
}

impl fmt::Display for WasmValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WasmValue::I32(v) => write!(f, "{v}:i32"),
            WasmValue::I64(v) => write!(f, "{v}:i64"),
            WasmValue::F32(v) => write!(f, "{v}:f32"),
            WasmValue::F64(v) => write!(f, "{v}:f64"),
            WasmValue::FuncRef(Some(i)) => write!(f, "funcref({i})"),
            WasmValue::FuncRef(None) => write!(f, "funcref(null)"),
            WasmValue::ExternRef(Some(i)) => write!(f, "ref({i})"),
            WasmValue::ExternRef(None) => write!(f, "ref(null)"),
        }
    }
}

/// A global variable cell: a tagged 64-bit slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlobalSlot {
    /// The raw slot bits.
    pub bits: u64,
    /// The tag describing the slot.
    pub tag: ValueTag,
}

impl GlobalSlot {
    /// Creates a global cell from a value.
    pub fn from_value(v: WasmValue) -> GlobalSlot {
        GlobalSlot {
            bits: v.to_bits(),
            tag: v.tag(),
        }
    }

    /// Reads the cell as a value.
    pub fn value(&self) -> WasmValue {
        WasmValue::from_bits(self.bits, self.tag)
    }
}

/// The explicit value stack shared by the interpreter and JIT code.
///
/// Slots are 64 bits wide; tags are stored in a parallel byte array. The
/// stack has a fixed capacity — exhausting it is a stack-overflow trap,
/// mirroring the guard page in the paper's Fig. 2.
#[derive(Debug, Clone)]
pub struct ValueStack {
    slots: Vec<u64>,
    tags: Vec<ValueTag>,
    sp: usize,
    /// Highest stack pointer ever observed. Every slot a frame can dirty
    /// lies below the frame's stack pointer, so `[0, high_water)` bounds the
    /// dirtied region and [`ValueStack::reset`] only has to scrub that
    /// prefix instead of the whole capacity — the difference between a
    /// pooled-instance reset being a small memset and a 0.5 MiB one.
    high_water: usize,
}

/// Default capacity (in slots) of a value stack.
pub const DEFAULT_VALUE_STACK_SLOTS: usize = 64 * 1024;

impl Default for ValueStack {
    fn default() -> ValueStack {
        ValueStack::with_capacity(DEFAULT_VALUE_STACK_SLOTS)
    }
}

impl ValueStack {
    /// Creates a value stack with the given slot capacity.
    pub fn with_capacity(slots: usize) -> ValueStack {
        ValueStack {
            slots: vec![0; slots],
            tags: vec![ValueTag::Dead; slots],
            sp: 0,
            high_water: 0,
        }
    }

    /// Total slot capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The current stack pointer (index of the next free slot).
    pub fn sp(&self) -> usize {
        self.sp
    }

    /// Sets the stack pointer (e.g. when pushing or popping a frame).
    pub fn set_sp(&mut self, sp: usize) {
        debug_assert!(sp <= self.capacity());
        self.sp = sp;
        if sp > self.high_water {
            self.high_water = sp;
        }
    }

    /// The highest stack pointer ever observed (the dirtied-region bound).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Returns the stack to its freshly-constructed state: `[0, high_water)`
    /// is zeroed and marked dead, and the stack pointer drops to zero. Slots
    /// above the high-water mark were never dirtied, so an instance reset
    /// pays only for the region it actually used.
    pub fn reset(&mut self) {
        let dirty = self.high_water;
        self.clear_range(0, dirty);
        self.sp = 0;
        self.high_water = 0;
    }

    /// True if pushing `extra` more slots would overflow the stack.
    pub fn would_overflow(&self, extra: usize) -> bool {
        self.sp + extra > self.capacity()
    }

    /// Reads the raw bits of a slot.
    pub fn read(&self, slot: usize) -> u64 {
        self.slots[slot]
    }

    /// Writes the raw bits of a slot without touching its tag.
    pub fn write(&mut self, slot: usize, bits: u64) {
        self.slots[slot] = bits;
    }

    /// Reads a slot's tag.
    pub fn tag(&self, slot: usize) -> ValueTag {
        self.tags[slot]
    }

    /// Writes a slot's tag.
    pub fn set_tag(&mut self, slot: usize, tag: ValueTag) {
        self.tags[slot] = tag;
    }

    /// Writes both bits and tag of a slot.
    pub fn write_tagged(&mut self, slot: usize, bits: u64, tag: ValueTag) {
        self.slots[slot] = bits;
        self.tags[slot] = tag;
    }

    /// Writes a value (bits + tag) to a slot.
    pub fn write_value(&mut self, slot: usize, v: WasmValue) {
        self.write_tagged(slot, v.to_bits(), v.tag());
    }

    /// Reads a slot as a value using its stored tag.
    pub fn read_value(&self, slot: usize) -> WasmValue {
        WasmValue::from_bits(self.slots[slot], self.tags[slot])
    }

    /// Pushes a value at the stack pointer.
    ///
    /// # Panics
    ///
    /// Panics if the stack is full; callers are expected to check frame sizes
    /// up front (the engine turns that check into a stack-overflow trap).
    pub fn push(&mut self, v: WasmValue) {
        let slot = self.sp;
        self.write_value(slot, v);
        self.sp += 1;
        if self.sp > self.high_water {
            self.high_water = self.sp;
        }
    }

    /// Pops the top value.
    ///
    /// # Panics
    ///
    /// Panics if the stack is empty.
    pub fn pop(&mut self) -> WasmValue {
        assert!(self.sp > 0, "value stack underflow");
        self.sp -= 1;
        self.read_value(self.sp)
    }

    /// Marks a range of slots dead (used when popping frames so stale
    /// references do not keep host objects alive).
    pub fn clear_range(&mut self, start: usize, end: usize) {
        for slot in start..end {
            self.slots[slot] = 0;
            self.tags[slot] = ValueTag::Dead;
        }
    }

    /// Iterates over the live region `[0, sp)` yielding `(slot, bits, tag)`.
    /// This is what tag-based GC root scanning walks.
    pub fn iter_live(&self) -> impl Iterator<Item = (usize, u64, ValueTag)> + '_ {
        (0..self.sp).map(move |i| (i, self.slots[i], self.tags[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_type_correspondence() {
        for t in ValueType::ALL {
            let tag = ValueTag::for_type(t);
            assert_eq!(ValueTag::from_byte(tag as u8), Some(tag));
        }
        assert!(ValueTag::Ref.is_gc_root());
        assert!(!ValueTag::I64.is_gc_root());
        assert!(!ValueTag::FuncRef.is_gc_root());
        assert_eq!(ValueTag::from_byte(200), None);
    }

    #[test]
    fn value_bits_roundtrip() {
        let cases = [
            WasmValue::I32(-7),
            WasmValue::I32(i32::MIN),
            WasmValue::I64(i64::MAX),
            WasmValue::F32(3.25),
            WasmValue::F64(-0.0),
            WasmValue::FuncRef(Some(12)),
            WasmValue::FuncRef(None),
            WasmValue::ExternRef(Some(0)),
            WasmValue::ExternRef(None),
        ];
        for v in cases {
            let bits = v.to_bits();
            let back = WasmValue::from_bits(bits, v.tag());
            assert_eq!(back, v, "{v}");
        }
    }

    #[test]
    fn nan_bits_preserved() {
        let v = WasmValue::F64(f64::from_bits(0x7FF8_0000_0000_1234));
        let back = WasmValue::from_bits(v.to_bits(), ValueTag::F64);
        assert_eq!(back.to_bits(), v.to_bits());
    }

    #[test]
    fn default_values() {
        assert_eq!(WasmValue::default_for(ValueType::I32), WasmValue::I32(0));
        assert_eq!(
            WasmValue::default_for(ValueType::ExternRef),
            WasmValue::ExternRef(None)
        );
        assert_eq!(WasmValue::default_for(ValueType::F64), WasmValue::F64(0.0));
    }

    #[test]
    fn unwrap_accessors() {
        assert_eq!(WasmValue::I32(3).unwrap_i32(), 3);
        assert_eq!(WasmValue::I64(-3).unwrap_i64(), -3);
        assert_eq!(WasmValue::F32(1.5).unwrap_f32(), 1.5);
        assert_eq!(WasmValue::F64(2.5).unwrap_f64(), 2.5);
    }

    #[test]
    #[should_panic(expected = "expected i32")]
    fn unwrap_wrong_kind_panics() {
        WasmValue::F64(1.0).unwrap_i32();
    }

    #[test]
    fn value_stack_push_pop() {
        let mut vs = ValueStack::with_capacity(16);
        assert_eq!(vs.sp(), 0);
        vs.push(WasmValue::I32(1));
        vs.push(WasmValue::F64(2.5));
        vs.push(WasmValue::ExternRef(Some(9)));
        assert_eq!(vs.sp(), 3);
        assert_eq!(vs.pop(), WasmValue::ExternRef(Some(9)));
        assert_eq!(vs.pop(), WasmValue::F64(2.5));
        assert_eq!(vs.pop(), WasmValue::I32(1));
        assert_eq!(vs.sp(), 0);
    }

    #[test]
    fn value_stack_slot_access_and_tags() {
        let mut vs = ValueStack::with_capacity(8);
        vs.set_sp(4);
        vs.write_tagged(2, 42, ValueTag::I64);
        assert_eq!(vs.read(2), 42);
        assert_eq!(vs.tag(2), ValueTag::I64);
        vs.write(2, 43);
        assert_eq!(vs.read(2), 43);
        assert_eq!(vs.tag(2), ValueTag::I64, "raw write must not change tag");
        vs.set_tag(2, ValueTag::Ref);
        assert_eq!(vs.read_value(2), WasmValue::ExternRef(Some(43)));
    }

    #[test]
    fn value_stack_live_iteration_and_clear() {
        let mut vs = ValueStack::with_capacity(8);
        vs.push(WasmValue::I32(1));
        vs.push(WasmValue::ExternRef(Some(5)));
        vs.push(WasmValue::ExternRef(None));
        let roots: Vec<_> = vs
            .iter_live()
            .filter(|(_, bits, tag)| tag.is_gc_root() && *bits != NULL_REF_BITS)
            .collect();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].0, 1);

        vs.clear_range(0, 3);
        assert!(vs.iter_live().all(|(_, _, tag)| tag == ValueTag::Dead));
    }

    #[test]
    fn value_stack_overflow_detection() {
        let mut vs = ValueStack::with_capacity(4);
        assert!(!vs.would_overflow(4));
        assert!(vs.would_overflow(5));
        vs.set_sp(3);
        assert!(vs.would_overflow(2));
        assert!(!vs.would_overflow(1));
    }

    #[test]
    fn global_slot_roundtrip() {
        let g = GlobalSlot::from_value(WasmValue::F32(9.5));
        assert_eq!(g.value(), WasmValue::F32(9.5));
        assert_eq!(g.tag, ValueTag::F32);
    }

    #[test]
    fn reset_scrubs_only_the_high_water_region() {
        let mut vs = ValueStack::with_capacity(16);
        vs.push(WasmValue::I64(-1));
        vs.push(WasmValue::ExternRef(Some(3)));
        vs.set_sp(8);
        vs.write_tagged(7, 0xDEAD, ValueTag::I32);
        assert_eq!(vs.high_water(), 8);
        // Popping frames does not lower the high-water mark.
        vs.set_sp(1);
        assert_eq!(vs.high_water(), 8);
        vs.reset();
        assert_eq!(vs.sp(), 0);
        assert_eq!(vs.high_water(), 0);
        for slot in 0..vs.capacity() {
            assert_eq!(vs.read(slot), 0, "slot {slot} bits survived reset");
            assert_eq!(vs.tag(slot), ValueTag::Dead, "slot {slot} tag survived reset");
        }
    }
}
