//! The assembler and finished code buffers.
//!
//! A single-pass compiler emits code strictly forward, so the assembler has
//! to handle *forward references*: a branch to a label that has not yet been
//! bound (e.g. the end of a block). Labels are patched when bound, exactly as
//! real baseline compilers patch relative displacements.
//!
//! The assembler also records a *source map* from emitted instruction indices
//! back to Wasm bytecode offsets. That map is what lets the engine recompute
//! the bytecode-level program counter from a machine-code location for
//! stack traces, instrumentation, and tier-down (deopt), per Section IV-B of
//! the paper.

use crate::inst::{Label, MachInst};
use std::fmt;

/// A finished, immutable sequence of machine instructions plus metadata.
///
/// Equality compares everything — instructions, label targets, source map,
/// and size — so two buffers are `==` exactly when they are byte-identical
/// artifacts; the parallel compile pipeline's determinism tests rely on this.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CodeBuffer {
    insts: Vec<MachInst>,
    label_targets: Vec<usize>,
    source_map: Vec<(usize, u32)>,
    code_size: usize,
}

impl CodeBuffer {
    /// Rebuilds a code buffer from raw parts. Used by post-passes (e.g. the
    /// optimizing tier's slot promotion) that rewrite instruction sequences
    /// and must remap label targets and source-map entries themselves.
    ///
    /// In debug builds this validates the remapping instead of silently
    /// accepting a corrupt rewrite: every label target and source-map
    /// instruction index must be in bounds (a label may target one past the
    /// end, i.e. the function's end), and the source map must stay sorted by
    /// instruction index so [`CodeBuffer::source_offset`]'s binary search
    /// remains correct.
    pub fn from_raw_parts(
        insts: Vec<MachInst>,
        label_targets: Vec<usize>,
        source_map: Vec<(usize, u32)>,
    ) -> CodeBuffer {
        #[cfg(debug_assertions)]
        {
            for (label, &target) in label_targets.iter().enumerate() {
                debug_assert!(
                    target <= insts.len(),
                    "label L{label} targets instruction {target}, past the end ({})",
                    insts.len()
                );
            }
            for pair in source_map.windows(2) {
                debug_assert!(
                    pair[0].0 <= pair[1].0,
                    "source map must be sorted by instruction index: {:?} before {:?}",
                    pair[0],
                    pair[1]
                );
            }
            if let Some(&(index, _)) = source_map.last() {
                debug_assert!(
                    index <= insts.len(),
                    "source-map entry at instruction {index} is past the end ({})",
                    insts.len()
                );
            }
        }
        let code_size = insts.iter().map(|i| i.encoded_size()).sum();
        CodeBuffer {
            insts,
            label_targets,
            source_map,
            code_size,
        }
    }

    /// The resolved label targets (instruction indices), indexed by label id.
    pub fn label_targets(&self) -> &[usize] {
        &self.label_targets
    }

    /// The instructions in emission order.
    pub fn insts(&self) -> &[MachInst] {
        &self.insts
    }

    /// The number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the buffer contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The estimated encoded size of the code in bytes.
    pub fn code_size(&self) -> usize {
        self.code_size
    }

    /// Resolves a label to its instruction index.
    ///
    /// # Panics
    ///
    /// Panics if the label was never bound (the assembler checks this at
    /// `finish` time, so it cannot happen for buffers it produced).
    pub fn target(&self, label: Label) -> usize {
        self.label_targets[label.0 as usize]
    }

    /// The (instruction index, bytecode offset) source map, sorted by
    /// instruction index.
    pub fn source_map(&self) -> &[(usize, u32)] {
        &self.source_map
    }

    /// Recomputes the Wasm bytecode offset for a machine instruction index,
    /// i.e. the paper's "current program counter can be recomputed from the
    /// machine code instruction pointer".
    pub fn source_offset(&self, inst_index: usize) -> Option<u32> {
        match self
            .source_map
            .binary_search_by_key(&inst_index, |&(i, _)| i)
        {
            Ok(i) => Some(self.source_map[i].1),
            Err(0) => None,
            Err(i) => Some(self.source_map[i - 1].1),
        }
    }

    /// Renders the code as a human-readable listing with label markers.
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        for (index, inst) in self.insts.iter().enumerate() {
            for (label, &target) in self.label_targets.iter().enumerate() {
                if target == index {
                    out.push_str(&format!("{}:\n", Label(label as u32)));
                }
            }
            out.push_str(&format!("  {index:4}  {inst}\n"));
        }
        out
    }
}

impl fmt::Display for CodeBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.disassemble())
    }
}

/// An append-only assembler for the virtual target ISA.
#[derive(Debug, Clone, Default)]
pub struct Assembler {
    insts: Vec<MachInst>,
    labels: Vec<Option<usize>>,
    source_map: Vec<(usize, u32)>,
    code_size: usize,
}

impl Assembler {
    /// Creates an empty assembler.
    pub fn new() -> Assembler {
        Assembler::default()
    }

    /// The index the next emitted instruction will have.
    pub fn here(&self) -> usize {
        self.insts.len()
    }

    /// The number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The estimated encoded size so far, in bytes.
    pub fn code_size(&self) -> usize {
        self.code_size
    }

    /// Emits one instruction and returns its index.
    pub fn emit(&mut self, inst: MachInst) -> usize {
        self.code_size += inst.encoded_size();
        let index = self.insts.len();
        self.insts.push(inst);
        index
    }

    /// Allocates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        let label = Label(self.labels.len() as u32);
        self.labels.push(None);
        label
    }

    /// Allocates a label already bound to the current position.
    pub fn new_bound_label(&mut self) -> Label {
        let label = self.new_label();
        self.bind(label);
        label
    }

    /// Binds a label to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.labels[label.0 as usize];
        assert!(slot.is_none(), "label {label} bound twice");
        *slot = Some(self.insts.len());
    }

    /// True if the label has been bound.
    pub fn is_bound(&self, label: Label) -> bool {
        self.labels[label.0 as usize].is_some()
    }

    /// Records that instructions emitted from here on originate from the Wasm
    /// bytecode offset `offset`.
    pub fn mark_source(&mut self, offset: u32) {
        crate::masm::push_source_mark(&mut self.source_map, self.insts.len(), offset);
    }

    /// Finishes assembly, resolving all labels.
    ///
    /// # Panics
    ///
    /// Panics if any allocated label was never bound; a compiler bug.
    pub fn finish(self) -> CodeBuffer {
        let label_targets = self
            .labels
            .iter()
            .enumerate()
            .map(|(i, t)| t.unwrap_or_else(|| panic!("label L{i} was never bound")))
            .collect();
        CodeBuffer {
            insts: self.insts,
            label_targets,
            source_map: self.source_map,
            code_size: self.code_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::TrapCode;
    use crate::reg::Reg;

    #[test]
    fn emit_and_finish() {
        let mut asm = Assembler::new();
        assert!(asm.is_empty());
        asm.emit(MachInst::MovImm { dst: Reg(0), imm: 1 });
        asm.emit(MachInst::Return);
        assert_eq!(asm.len(), 2);
        assert!(asm.code_size() > 0);
        let code = asm.finish();
        assert_eq!(code.len(), 2);
        assert!(!code.is_empty());
        assert_eq!(code.code_size(), code.insts().iter().map(|i| i.encoded_size()).sum());
    }

    #[test]
    fn forward_label_resolution() {
        let mut asm = Assembler::new();
        let skip = asm.new_label();
        assert!(!asm.is_bound(skip));
        asm.emit(MachInst::BrIf { cond: Reg(0), target: skip, negate: false });
        asm.emit(MachInst::Trap { code: TrapCode::Unreachable });
        asm.bind(skip);
        assert!(asm.is_bound(skip));
        asm.emit(MachInst::Return);
        let code = asm.finish();
        assert_eq!(code.target(skip), 2);
    }

    #[test]
    fn backward_label_resolution() {
        let mut asm = Assembler::new();
        let top = asm.new_bound_label();
        asm.emit(MachInst::Nop);
        asm.emit(MachInst::Jump { target: top });
        let code = asm.finish();
        assert_eq!(code.target(top), 0);
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics_at_finish() {
        let mut asm = Assembler::new();
        let l = asm.new_label();
        asm.emit(MachInst::Jump { target: l });
        let _ = asm.finish();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut asm = Assembler::new();
        let l = asm.new_label();
        asm.bind(l);
        asm.bind(l);
    }

    #[test]
    fn source_map_lookup() {
        let mut asm = Assembler::new();
        asm.mark_source(0);
        asm.emit(MachInst::Nop); // inst 0 <- offset 0
        asm.mark_source(2);
        asm.emit(MachInst::Nop); // inst 1 <- offset 2
        asm.emit(MachInst::Nop); // inst 2 <- offset 2 (same bytecode)
        asm.mark_source(5);
        asm.emit(MachInst::Return); // inst 3 <- offset 5
        let code = asm.finish();
        assert_eq!(code.source_offset(0), Some(0));
        assert_eq!(code.source_offset(1), Some(2));
        assert_eq!(code.source_offset(2), Some(2));
        assert_eq!(code.source_offset(3), Some(5));
        assert_eq!(code.source_offset(99), Some(5));
    }

    #[test]
    fn mark_source_collapses_empty_ranges() {
        let mut asm = Assembler::new();
        asm.mark_source(0);
        asm.mark_source(3);
        asm.emit(MachInst::Nop);
        let code = asm.finish();
        assert_eq!(code.source_map(), &[(0, 3)]);
        assert_eq!(code.source_offset(0), Some(3));
    }

    #[test]
    fn from_raw_parts_accepts_valid_rewrites() {
        let insts = vec![MachInst::Nop, MachInst::Return];
        // A label may target one past the end (the function end).
        let code = CodeBuffer::from_raw_parts(insts, vec![0, 2], vec![(0, 0), (1, 4)]);
        assert_eq!(code.target(Label(1)), 2);
        assert_eq!(code.source_offset(1), Some(4));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "past the end")]
    fn from_raw_parts_rejects_out_of_bounds_labels() {
        let _ = CodeBuffer::from_raw_parts(vec![MachInst::Return], vec![5], vec![]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "sorted by instruction index")]
    fn from_raw_parts_rejects_unsorted_source_map() {
        let _ = CodeBuffer::from_raw_parts(
            vec![MachInst::Nop, MachInst::Return],
            vec![],
            vec![(1, 0), (0, 2)],
        );
    }

    #[test]
    fn disassembly_contains_labels_and_instructions() {
        let mut asm = Assembler::new();
        let l = asm.new_label();
        asm.emit(MachInst::Jump { target: l });
        asm.bind(l);
        asm.emit(MachInst::Return);
        let code = asm.finish();
        let text = code.disassemble();
        assert!(text.contains("L0:"));
        assert!(text.contains("jmp L0"));
        assert!(text.contains("ret"));
        assert_eq!(code.to_string(), text);
    }
}
