//! The multi-tier WebAssembly engine tying the reproduction together.
//!
//! An [`Engine`] is created from an [`EngineConfig`] naming its execution
//! tier(s): the in-place interpreter, the single-pass baseline compiler (in
//! any of the paper's configurations or the six production design profiles),
//! the optimizing tier, or a tiered combination with hotness-based tier-up.
//! Instantiating a module produces an [`Instance`] holding the shared tagged
//! value stack, linear memory, globals, tables, the host GC [`gc::Heap`],
//! attached [`monitor::Instrumentation`], and [`RunMetrics`] recording setup
//! time, compile time, and executed cycles — the raw measurements behind the
//! paper's figures. The immutable side of an instance — module, validation
//! output, sidetables, and compiled code — lives in a shared
//! [`pipeline::CompiledModule`] artifact: eager compilation can shard across
//! worker threads ([`EngineConfig::compile_workers`]), tier-up can run on a
//! [`pipeline::BackgroundCompiler`] while the interpreter keeps executing,
//! and a [`cache::CodeCache`] lets repeated instantiations of the same
//! module skip compilation entirely.
//!
//! # Examples
//!
//! ```
//! use engine::{Engine, EngineConfig, Imports, Instrumentation};
//! use machine::values::WasmValue;
//! use wasm::builder::{CodeBuilder, ModuleBuilder};
//! use wasm::opcode::Opcode;
//! use wasm::types::{FuncType, ValueType};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = ModuleBuilder::new();
//! let mut code = CodeBuilder::new();
//! code.local_get(0).local_get(1).op(Opcode::I32Add);
//! let add = b.add_func(
//!     FuncType::new(vec![ValueType::I32, ValueType::I32], vec![ValueType::I32]),
//!     vec![],
//!     code.finish(),
//! );
//! b.export_func("add", add);
//! let module = b.finish();
//!
//! let engine = Engine::new(EngineConfig::default());
//! let mut instance = engine.instantiate(&module, Imports::new(), Instrumentation::none())?;
//! let result = engine.call_export(&mut instance, "add", &[WasmValue::I32(2), WasmValue::I32(40)])?;
//! assert_eq!(result, vec![WasmValue::I32(42)]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod engine;
pub mod gc;
pub mod image;
pub mod monitor;
pub mod multi;
pub mod pipeline;
pub mod pool;
pub mod trap;

pub use cache::{CacheKey, CacheStats, CodeCache};
pub use config::{EngineConfig, ResourceLimits, TierPolicy};
pub use machine::masm::CodeBackend;
pub use engine::{Engine, EngineError, HostFunc, Imports, Instance, RunMetrics};
pub use gc::{Heap, HostObject};
pub use image::MemoryImage;
pub use monitor::{BranchMonitor, BranchProfile, Instrumentation};
pub use multi::MultiEngine;
pub use pipeline::{BackgroundCompiler, CompileTier, CompiledArtifact, CompiledModule};
pub use pool::{InstancePool, PoolStats, PooledInstance};
pub use telemetry::Telemetry;
pub use trap::{Backtrace, Frame, FrameTierTag, TrapInfo, TrapReason};
