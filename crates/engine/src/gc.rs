//! The host garbage collector and root scanning.
//!
//! Wasm code can hold references to host objects (`externref`). The engine
//! must find every live reference when collecting; the paper contrasts two
//! strategies for locating roots in execution frames:
//!
//! * **value tags** — scan the value stack and treat every slot whose dynamic
//!   tag says "reference" as a root (Wizard's choice);
//! * **stackmaps** — consult per-call-site metadata emitted by the compiler
//!   describing which frame slots hold references.
//!
//! Both are implemented here and verified against each other by tests.

use machine::values::{ValueStack, ValueTag, NULL_REF_BITS};
use spc::CompiledFunction;
use std::collections::HashSet;

/// A host object living in the GC heap.
#[derive(Debug, Clone, PartialEq)]
pub struct HostObject {
    /// An arbitrary payload so tests can identify objects.
    pub payload: u64,
    /// References from this object to other heap objects (for transitive
    /// marking).
    pub children: Vec<u32>,
    marked: bool,
}

/// A simple mark-sweep heap of host objects addressed by `u32` handles.
#[derive(Debug, Clone, Default)]
pub struct Heap {
    objects: Vec<Option<HostObject>>,
    live: usize,
    threshold: usize,
    collections: u64,
    total_freed: u64,
}

impl Heap {
    /// Creates an empty heap that requests collection after `threshold` live
    /// objects.
    pub fn with_threshold(threshold: usize) -> Heap {
        Heap {
            threshold,
            ..Heap::default()
        }
    }

    /// Allocates an object and returns its handle.
    pub fn alloc(&mut self, payload: u64) -> u32 {
        self.alloc_with_children(payload, Vec::new())
    }

    /// Allocates an object with outgoing references.
    pub fn alloc_with_children(&mut self, payload: u64, children: Vec<u32>) -> u32 {
        let obj = HostObject {
            payload,
            children,
            marked: false,
        };
        self.live += 1;
        for (i, slot) in self.objects.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(obj);
                return i as u32;
            }
        }
        self.objects.push(Some(obj));
        (self.objects.len() - 1) as u32
    }

    /// Reads an object by handle.
    pub fn get(&self, handle: u32) -> Option<&HostObject> {
        self.objects.get(handle as usize).and_then(|o| o.as_ref())
    }

    /// True if the handle refers to a live object.
    pub fn is_live(&self, handle: u32) -> bool {
        self.get(handle).is_some()
    }

    /// The number of live objects.
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// The number of collections performed so far.
    pub fn collections(&self) -> u64 {
        self.collections
    }

    /// Total objects freed over the heap's lifetime.
    pub fn total_freed(&self) -> u64 {
        self.total_freed
    }

    /// True if a collection should be triggered at the next safe point.
    pub fn should_collect(&self) -> bool {
        self.threshold > 0 && self.live >= self.threshold
    }

    /// Mark-sweep collection from the given roots. Returns the number of
    /// objects freed.
    pub fn collect(&mut self, roots: &[u32]) -> usize {
        for obj in self.objects.iter_mut().flatten() {
            obj.marked = false;
        }
        // Mark.
        let mut worklist: Vec<u32> = roots.to_vec();
        while let Some(handle) = worklist.pop() {
            let children = match self.objects.get_mut(handle as usize).and_then(|o| o.as_mut()) {
                Some(obj) if !obj.marked => {
                    obj.marked = true;
                    obj.children.clone()
                }
                _ => continue,
            };
            worklist.extend(children);
        }
        // Sweep.
        let mut freed = 0;
        for slot in &mut self.objects {
            if let Some(obj) = slot {
                if !obj.marked {
                    *slot = None;
                    freed += 1;
                }
            }
        }
        self.live -= freed;
        self.total_freed += freed as u64;
        self.collections += 1;
        freed
    }
}

/// Scans the live region of the value stack for reference roots using value
/// tags (Wizard's strategy). Invalid or null handles are ignored.
pub fn scan_roots_via_tags(values: &ValueStack) -> Vec<u32> {
    let mut roots = Vec::new();
    let mut seen = HashSet::new();
    for (_, bits, tag) in values.iter_live() {
        if tag == ValueTag::Ref && bits != NULL_REF_BITS {
            let handle = bits as u32;
            if seen.insert(handle) {
                roots.push(handle);
            }
        }
    }
    roots
}

/// A frame of JIT code paused at a call site, for stackmap-based scanning.
#[derive(Debug, Clone, Copy)]
pub struct StackmapFrame<'a> {
    /// The compiled function executing in this frame.
    pub compiled: &'a CompiledFunction,
    /// The frame's base slot in the value stack.
    pub frame_base: usize,
    /// The instruction index of the call the frame is paused at.
    pub call_inst_index: usize,
}

/// Scans roots using the per-call-site stackmaps of paused JIT frames
/// (the strategy of v8-liftoff and sm-base).
pub fn scan_roots_via_stackmaps(values: &ValueStack, frames: &[StackmapFrame<'_>]) -> Vec<u32> {
    let mut roots = Vec::new();
    let mut seen = HashSet::new();
    for frame in frames {
        if let Some(map) = frame.compiled.stackmaps.lookup(frame.call_inst_index) {
            for &slot in &map.ref_slots {
                let bits = values.read(frame.frame_base + slot as usize);
                if bits != NULL_REF_BITS {
                    let handle = bits as u32;
                    if seen.insert(handle) {
                        roots.push(handle);
                    }
                }
            }
        }
    }
    roots
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::values::WasmValue;

    #[test]
    fn alloc_and_collect_unreachable() {
        let mut heap = Heap::with_threshold(100);
        let a = heap.alloc(1);
        let b = heap.alloc(2);
        let c = heap.alloc_with_children(3, vec![a]);
        assert_eq!(heap.live_count(), 3);

        // Only `c` is a root; it keeps `a` alive transitively, `b` dies.
        let freed = heap.collect(&[c]);
        assert_eq!(freed, 1);
        assert!(heap.is_live(a));
        assert!(!heap.is_live(b));
        assert!(heap.is_live(c));
        assert_eq!(heap.get(a).unwrap().payload, 1);
        assert_eq!(heap.collections(), 1);
        assert_eq!(heap.total_freed(), 1);
    }

    #[test]
    fn handles_are_reused_after_collection() {
        let mut heap = Heap::with_threshold(0);
        let a = heap.alloc(1);
        heap.collect(&[]);
        assert!(!heap.is_live(a));
        let b = heap.alloc(2);
        assert_eq!(a, b, "freed slot is reused");
        assert_eq!(heap.live_count(), 1);
    }

    #[test]
    fn collection_threshold() {
        let mut heap = Heap::with_threshold(2);
        assert!(!heap.should_collect());
        heap.alloc(1);
        assert!(!heap.should_collect());
        heap.alloc(2);
        assert!(heap.should_collect());
        let h = Heap::with_threshold(0);
        assert!(!h.should_collect(), "zero threshold disables auto collection");
    }

    #[test]
    fn cyclic_references_are_collected_together() {
        let mut heap = Heap::with_threshold(100);
        let a = heap.alloc(1);
        let b = heap.alloc_with_children(2, vec![a]);
        // Make a cycle: a -> b as well.
        if let Some(slot) = heap.objects.get_mut(a as usize).and_then(|o| o.as_mut()) {
            slot.children.push(b);
        }
        let freed = heap.collect(&[a]);
        assert_eq!(freed, 0, "cycle reachable from a root survives");
        let freed = heap.collect(&[]);
        assert_eq!(freed, 2, "unreachable cycle is collected");
    }

    #[test]
    fn tag_scanning_finds_refs_and_ignores_nulls() {
        let mut vs = ValueStack::with_capacity(16);
        vs.push(WasmValue::I32(5));
        vs.push(WasmValue::ExternRef(Some(7)));
        vs.push(WasmValue::ExternRef(None));
        vs.push(WasmValue::I64(7)); // same bits as the handle but not a ref
        vs.push(WasmValue::ExternRef(Some(7))); // duplicate handle
        vs.push(WasmValue::FuncRef(Some(3))); // funcref is not a GC root
        let roots = scan_roots_via_tags(&vs);
        assert_eq!(roots, vec![7]);
    }

    #[test]
    fn invalid_handles_do_not_break_collection() {
        let mut heap = Heap::with_threshold(100);
        let a = heap.alloc(1);
        let freed = heap.collect(&[a, 999]);
        assert_eq!(freed, 0);
        assert!(heap.is_live(a));
    }
}
