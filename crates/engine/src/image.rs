//! Pre-initialized instance state: build once, restore by memcpy.
//!
//! Instantiation spends its time in two places: compilation (already amortized
//! by the [`crate::CodeCache`]) and *state initialization* — evaluating global
//! initializers, allocating linear memory and tables, and bounds-checking and
//! copying every data and element segment. A serving workload that
//! instantiates the same module thousands of times per second re-runs that
//! initialization with identical inputs and identical results every time.
//!
//! A [`MemoryImage`] is the snapshot that breaks the cycle. [`MemoryImage::build`]
//! performs the full initialization once (this is also the code path cold
//! instantiation uses — there is exactly one implementation of segment
//! initialization and its error paths). [`MemoryImage::capture`] snapshots a
//! live instance's mutable state after instantiation, and
//! [`MemoryImage::restore_into`] rewinds an instance to that snapshot with a
//! `resize` (usually a no-op) plus a `memcpy` per memory/table — no
//! validation, no constant evaluation, no per-segment bounds checks.
//!
//! The [`crate::pool::InstancePool`] composes this with the code cache: a warm
//! checkout is "reset the pooled instance from the image", which the
//! pool-reset differential tests prove equivalent to a fresh cold
//! instantiation, traps included.

use crate::config::ResourceLimits;
use crate::engine::EngineError;
use machine::memory::{LinearMemory, Table};
use machine::values::{GlobalSlot, WasmValue};
use wasm::module::{ConstExpr, Module};
use wasm::types::Limits;

/// Clamps a module-declared limit against an optional tenant ceiling: a
/// declared minimum above the ceiling fails instantiation, and the effective
/// maximum becomes the smaller of the declared maximum and the ceiling.
fn clamp_limits(declared: Limits, ceiling: Option<u32>, what: &str) -> Result<Limits, EngineError> {
    let Some(cap) = ceiling else {
        return Ok(declared);
    };
    if declared.min > cap {
        return Err(EngineError::Instantiate(format!(
            "declared {what} minimum ({}) exceeds the tenant limit ({cap})",
            declared.min
        )));
    }
    Ok(Limits {
        min: declared.min,
        max: Some(declared.max.map_or(cap, |m| m.min(cap))),
    })
}

/// Evaluates a constant expression against the globals initialized so far.
pub(crate) fn eval_const(expr: &ConstExpr, globals: &[GlobalSlot]) -> WasmValue {
    match *expr {
        ConstExpr::I32(v) => WasmValue::I32(v),
        ConstExpr::I64(v) => WasmValue::I64(v),
        ConstExpr::F32(v) => WasmValue::F32(v),
        ConstExpr::F64(v) => WasmValue::F64(v),
        ConstExpr::RefNull(t) => WasmValue::default_for(t),
        ConstExpr::RefFunc(f) => WasmValue::FuncRef(Some(f)),
        ConstExpr::GlobalGet(i) => globals
            .get(i as usize)
            .map(|g| g.value())
            .unwrap_or(WasmValue::I32(0)),
    }
}

/// The shared shape of the two segment kinds' failure modes, so data and
/// element segments report errors through one path instead of two
/// hand-rolled `format!` blocks.
fn segment_error(kind: &str, index: usize, problem: &str) -> EngineError {
    EngineError::Instantiate(format!("{kind} segment {index} {problem}"))
}

/// A snapshot of the mutable state instantiation produces: initialized
/// linear memory, globals, and tables.
///
/// Built from a module ([`MemoryImage::build`]) or captured from a live
/// instance ([`MemoryImage::capture`]); restored into an instance in place
/// ([`MemoryImage::restore_into`]).
#[derive(Debug, Clone)]
pub struct MemoryImage {
    memory: Option<LinearMemory>,
    globals: Vec<GlobalSlot>,
    tables: Vec<Table>,
}

impl MemoryImage {
    /// Runs the full state-initialization half of instantiation: evaluates
    /// global initializers, allocates the (tenant-clamped) memory and
    /// tables, and applies every data and element segment with bounds
    /// checks.
    ///
    /// # Errors
    ///
    /// Returns an error if a declared minimum exceeds a tenant ceiling, a
    /// segment falls out of bounds, a data segment targets a module without
    /// memory, or an element segment names a missing table.
    pub fn build(module: &Module, limits: &ResourceLimits) -> Result<MemoryImage, EngineError> {
        let mut memory = match (0..module.num_memories())
            .next()
            .and_then(|i| module.memory_type(i))
        {
            Some(m) => Some(LinearMemory::new(clamp_limits(
                m.limits,
                limits.memory_pages,
                "memory pages",
            )?)),
            None => None,
        };

        let mut globals: Vec<GlobalSlot> = Vec::new();
        for i in 0..module.num_globals() {
            let ty = module
                .global_type(i)
                .ok_or_else(|| EngineError::Instantiate("unknown global".to_string()))?;
            let defined = i.checked_sub(module.num_imported_globals());
            let value = match defined.and_then(|d| module.globals.get(d as usize)) {
                Some(g) => eval_const(&g.init, &globals),
                None => WasmValue::default_for(ty.value_type),
            };
            globals.push(GlobalSlot::from_value(value));
        }

        let mut tables: Vec<Table> = Vec::new();
        for t in (0..module.num_tables()).filter_map(|i| module.table_type(i)) {
            tables.push(Table::new(clamp_limits(
                t.limits,
                limits.table_elements,
                "table elements",
            )?));
        }

        for (i, d) in module.data.iter().enumerate() {
            let offset = eval_const(&d.offset, &globals).unwrap_i32() as u32;
            let mem = memory
                .as_mut()
                .ok_or_else(|| segment_error("data", i, "targets a module without memory"))?;
            mem.init(offset, &d.bytes)
                .map_err(|_| segment_error("data", i, "out of bounds"))?;
        }
        for (i, e) in module.elems.iter().enumerate() {
            let offset = eval_const(&e.offset, &globals).unwrap_i32() as u32;
            let table = tables
                .get_mut(e.table_index as usize)
                .ok_or_else(|| segment_error("element", i, "has no table"))?;
            table
                .init(offset, &e.func_indices)
                .map_err(|_| segment_error("element", i, "out of bounds"))?;
        }
        Ok(MemoryImage {
            memory,
            globals,
            tables,
        })
    }

    /// Snapshots a live instance's mutable state (memory contents, global
    /// values, table entries) as an image to restore later.
    pub fn capture(
        memory: Option<&LinearMemory>,
        globals: &[GlobalSlot],
        tables: &[Table],
    ) -> MemoryImage {
        MemoryImage {
            memory: memory.cloned(),
            globals: globals.to_vec(),
            tables: tables.to_vec(),
        }
    }

    /// Rewinds instance state to this image in place, reusing existing
    /// allocations: memory and tables are `resize` + `memcpy`, globals are a
    /// slice copy. This is the warm-instantiation fast path.
    pub fn restore_into(
        &self,
        memory: &mut Option<LinearMemory>,
        globals: &mut Vec<GlobalSlot>,
        tables: &mut Vec<Table>,
    ) {
        match (memory.as_mut(), &self.memory) {
            (Some(dst), Some(src)) => dst.reset_from(src),
            (None, None) => {}
            // Shape mismatches only happen when restoring across modules;
            // fall back to a clone so the result is still the image.
            _ => *memory = self.memory.clone(),
        }
        if globals.len() == self.globals.len() {
            globals.copy_from_slice(&self.globals);
        } else {
            globals.clone_from(&self.globals);
        }
        if tables.len() == self.tables.len() {
            for (dst, src) in tables.iter_mut().zip(&self.tables) {
                dst.reset_from(src);
            }
        } else {
            tables.clone_from(&self.tables);
        }
    }

    /// Consumes the image into its parts, in instance-field order. Cold
    /// instantiation builds an image and moves the parts straight into the
    /// new instance.
    pub fn into_parts(self) -> (Option<LinearMemory>, Vec<GlobalSlot>, Vec<Table>) {
        (self.memory, self.globals, self.tables)
    }

    /// The snapshot's linear memory, if the module declares one.
    pub fn memory(&self) -> Option<&LinearMemory> {
        self.memory.as_ref()
    }

    /// The snapshot's global values.
    pub fn globals(&self) -> &[GlobalSlot] {
        &self.globals
    }

    /// The snapshot's tables.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasm::builder::{CodeBuilder, ModuleBuilder};
    use wasm::types::{FuncType, GlobalType, Limits, ValueType};

    /// A module with one page of memory, a data segment, a mutable global,
    /// and a table with one element pointing at `main`.
    fn imaged_module() -> Module {
        let mut b = ModuleBuilder::new();
        b.add_memory(Limits::bounded(1, 4));
        b.add_data(0, ConstExpr::I32(0), vec![0x01, 0x02, 0x03, 0x04]);
        b.add_global(
            GlobalType {
                value_type: ValueType::I32,
                mutable: true,
            },
            ConstExpr::I32(41),
        );
        let mut c = CodeBuilder::new();
        c.i32_const(7);
        let f = b.add_func(FuncType::new(vec![], vec![ValueType::I32]), vec![], c.finish());
        b.add_table(ValueType::FuncRef, Limits::bounded(2, 2));
        b.add_elem(0, ConstExpr::I32(0), vec![f]);
        b.export_func("main", f);
        b.finish()
    }

    #[test]
    fn build_initializes_memory_globals_tables() {
        let module = imaged_module();
        let image = MemoryImage::build(&module, &ResourceLimits::unlimited()).unwrap();
        let mem = image.memory().expect("module declares memory");
        assert_eq!(mem.load(0, 0, 4).unwrap(), 0x04030201, "data segment applied");
        assert_eq!(image.globals().len(), 1);
        assert_eq!(image.globals()[0].value(), WasmValue::I32(41));
        assert_eq!(image.tables().len(), 1);
        assert_eq!(image.tables()[0].get(0).unwrap(), Some(0), "element segment applied");
        assert_eq!(image.tables()[0].get(1).unwrap(), None);
    }

    #[test]
    fn build_reports_segment_errors_through_one_path() {
        // Data segment past the end of the single page.
        let mut b = ModuleBuilder::new();
        b.add_memory(Limits::at_least(1));
        b.add_data(0, ConstExpr::I32(65_535), vec![0xAA, 0xBB]);
        let err = MemoryImage::build(&b.finish(), &ResourceLimits::unlimited()).unwrap_err();
        assert!(err.to_string().contains("data segment 0 out of bounds"), "{err}");

        // Data segment with no memory at all.
        let mut b = ModuleBuilder::new();
        b.add_data(0, ConstExpr::I32(0), vec![0xAA]);
        let err = MemoryImage::build(&b.finish(), &ResourceLimits::unlimited()).unwrap_err();
        assert!(
            err.to_string().contains("data segment 0 targets a module without memory"),
            "{err}"
        );

        // Tenant ceiling below the declared minimum.
        let mut b = ModuleBuilder::new();
        b.add_memory(Limits::at_least(8));
        let limits = ResourceLimits {
            memory_pages: Some(2),
            table_elements: None,
            call_depth: None,
        };
        let err = MemoryImage::build(&b.finish(), &limits).unwrap_err();
        assert!(err.to_string().contains("exceeds the tenant limit"), "{err}");
    }

    #[test]
    fn capture_restore_round_trips_dirty_state() {
        let module = imaged_module();
        let image = MemoryImage::build(&module, &ResourceLimits::unlimited()).unwrap();
        let (mut memory, mut globals, mut tables) = image.clone().into_parts();

        // Dirty everything an execution could touch.
        memory.as_mut().unwrap().store(16, 0, 8, u64::MAX).unwrap();
        memory.as_mut().unwrap().grow(2);
        globals[0] = GlobalSlot::from_value(WasmValue::I32(-5));
        tables[0].set(1, Some(0)).unwrap();

        image.restore_into(&mut memory, &mut globals, &mut tables);
        let mem = memory.as_ref().unwrap();
        assert_eq!(mem.bytes(), image.memory().unwrap().bytes());
        assert_eq!(mem.size_pages(), 1, "growth rolled back");
        assert_eq!(globals[0].value(), WasmValue::I32(41));
        assert_eq!(tables[0].get(1).unwrap(), None);
    }

    #[test]
    fn restore_into_handles_shape_mismatches_by_cloning() {
        let module = imaged_module();
        let image = MemoryImage::build(&module, &ResourceLimits::unlimited()).unwrap();
        let mut memory = None;
        let mut globals = Vec::new();
        let mut tables = Vec::new();
        image.restore_into(&mut memory, &mut globals, &mut tables);
        assert_eq!(memory.unwrap().bytes(), image.memory().unwrap().bytes());
        assert_eq!(globals.len(), 1);
        assert_eq!(tables.len(), 1);
    }
}
