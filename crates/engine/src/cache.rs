//! The keyed code cache: share compiled modules across instantiations.
//!
//! The serve-many-requests scenario instantiates the same module over and
//! over — exactly the workload where recompiling (or even revalidating) per
//! instance is pure waste. A [`CodeCache`] maps a [`CacheKey`] to the shared
//! [`CompiledModule`] artifact, so a warm instantiation skips validation,
//! preparation, and compilation entirely and only builds the instance's
//! mutable runtime state.
//!
//! The key covers every input that affects emitted code:
//!
//! * the module's *content* ([`Module::content_hash`] — stable FNV-1a over
//!   the binary encoding, so it is independent of how the in-memory value
//!   was produced);
//! * a fingerprint of the compiler-relevant configuration
//!   ([`EngineConfig::compile_fingerprint`] — tier policy and every
//!   [`CompilerOptions`](spc::CompilerOptions) axis, but *not* labels like
//!   the configuration name or execution-only knobs like the cost model);
//! * the code [`CodeBackend`];
//! * a fingerprint of the attached instrumentation
//!   ([`Instrumentation::fingerprint`]), because probes are baked into
//!   generated code.
//!
//! A warm instantiation still pays O(module size) to compute the content
//! hash — `Module`'s fields are public and mutable, so memoizing the hash
//! inside the module would go stale (and silently poison the cache) if a
//! caller mutated it after hashing. Hashing is far cheaper than the
//! validation + preparation + compilation a hit skips; a serving loop that
//! wants to shave it too can compute a [`CacheKey`] once (its fields are
//! public) and keep its own `CacheKey → Arc<CompiledModule>` map next to
//! the instance state.

use crate::config::EngineConfig;
use crate::monitor::Instrumentation;
use crate::pipeline::CompiledModule;
use machine::masm::CodeBackend;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use wasm::module::Module;

/// The lookup key of one cached [`CompiledModule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`Module::content_hash`] of the module.
    pub content_hash: u64,
    /// [`EngineConfig::compile_fingerprint`] of the configuration.
    pub options_fingerprint: u64,
    /// The macro-assembler backend code is emitted through.
    pub backend: CodeBackend,
    /// [`Instrumentation::fingerprint`] of the attached instrumentation.
    pub instrumentation_fingerprint: u64,
    /// [`EngineConfig::opt_fingerprint`] — the optimizing-tier axis. `0`
    /// for configurations without an optimizing tier, the optimizing
    /// pipeline's fingerprint otherwise, so baseline-only and opt-enabled
    /// artifacts never alias.
    pub opt_fingerprint: u64,
}

impl CacheKey {
    /// Computes the key for instantiating `module` under `config` with
    /// `instrumentation` attached.
    pub fn for_instantiation(
        config: &EngineConfig,
        module: &Module,
        instrumentation: &Instrumentation,
    ) -> CacheKey {
        CacheKey {
            content_hash: module.content_hash(),
            options_fingerprint: config.compile_fingerprint(),
            backend: config.backend,
            instrumentation_fingerprint: instrumentation.fingerprint(),
            opt_fingerprint: config.opt_fingerprint(),
        }
    }
}

/// A point-in-time snapshot of a [`CodeCache`]'s observable state, cheap to
/// embed in per-instance metrics so serving harnesses can report cache
/// behavior without holding a handle to the cache itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Cached artifacts.
    pub entries: u64,
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Machine-code bytes resident across all entries, counting every
    /// published tier. Grows as lazy/tier-up compilations publish into
    /// cached artifacts, so two snapshots bracket the code produced between
    /// them.
    pub resident_machine_bytes: u64,
}

/// A thread-safe map from [`CacheKey`] to the shared compiled-module
/// artifact, with hit/miss counters.
///
/// The cache holds [`Arc`]s, so entries stay alive while any instance uses
/// them; lazily-compiled functions published into a cached artifact are
/// visible to every past and future instantiation sharing it.
#[derive(Debug, Default)]
pub struct CodeCache {
    entries: Mutex<HashMap<CacheKey, Arc<CompiledModule>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CodeCache {
    /// Creates an empty cache.
    pub fn new() -> CodeCache {
        CodeCache::default()
    }

    /// Looks up a key, counting the outcome as a hit or miss.
    pub fn lookup(&self, key: &CacheKey) -> Option<Arc<CompiledModule>> {
        let entries = self.entries.lock().expect("code cache poisoned");
        match entries.get(key) {
            Some(artifact) => {
                self.hits.fetch_add(1, Ordering::SeqCst);
                Some(Arc::clone(artifact))
            }
            None => {
                self.misses.fetch_add(1, Ordering::SeqCst);
                None
            }
        }
    }

    /// Inserts (or replaces) the artifact for a key.
    pub fn insert(&self, key: CacheKey, artifact: Arc<CompiledModule>) {
        self.entries
            .lock()
            .expect("code cache poisoned")
            .insert(key, artifact);
    }

    /// The number of cached artifacts.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("code cache poisoned").len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::SeqCst)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::SeqCst)
    }

    /// Drops every cached artifact (counters are preserved).
    pub fn clear(&self) {
        self.entries.lock().expect("code cache poisoned").clear();
    }

    /// Machine-code bytes resident across all cached artifacts (every
    /// published tier of every entry). Computed on demand: artifacts gain
    /// code as lazy and tier-up compilations publish, so a stored total
    /// would go stale.
    pub fn resident_machine_bytes(&self) -> u64 {
        self.entries
            .lock()
            .expect("code cache poisoned")
            .values()
            .map(|artifact| artifact.machine_bytes())
            .sum()
    }

    /// Snapshots entries, hit/miss counters, and resident code size at once.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.len() as u64,
            hits: self.hits(),
            misses: self.misses(),
            resident_machine_bytes: self.resident_machine_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::masm::CodeBackend;
    use spc::{CompilerOptions, TagStrategy};
    use wasm::builder::{CodeBuilder, ModuleBuilder};
    use wasm::types::FuncType;

    fn module(body_const: i32) -> Module {
        let mut b = ModuleBuilder::new();
        let mut c = CodeBuilder::new();
        // A conditional branch so the branch monitor attaches a probe.
        c.block(wasm::BlockType::Empty)
            .i32_const(body_const)
            .br_if(0)
            .end()
            .i32_const(body_const);
        let f = b.add_func(
            FuncType::new(vec![], vec![wasm::ValueType::I32]),
            vec![],
            c.finish(),
        );
        b.export_func("main", f);
        b.finish()
    }

    #[test]
    fn key_separates_every_axis() {
        let m1 = module(1);
        let base = EngineConfig::baseline("a", CompilerOptions::allopt());
        let key = |config: &EngineConfig, m: &Module| {
            CacheKey::for_instantiation(config, m, &Instrumentation::none())
        };
        let k = key(&base, &m1);
        assert_eq!(k, key(&base, &m1), "keys are deterministic");
        // Same semantics, different label: the key must not change.
        let renamed = EngineConfig::baseline("b", CompilerOptions::allopt());
        assert_eq!(k, key(&renamed, &m1), "configuration names are not semantic");
        // Different module content.
        assert_ne!(k, key(&base, &module(2)));
        // Different compiler options.
        let notags = EngineConfig::baseline(
            "a",
            CompilerOptions::with_tagging(TagStrategy::None, "notags"),
        );
        assert_ne!(k, key(&notags, &m1));
        // Different backend.
        let x64 = base.clone().with_backend(CodeBackend::X64);
        assert_ne!(k, key(&x64, &m1));
        // The optimizing tier is its own key axis.
        let opt = base.clone().with_opt_tier(4);
        assert_ne!(k, key(&opt, &m1), "opt-enabled artifacts never alias baseline ones");
        // Different instrumentation.
        let probed = CacheKey::for_instantiation(&base, &m1, &Instrumentation::branch_monitor(&m1));
        assert_ne!(k, probed);
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let cache = CodeCache::new();
        let m = module(3);
        let config = EngineConfig::default();
        let key = CacheKey::for_instantiation(&config, &m, &Instrumentation::none());
        assert!(cache.lookup(&key).is_none());
        assert!(cache.is_empty());
        let artifact = Arc::new(CompiledModule::build(m).unwrap());
        cache.insert(key, Arc::clone(&artifact));
        assert_eq!(cache.len(), 1);
        let found = cache.lookup(&key).expect("cached");
        assert!(Arc::ptr_eq(&found, &artifact), "the artifact itself is shared");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        cache.clear();
        assert!(cache.lookup(&key).is_none());
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
    }
}
