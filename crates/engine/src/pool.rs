//! Instance pooling: recycle instances through snapshot resets.
//!
//! A serving workload instantiates the same module for every request. With a
//! [`CodeCache`](crate::CodeCache) the *code* side of that is already free,
//! but each instantiation still rebuilds the mutable state — re-evaluating
//! global initializers and bounds-checking every data and element segment. An
//! [`InstancePool`] removes that too: it instantiates once, captures the
//! post-instantiation state as a [`MemoryImage`], and thereafter hands out
//! recycled instances rewound to that image by `memcpy`
//! ([`Instance::reset_from_image`]).
//!
//! The checkout path is deliberately *reset-on-checkout*, not
//! reset-on-checkin: a finished request checks its instance back in as-is
//! (dirty memory, half-consumed fuel, a trapped stack — whatever the request
//! left behind), and the next checkout pays the memcpy. That keeps checkin
//! O(1) on the request's critical path and means an instance abandoned
//! mid-trap (say, [`OutOfFuel`](machine::inst::TrapCode::OutOfFuel) with
//! scribbled-on memory) needs no special handling — the reset scrubs it like
//! any other.
//!
//! What a reset deliberately *keeps* is tier warmth: call counts,
//! instrumentation data, and published compiled code survive, so a pooled
//! instance that tiered up stays tiered up. Tier choice never changes
//! results — the conformance matrix's core invariant — and the pool-reset
//! differential tests re-prove it by diffing recycled instances against cold
//! ones across every configuration.
//!
//! The pool assumes instantiation is deterministic: the image captured from
//! the first instantiation must equal what a fresh instantiation would
//! produce. That holds for any module whose start function is deterministic
//! (host imports that scribble request-specific state into memory during
//! the start function would break it, and such a module should not be
//! pooled).

use crate::engine::{Engine, EngineError, Imports, Instance};
use crate::image::MemoryImage;
use crate::monitor::Instrumentation;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use telemetry::EventKind;
use wasm::module::Module;

/// Builds the imports for one instantiation. [`Imports`] itself is not
/// `Clone` (host functions are boxed closures), so the pool re-invokes this
/// factory whenever it has to fall back to a cold instantiation.
pub type ImportsFactory = Box<dyn Fn() -> Imports + Send + Sync>;

/// A point-in-time snapshot of an [`InstancePool`]'s counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Instances currently parked in the pool.
    pub idle: u64,
    /// Checkouts served by resetting a recycled instance (memcpy path).
    pub warm_checkouts: u64,
    /// Checkouts that had to instantiate from scratch (pool was empty).
    pub cold_checkouts: u64,
}

/// A pool of recycled [`Instance`]s of one module under one [`Engine`],
/// warm-instantiated by snapshot reset.
///
/// Construction performs the one cold instantiation, captures its
/// [`MemoryImage`], and parks the instance. [`InstancePool::checkout`] then
/// serves requests: pop + reset when an idle instance exists, cold
/// instantiate when the pool is empty (concurrency above the idle count).
/// Checked-out instances ride in a [`PooledInstance`] guard that returns
/// them on drop; at most `max_idle` are retained.
pub struct InstancePool {
    engine: Engine,
    module: Module,
    imports: ImportsFactory,
    image: MemoryImage,
    idle: Mutex<Vec<Instance>>,
    max_idle: usize,
    warm_checkouts: AtomicU64,
    cold_checkouts: AtomicU64,
    /// Label carried on this pool's telemetry events (the serving layer
    /// sets it to the app index).
    label: AtomicU32,
}

impl fmt::Debug for InstancePool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InstancePool")
            .field("max_idle", &self.max_idle)
            .field("stats", &self.stats())
            .finish()
    }
}

impl InstancePool {
    /// Creates a pool for a module with no imports, retaining at most
    /// `max_idle` parked instances. Performs the first (cold) instantiation
    /// eagerly so construction surfaces instantiation errors and the
    /// snapshot image exists before the first checkout.
    pub fn new(
        engine: Engine,
        module: Module,
        max_idle: usize,
    ) -> Result<Arc<InstancePool>, EngineError> {
        InstancePool::with_imports(engine, module, Box::new(Imports::new), max_idle)
    }

    /// Like [`InstancePool::new`], but instantiating with imports built by
    /// `imports` (re-invoked per cold instantiation).
    pub fn with_imports(
        engine: Engine,
        module: Module,
        imports: ImportsFactory,
        max_idle: usize,
    ) -> Result<Arc<InstancePool>, EngineError> {
        let first = engine.instantiate(&module, imports(), Instrumentation::none())?;
        let image = first.capture_image();
        Ok(Arc::new(InstancePool {
            engine,
            module,
            imports,
            image,
            idle: Mutex::new(vec![first]),
            max_idle: max_idle.max(1),
            warm_checkouts: AtomicU64::new(0),
            cold_checkouts: AtomicU64::new(0),
            label: AtomicU32::new(0),
        }))
    }

    /// Sets the label carried on this pool's telemetry events (serving
    /// layers use the app index).
    pub fn set_label(&self, label: u32) {
        self.label.store(label, Ordering::Relaxed);
    }

    /// The engine instances in this pool execute under.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The snapshot image warm checkouts reset to.
    pub fn image(&self) -> &MemoryImage {
        &self.image
    }

    /// Checks out an instance: warm (pop a recycled instance and rewind it
    /// to the snapshot image) when one is parked, cold (full instantiation)
    /// otherwise. The returned guard checks the instance back in on drop.
    pub fn checkout(self: &Arc<Self>) -> Result<PooledInstance, EngineError> {
        let recycled = self.idle.lock().expect("instance pool poisoned").pop();
        let (instance, warm) = match recycled {
            Some(mut instance) => {
                instance.reset_from_image(&self.image, self.engine.config().gc_threshold);
                self.warm_checkouts.fetch_add(1, Ordering::SeqCst);
                (instance, true)
            }
            None => {
                self.cold_checkouts.fetch_add(1, Ordering::SeqCst);
                let instance = self.engine.instantiate(
                    &self.module,
                    (self.imports)(),
                    Instrumentation::none(),
                )?;
                (instance, false)
            }
        };
        let telemetry = self.engine.telemetry();
        if telemetry.is_enabled() {
            let app = self.label.load(Ordering::Relaxed);
            telemetry.emit(EventKind::PoolCheckout { app, warm });
            if let Some(metrics) = telemetry.metrics() {
                metrics
                    .counter(if warm { "pool.warm_checkouts" } else { "pool.cold_checkouts" })
                    .inc();
            }
        }
        Ok(PooledInstance {
            instance: Some(instance),
            pool: Arc::clone(self),
            warm,
        })
    }

    /// Parks an instance as-is (no reset — the next checkout pays it), or
    /// drops it if `max_idle` are already parked.
    fn checkin(&self, instance: Instance) {
        let mut idle = self.idle.lock().expect("instance pool poisoned");
        if idle.len() < self.max_idle {
            idle.push(instance);
        }
    }

    /// Snapshots the pool's counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            idle: self.idle.lock().expect("instance pool poisoned").len() as u64,
            warm_checkouts: self.warm_checkouts.load(Ordering::SeqCst),
            cold_checkouts: self.cold_checkouts.load(Ordering::SeqCst),
        }
    }
}

/// A checked-out instance that returns itself to the pool when dropped.
/// Dereferences to [`Instance`], so callers arm fuel/deadlines and invoke
/// exports exactly as on an owned instance.
pub struct PooledInstance {
    instance: Option<Instance>,
    pool: Arc<InstancePool>,
    warm: bool,
}

impl PooledInstance {
    /// True if this checkout was served by snapshot reset rather than a
    /// full instantiation.
    pub fn was_warm(&self) -> bool {
        self.warm
    }

    /// The engine this instance executes under (shorthand for keeping the
    /// pool handle around just to call exports).
    pub fn engine(&self) -> &Engine {
        self.pool.engine()
    }
}

impl fmt::Debug for PooledInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PooledInstance")
            .field("warm", &self.warm)
            .field("instance", &self.instance)
            .finish()
    }
}

impl Deref for PooledInstance {
    type Target = Instance;
    fn deref(&self) -> &Instance {
        self.instance.as_ref().expect("instance present until drop")
    }
}

impl DerefMut for PooledInstance {
    fn deref_mut(&mut self) -> &mut Instance {
        self.instance.as_mut().expect("instance present until drop")
    }
}

impl Drop for PooledInstance {
    fn drop(&mut self) {
        if let Some(instance) = self.instance.take() {
            self.pool.checkin(instance);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use machine::values::WasmValue;
    use wasm::builder::{CodeBuilder, ModuleBuilder};
    use wasm::module::ConstExpr;
    use wasm::opcode::Opcode;
    use wasm::types::{FuncType, GlobalType, Limits, ValueType};

    /// A module whose `bump` export increments `mem[0]` and a mutable
    /// global, returning the new memory counter — so recycled state is
    /// observable if a reset ever fails to scrub it.
    fn counter_module() -> Module {
        let mut b = ModuleBuilder::new();
        b.add_memory(Limits::bounded(1, 2));
        b.add_global(GlobalType::mutable(ValueType::I32), ConstExpr::I32(100));
        let mut c = CodeBuilder::new();
        c.i32_const(0)
            .i32_const(0)
            .mem(Opcode::I32Load, 2, 0)
            .i32_const(1)
            .op(Opcode::I32Add)
            .mem(Opcode::I32Store, 2, 0)
            .global_get(0)
            .i32_const(1)
            .op(Opcode::I32Add)
            .global_set(0)
            .i32_const(0)
            .mem(Opcode::I32Load, 2, 0);
        let f = b.add_func(
            FuncType::new(vec![], vec![ValueType::I32]),
            vec![],
            c.finish(),
        );
        b.export_func("bump", f);
        b.finish()
    }

    fn bump(pool: &Arc<InstancePool>, instance: &mut PooledInstance) -> Vec<WasmValue> {
        pool.engine()
            .call_export(&mut *instance, "bump", &[])
            .expect("bump runs")
    }

    #[test]
    fn warm_checkout_rewinds_to_the_snapshot() {
        let pool = InstancePool::new(Engine::new(EngineConfig::default()), counter_module(), 4)
            .expect("pool builds");
        // First checkout recycles the construction-time instance: warm.
        let mut a = pool.checkout().unwrap();
        assert!(a.was_warm());
        assert_eq!(bump(&pool, &mut a), vec![WasmValue::I32(1)]);
        assert_eq!(
            bump(&pool, &mut a),
            vec![WasmValue::I32(2)],
            "state persists within a checkout"
        );
        assert_eq!(a.global_value(0), Some(WasmValue::I32(102)));
        drop(a);
        // The recycled instance comes back rewound: counter restarts at 1.
        let mut b = pool.checkout().unwrap();
        assert!(b.was_warm());
        assert_eq!(b.global_value(0), Some(WasmValue::I32(100)), "global rewound");
        assert_eq!(bump(&pool, &mut b), vec![WasmValue::I32(1)], "memory rewound");
    }

    #[test]
    fn empty_pool_falls_back_to_cold_instantiation() {
        let pool = InstancePool::new(Engine::new(EngineConfig::default()), counter_module(), 8)
            .expect("pool builds");
        let a = pool.checkout().unwrap();
        let b = pool.checkout().unwrap();
        assert!(a.was_warm(), "construction parks one instance");
        assert!(!b.was_warm(), "second concurrent checkout is cold");
        let stats = pool.stats();
        assert_eq!((stats.warm_checkouts, stats.cold_checkouts, stats.idle), (1, 1, 0));
        drop(a);
        drop(b);
        assert_eq!(pool.stats().idle, 2, "both instances parked on drop");
        let c = pool.checkout().unwrap();
        assert!(c.was_warm());
    }

    #[test]
    fn max_idle_caps_retained_instances() {
        let pool = InstancePool::new(Engine::new(EngineConfig::default()), counter_module(), 1)
            .expect("pool builds");
        let a = pool.checkout().unwrap();
        let b = pool.checkout().unwrap();
        drop(a);
        drop(b);
        assert_eq!(pool.stats().idle, 1, "overflow instance dropped, not parked");
    }
}
