//! The compilation pipeline: shared compiled-module artifacts, parallel
//! eager compilation, and background (off-thread) tier-up.
//!
//! The paper's central observation is that single-pass baseline compilation
//! is cheap, *per-function-independent* work. This module exploits that
//! independence the way production engines do:
//!
//! * [`CompiledModule`] is the immutable compilation artifact of one module
//!   under one engine configuration — validation output, per-function
//!   sidetables, and one atomically-published code slot per defined
//!   function. It is `Send + Sync` and held by every [`Instance`] behind an
//!   [`Arc`], so any number of instances (and threads) share one copy of the
//!   compiled code. The mutable runtime state (value stack, memory, globals,
//!   heap, metrics) stays in the instance.
//! * [`compile_eager`] shards instantiate-time compilation across a
//!   configurable worker pool ([`EngineConfig::compile_workers`]). Each
//!   function's compilation reads only immutable inputs, so the output is
//!   byte-identical to the serial path at any worker count (differentially
//!   tested in `tests/parallel_determinism.rs`).
//! * [`BackgroundCompiler`] is a persistent worker pool for tier-up and lazy
//!   compilation: the engine enqueues a function, keeps interpreting, and
//!   the finished code is published into the shared artifact's
//!   [`OnceLock`] slot. Because every call boundary is already a tier
//!   boundary in this engine, publication needs no code patching — the next
//!   activation of the function simply observes the filled slot and runs the
//!   JIT code.
//!
//! [`Instance`]: crate::engine::Instance
//! [`EngineConfig::compile_workers`]: crate::config::EngineConfig

use crate::config::{EngineConfig, TierPolicy};
use crate::engine::EngineError;
use interp::interp::{prepare, PreparedFunction};
use interp::profile::FuncProfile;
use machine::masm::CodeBackend;
use machine::x64_masm::{X64Code, X64Masm};
use spc::{CompileError, CompiledFunction, ProbeSites, SinglePassCompiler};
use std::fmt;
use telemetry::{EventKind, Telemetry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};
use wasm::module::Module;
use wasm::validate::{validate, FuncInfo, ModuleInfo};

use crate::monitor::Instrumentation;

/// The finished compilation of one function plus the bookkeeping the engine
/// publishes alongside it.
#[derive(Debug, Clone)]
pub struct CompiledArtifact {
    /// The executable virtual-ISA code and its engine metadata.
    pub function: CompiledFunction,
    /// Machine-code size in bytes as measured by the configured backend
    /// (real encodings under [`CodeBackend::X64`], the virtual ISA's
    /// per-instruction estimate otherwise).
    pub machine_bytes: u64,
    /// Wall-clock time this function took to compile, wherever the
    /// compilation ran (instantiate-time worker, background worker, or the
    /// execution thread on a lazy first call).
    pub compile_wall: Duration,
    /// The real x86-64 encoding of the function, kept when the configuration
    /// selects [`CodeBackend::X64`] so code-size metrics and determinism
    /// tests can inspect actual bytes.
    pub x64_code: Option<X64Code>,
}

/// One per-function publication slot: empty until the first compilation of
/// the function completes, then filled exactly once for the artifact's
/// lifetime.
type Slot = OnceLock<CompiledArtifact>;

/// Which compiler produces a compilation artifact. Each tier has its own
/// publication slot per function, so a module can hold baseline and
/// optimized code side by side and the engine picks per activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompileTier {
    /// The single-pass baseline compiler.
    Baseline,
    /// The SSA-based optimizing compiler (`crates/optc`).
    Opt,
}

/// The tier eager (instantiate-time) compilation fills under `config`.
pub fn eager_tier(config: &EngineConfig) -> CompileTier {
    match config.tier {
        TierPolicy::OptimizingOnly => CompileTier::Opt,
        _ => CompileTier::Baseline,
    }
}

/// The immutable, shareable compilation artifact of one module: everything
/// about a module that does not change as instances run.
///
/// Construction validates the module and prepares every defined function
/// (sidetables, frame metadata). Code slots start empty and are filled by
/// eager, lazy, or background compilation; publication is atomic and
/// idempotent (first writer wins — and every writer produces identical
/// bytes, since compilation is a pure function of the slot's immutable
/// inputs).
pub struct CompiledModule {
    module: Module,
    info: ModuleInfo,
    prepared: Vec<PreparedFunction>,
    slots: Vec<Slot>,
    opt_slots: Vec<Slot>,
}

impl fmt::Debug for CompiledModule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledModule")
            .field("funcs", &self.slots.len())
            .field("compiled", &self.compiled_count())
            .field("opt_compiled", &self.opt_compiled_count())
            .finish()
    }
}

impl CompiledModule {
    /// Validates `module` and prepares every defined function, producing an
    /// artifact with all code slots empty.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Validate`] if validation fails and
    /// [`EngineError::Instantiate`] if sidetable preparation fails.
    pub fn build(module: Module) -> Result<CompiledModule, EngineError> {
        let info = validate(&module).map_err(EngineError::Validate)?;
        let mut prepared = Vec::with_capacity(module.funcs.len());
        for defined in 0..module.funcs.len() as u32 {
            let func_index = module.defined_to_func_index(defined);
            let p = prepare(&module, func_index, &info.funcs[defined as usize])
                .map_err(|e| EngineError::Instantiate(format!("prepare failed: {e}")))?;
            prepared.push(p);
        }
        let slots = (0..module.funcs.len()).map(|_| Slot::new()).collect();
        let opt_slots = (0..module.funcs.len()).map(|_| Slot::new()).collect();
        Ok(CompiledModule {
            module,
            info,
            prepared,
            slots,
            opt_slots,
        })
    }

    /// The module this artifact was compiled from.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The validation output for the whole module.
    pub fn info(&self) -> &ModuleInfo {
        &self.info
    }

    /// The validation metadata of one defined function.
    pub fn func_info(&self, defined: u32) -> &FuncInfo {
        &self.info.funcs[defined as usize]
    }

    /// The prepared (sidetable + frame layout) form of one defined function.
    pub fn prepared(&self, defined: u32) -> &PreparedFunction {
        &self.prepared[defined as usize]
    }

    /// The number of defined functions.
    pub fn num_defined(&self) -> u32 {
        self.slots.len() as u32
    }

    fn slots_for(&self, tier: CompileTier) -> &[Slot] {
        match tier {
            CompileTier::Baseline => &self.slots,
            CompileTier::Opt => &self.opt_slots,
        }
    }

    /// The published baseline artifact of a defined function, if compiled.
    pub fn artifact(&self, defined: u32) -> Option<&CompiledArtifact> {
        self.artifact_for(defined, CompileTier::Baseline)
    }

    /// The published artifact of a defined function in `tier`, if compiled.
    pub fn artifact_for(&self, defined: u32, tier: CompileTier) -> Option<&CompiledArtifact> {
        self.slots_for(tier).get(defined as usize)?.get()
    }

    /// The published executable baseline code of a defined function.
    pub fn code(&self, defined: u32) -> Option<&CompiledFunction> {
        self.artifact(defined).map(|a| &a.function)
    }

    /// The published executable code of a defined function in `tier`.
    pub fn code_for(&self, defined: u32, tier: CompileTier) -> Option<&CompiledFunction> {
        self.artifact_for(defined, tier).map(|a| &a.function)
    }

    /// Atomically publishes a baseline compilation of `defined`. Returns
    /// `true` if this call installed the artifact and `false` if another
    /// compilation won the race (the artifact is dropped; both are
    /// byte-identical).
    pub fn publish(&self, defined: u32, artifact: CompiledArtifact) -> bool {
        self.publish_for(defined, CompileTier::Baseline, artifact)
    }

    /// Atomically publishes a compilation of `defined` in `tier`. First
    /// writer wins; for the optimizing tier, racing artifacts may differ in
    /// block layout (profiles are per-instance) but never in semantics.
    pub fn publish_for(&self, defined: u32, tier: CompileTier, artifact: CompiledArtifact) -> bool {
        self.slots_for(tier)[defined as usize].set(artifact).is_ok()
    }

    /// How many defined functions have published code in any tier.
    pub fn compiled_count(&self) -> usize {
        self.slots
            .iter()
            .zip(&self.opt_slots)
            .filter(|(b, o)| b.get().is_some() || o.get().is_some())
            .count()
    }

    /// How many defined functions have published optimizing-tier code.
    pub fn opt_compiled_count(&self) -> usize {
        self.opt_slots.iter().filter(|s| s.get().is_some()).count()
    }

    /// Total wall-clock compile time published into this artifact so far,
    /// across every thread and tier that contributed.
    pub fn total_compile_wall(&self) -> Duration {
        self.slots
            .iter()
            .chain(&self.opt_slots)
            .filter_map(|s| s.get())
            .map(|a| a.compile_wall)
            .sum()
    }

    /// Machine-code bytes published into this artifact so far, across both
    /// tiers (the per-entry term of a code cache's resident size).
    pub fn machine_bytes(&self) -> u64 {
        self.slots
            .iter()
            .chain(&self.opt_slots)
            .filter_map(|s| s.get())
            .map(|a| a.machine_bytes)
            .sum()
    }
}

/// The optimizing compiler for `config`, lowering probes the way the
/// configuration's baseline tier does so instrumentation counts stay
/// tier-independent.
fn opt_compiler(config: &EngineConfig) -> optc::OptimizingCompiler {
    let compiler = match config.baseline_options() {
        Some(options) => optc::OptimizingCompiler::new(options.probe_mode),
        None => optc::OptimizingCompiler::default(),
    };
    compiler
        .with_metering(config.metering)
        .with_osr(config.osr_threshold.is_some())
}

/// The telemetry label for a compile tier.
pub(crate) fn telemetry_tier(tier: CompileTier) -> telemetry::Tier {
    match tier {
        CompileTier::Baseline => telemetry::Tier::Baseline,
        CompileTier::Opt => telemetry::Tier::Opt,
    }
}

/// The telemetry label for a code backend.
pub(crate) fn telemetry_backend(backend: CodeBackend) -> telemetry::Backend {
    match backend {
        CodeBackend::VirtualIsa => telemetry::Backend::VirtualIsa,
        CodeBackend::X64 => telemetry::Backend::X64,
    }
}

/// [`compile_function`] wrapped in telemetry: emits `CompileStart` /
/// `CompileEnd` trace events and feeds the `compile.duration_us` histogram.
/// With a disabled handle this is exactly `compile_function` plus one
/// branch.
///
/// # Errors
///
/// Returns the compiler's error for invalid or unsupported input.
#[allow(clippy::too_many_arguments)]
pub fn compile_function_traced(
    telemetry: &Telemetry,
    config: &EngineConfig,
    tier: CompileTier,
    module: &Module,
    func_index: u32,
    info: &FuncInfo,
    probes: &ProbeSites,
    profile: Option<&FuncProfile>,
) -> Result<CompiledArtifact, CompileError> {
    if !telemetry.is_enabled() {
        return compile_function(config, tier, module, func_index, info, probes, profile);
    }
    let t_tier = telemetry_tier(tier);
    let t_backend = telemetry_backend(config.backend);
    telemetry.emit(EventKind::CompileStart { func: func_index, tier: t_tier, backend: t_backend });
    let result = compile_function(config, tier, module, func_index, info, probes, profile);
    match &result {
        Ok(compiled) => {
            let dur_us = compiled.compile_wall.as_micros() as u64;
            let wasm_bytes =
                module.func_decl(func_index).map_or(0, |decl| decl.code.len()) as u32;
            telemetry.emit(EventKind::CompileEnd {
                func: func_index,
                tier: t_tier,
                backend: t_backend,
                wasm_bytes,
                machine_bytes: compiled.machine_bytes.min(u32::MAX as u64) as u32,
                dur_us,
            });
            if let Some(metrics) = telemetry.metrics() {
                metrics.histogram("compile.duration_us").record(dur_us);
                metrics.counter("compile.functions").inc();
                metrics.counter("compile.wasm_bytes").add(wasm_bytes as u64);
                metrics.counter("compile.machine_bytes").add(compiled.machine_bytes);
            }
        }
        Err(_) => {
            if let Some(metrics) = telemetry.metrics() {
                metrics.counter("compile.errors").inc();
            }
        }
    }
    result
}

/// Compiles one defined function under `config` in `tier` — the single pure
/// step the whole pipeline is built from. Reads only immutable inputs, so it
/// can run on any thread; the result is deterministic in (module, function,
/// options, probes, backend, tier, profile). `profile` feeds the optimizing
/// tier's block layout and is ignored by the baseline tier.
///
/// # Errors
///
/// Returns the compiler's error for invalid or unsupported input.
pub fn compile_function(
    config: &EngineConfig,
    tier: CompileTier,
    module: &Module,
    func_index: u32,
    info: &FuncInfo,
    probes: &ProbeSites,
    profile: Option<&FuncProfile>,
) -> Result<CompiledArtifact, CompileError> {
    let start = Instant::now();
    let function = match tier {
        CompileTier::Opt => {
            opt_compiler(config).compile(module, func_index, info, probes, profile)?
        }
        CompileTier::Baseline => {
            let options = config.baseline_options().cloned().unwrap_or_default();
            SinglePassCompiler::new(options)
                .with_metering(config.metering)
                .with_osr(config.osr_threshold.is_some())
                .compile(module, func_index, info, probes)?
        }
    };
    // The compile-time metric covers exactly the work that produced the
    // executable artifact; the backend size probe below is measured
    // separately so an x86-64-backend run stays comparable.
    let compile_wall = start.elapsed();
    // Backend selection: with the x86-64 backend the same translation is
    // emitted again as real machine bytes, so the code-size metric reports
    // actual encodings. Execution still runs the virtual-ISA code — the
    // simulator cannot execute raw bytes. Both tiers emit through the
    // `Masm` trait, so the optimizing tier's x86-64 size is real too.
    let (machine_bytes, x64_code) = match (config.backend, tier) {
        (CodeBackend::X64, CompileTier::Baseline) => {
            let options = config.baseline_options().cloned().unwrap_or_default();
            let x64 = SinglePassCompiler::new(options)
                .with_metering(config.metering)
                .with_osr(config.osr_threshold.is_some())
                .compile_with(X64Masm::new(), module, func_index, info, probes)?;
            (x64.code.code_size() as u64, Some(x64.code))
        }
        (CodeBackend::X64, CompileTier::Opt) => {
            let x64 = opt_compiler(config).compile_with(
                X64Masm::new(),
                module,
                func_index,
                info,
                probes,
                profile,
            )?;
            (x64.code.code_size() as u64, Some(x64.code))
        }
        _ => (function.stats.code_size_bytes as u64, None),
    };
    Ok(CompiledArtifact {
        function,
        machine_bytes,
        compile_wall,
        x64_code,
    })
}

/// Compiles `defined` into its `tier` slot unless it is already published.
/// Returns whether this call published new code.
fn compile_slot(
    config: &EngineConfig,
    artifact: &CompiledModule,
    instrumentation: &Instrumentation,
    telemetry: &Telemetry,
    defined: u32,
    tier: CompileTier,
) -> Result<bool, CompileError> {
    if artifact.artifact_for(defined, tier).is_some() {
        return Ok(false);
    }
    let func_index = artifact.module().defined_to_func_index(defined);
    let probes = instrumentation.sites_for(func_index);
    let compiled = compile_function_traced(
        telemetry,
        config,
        tier,
        artifact.module(),
        func_index,
        artifact.func_info(defined),
        &probes,
        None,
    )?;
    Ok(artifact.publish_for(defined, tier, compiled))
}

/// Eagerly compiles every uncompiled function of `artifact`, sharding the
/// work across [`EngineConfig::compile_workers`] threads (worker `w` takes
/// defined indices `w, w + N, w + 2N, …`). Already-published slots — a warm
/// code-cache hit — are skipped, which is what makes repeated instantiation
/// under a shared cache compile exactly once.
///
/// Returns the defined indices this call published, in ascending order, so
/// the caller can attribute their compile time to its metrics.
///
/// # Errors
///
/// Returns the compile error of the lowest-indexed failing function — the
/// same error the serial path would report first, independent of worker
/// count.
///
/// [`EngineConfig::compile_workers`]: crate::config::EngineConfig
pub fn compile_eager(
    config: &EngineConfig,
    artifact: &CompiledModule,
    instrumentation: &Instrumentation,
    telemetry: &Telemetry,
) -> Result<Vec<u32>, CompileError> {
    let num_defined = artifact.num_defined();
    let tier = eager_tier(config);
    let workers = config
        .compile_workers
        .max(1)
        .min(num_defined.max(1) as usize);
    if workers <= 1 {
        let mut published = Vec::new();
        for defined in 0..num_defined {
            if compile_slot(config, artifact, instrumentation, telemetry, defined, tier)? {
                published.push(defined);
            }
        }
        return Ok(published);
    }
    let results: Vec<Result<Vec<u32>, (u32, CompileError)>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let mut published = Vec::new();
                    let mut defined = w as u32;
                    while defined < num_defined {
                        match compile_slot(config, artifact, instrumentation, telemetry, defined, tier)
                        {
                            Ok(true) => published.push(defined),
                            Ok(false) => {}
                            Err(e) => return Err((defined, e)),
                        }
                        defined += workers as u32;
                    }
                    Ok(published)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("compile worker panicked"))
            .collect()
    });
    let mut published = Vec::new();
    let mut first_error: Option<(u32, CompileError)> = None;
    for result in results {
        match result {
            Ok(indices) => published.extend(indices),
            Err((defined, e)) => {
                if first_error.as_ref().is_none_or(|(d, _)| defined < *d) {
                    first_error = Some((defined, e));
                }
            }
        }
    }
    if let Some((_, e)) = first_error {
        return Err(e);
    }
    published.sort_unstable();
    Ok(published)
}

/// A unit of background compilation: one function of one shared artifact.
struct CompileJob {
    artifact: Arc<CompiledModule>,
    defined: u32,
    probes: ProbeSites,
    config: EngineConfig,
    tier: CompileTier,
    /// Branch profile snapshot taken at enqueue time (optimizing tier only).
    profile: Option<FuncProfile>,
}

/// Counters shared between the pool's handle and its worker threads.
#[derive(Debug, Default)]
struct PoolCounters {
    queued: AtomicU64,
    completed: AtomicU64,
    compiled: AtomicU64,
}

/// A persistent pool of background compile workers.
///
/// The engine enqueues tier-up / lazy-compile requests here and keeps
/// executing in the interpreter; workers compile on their own threads and
/// publish results atomically into the shared [`CompiledModule`]. A failed
/// background compilation is swallowed (the counter still advances): the
/// function simply stays interpreted, which is always a correct tier.
///
/// Dropping the pool closes the queue and joins the workers.
pub struct BackgroundCompiler {
    sender: Mutex<Option<Sender<CompileJob>>>,
    workers: Vec<JoinHandle<()>>,
    counters: Arc<PoolCounters>,
}

impl fmt::Debug for BackgroundCompiler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BackgroundCompiler")
            .field("workers", &self.workers.len())
            .field("queued", &self.counters.queued.load(Ordering::SeqCst))
            .field("completed", &self.counters.completed.load(Ordering::SeqCst))
            .finish()
    }
}

impl BackgroundCompiler {
    /// Starts a pool with `workers` compile threads (at least one).
    pub fn new(workers: usize) -> BackgroundCompiler {
        BackgroundCompiler::with_telemetry(workers, Telemetry::disabled())
    }

    /// Starts a pool whose workers report compile and tier-up events into
    /// `telemetry` (each worker thread gets its own event ring).
    pub fn with_telemetry(workers: usize, telemetry: Telemetry) -> BackgroundCompiler {
        let (sender, receiver) = channel::<CompileJob>();
        let receiver = Arc::new(Mutex::new(receiver));
        let counters = Arc::new(PoolCounters::default());
        let workers = (0..workers.max(1))
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let counters = Arc::clone(&counters);
                let telemetry = telemetry.clone();
                thread::Builder::new()
                    .name(format!("bg-compile-{i}"))
                    .spawn(move || worker_loop(&receiver, &counters, &telemetry))
                    .expect("spawn background compile worker")
            })
            .collect();
        BackgroundCompiler {
            sender: Mutex::new(Some(sender)),
            workers,
            counters,
        }
    }

    /// Enqueues the baseline compilation of `defined` in `artifact`. Returns
    /// `false` if the pool has already been shut down.
    pub fn enqueue(
        &self,
        artifact: Arc<CompiledModule>,
        defined: u32,
        probes: ProbeSites,
        config: EngineConfig,
    ) -> bool {
        self.enqueue_tier(artifact, defined, probes, config, CompileTier::Baseline, None)
    }

    /// Enqueues the compilation of `defined` in `artifact` for `tier`, with
    /// an optional branch-profile snapshot for the optimizing tier. Returns
    /// `false` if the pool has already been shut down.
    pub fn enqueue_tier(
        &self,
        artifact: Arc<CompiledModule>,
        defined: u32,
        probes: ProbeSites,
        config: EngineConfig,
        tier: CompileTier,
        profile: Option<FuncProfile>,
    ) -> bool {
        let sender = self.sender.lock().expect("pool sender poisoned");
        match sender.as_ref() {
            Some(s) => {
                self.counters.queued.fetch_add(1, Ordering::SeqCst);
                s.send(CompileJob {
                    artifact,
                    defined,
                    probes,
                    config,
                    tier,
                    profile,
                })
                .is_ok()
            }
            None => false,
        }
    }

    /// Jobs enqueued over the pool's lifetime.
    pub fn jobs_queued(&self) -> u64 {
        self.counters.queued.load(Ordering::SeqCst)
    }

    /// Jobs fully processed (compiled, skipped, or failed).
    pub fn jobs_completed(&self) -> u64 {
        self.counters.completed.load(Ordering::SeqCst)
    }

    /// Functions this pool actually compiled and published (excludes jobs
    /// whose slot was already filled when the worker got to them).
    pub fn functions_compiled(&self) -> u64 {
        self.counters.compiled.load(Ordering::SeqCst)
    }

    /// Blocks until every job enqueued so far has been processed. Intended
    /// for tests and benchmarks; the engine itself never waits — that is the
    /// point of the background queue.
    pub fn wait_idle(&self) {
        while self.jobs_completed() < self.jobs_queued() {
            thread::yield_now();
            thread::sleep(Duration::from_micros(50));
        }
    }
}

impl Drop for BackgroundCompiler {
    fn drop(&mut self) {
        // Closing the channel ends every worker's receive loop.
        *self.sender.lock().expect("pool sender poisoned") = None;
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(
    receiver: &Mutex<Receiver<CompileJob>>,
    counters: &PoolCounters,
    telemetry: &Telemetry,
) {
    loop {
        // Hold the lock only to receive; compilation runs unlocked so other
        // workers can pick up jobs concurrently.
        let job = match receiver.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return,
        };
        let Ok(job) = job else { return };
        if job.artifact.artifact_for(job.defined, job.tier).is_none() {
            let func_index = job.artifact.module().defined_to_func_index(job.defined);
            let result = compile_function_traced(
                telemetry,
                &job.config,
                job.tier,
                job.artifact.module(),
                func_index,
                job.artifact.func_info(job.defined),
                &job.probes,
                job.profile.as_ref(),
            );
            if let Ok(compiled) = result {
                if job.artifact.publish_for(job.defined, job.tier, compiled) {
                    counters.compiled.fetch_add(1, Ordering::SeqCst);
                    telemetry.emit(EventKind::TierUp {
                        func: func_index,
                        tier: telemetry_tier(job.tier),
                    });
                }
            }
        }
        counters.completed.fetch_add(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spc::CompilerOptions;
    use wasm::builder::{CodeBuilder, ModuleBuilder};
    use wasm::opcode::Opcode;
    use wasm::types::{FuncType, ValueType};

    /// The artifact chain the pipeline shares across threads must be
    /// `Send + Sync`; this is the audit the subsystem's design rests on.
    #[test]
    fn artifact_chain_is_send_and_sync() {
        fn check<T: Send + Sync>() {}
        check::<Module>();
        check::<ModuleInfo>();
        check::<PreparedFunction>();
        check::<CompiledFunction>();
        check::<CompiledArtifact>();
        check::<CompiledModule>();
        check::<Arc<CompiledModule>>();
        check::<EngineConfig>();
        check::<Instrumentation>();
        check::<BackgroundCompiler>();
        check::<crate::cache::CodeCache>();
    }

    fn small_module(funcs: u32) -> Module {
        let mut b = ModuleBuilder::new();
        for i in 0..funcs {
            let mut c = CodeBuilder::new();
            c.local_get(0).i32_const(i as i32 + 1).op(Opcode::I32Add);
            b.add_func(
                FuncType::new(vec![ValueType::I32], vec![ValueType::I32]),
                vec![],
                c.finish(),
            );
        }
        b.finish()
    }

    #[test]
    fn build_prepares_every_function_with_empty_slots() {
        let artifact = CompiledModule::build(small_module(3)).unwrap();
        assert_eq!(artifact.num_defined(), 3);
        assert_eq!(artifact.compiled_count(), 0);
        assert!(artifact.code(0).is_none());
        assert_eq!(artifact.prepared(1).num_params, 1);
        assert_eq!(artifact.total_compile_wall(), Duration::ZERO);
    }

    #[test]
    fn publish_is_first_writer_wins() {
        let config = EngineConfig::baseline("t", CompilerOptions::allopt());
        let artifact = CompiledModule::build(small_module(1)).unwrap();
        let instrumentation = Instrumentation::none();
        assert!(compile_slot(&config, &artifact, &instrumentation, &Telemetry::disabled(), 0, CompileTier::Baseline).unwrap());
        assert!(
            !compile_slot(&config, &artifact, &instrumentation, &Telemetry::disabled(), 0, CompileTier::Baseline).unwrap(),
            "second compile of the same slot publishes nothing"
        );
        assert_eq!(artifact.compiled_count(), 1);
        assert!(artifact.total_compile_wall() > Duration::ZERO);
    }

    #[test]
    fn eager_compilation_is_identical_at_any_worker_count() {
        let module = small_module(7);
        let config = EngineConfig::baseline("t", CompilerOptions::allopt());
        let serial = CompiledModule::build(module.clone()).unwrap();
        let published =
            compile_eager(&config, &serial, &Instrumentation::none(), &Telemetry::disabled()).unwrap();
        assert_eq!(published, vec![0, 1, 2, 3, 4, 5, 6]);
        for workers in [2, 3, 8, 64] {
            let config = config.clone().with_compile_workers(workers);
            let parallel = CompiledModule::build(module.clone()).unwrap();
            let published =
                compile_eager(&config, &parallel, &Instrumentation::none(), &Telemetry::disabled()).unwrap();
            assert_eq!(published, vec![0, 1, 2, 3, 4, 5, 6], "{workers} workers");
            for defined in 0..7 {
                assert_eq!(
                    serial.code(defined).unwrap().code,
                    parallel.code(defined).unwrap().code,
                    "function {defined} must be byte-identical at {workers} workers"
                );
            }
        }
    }

    #[test]
    fn background_pool_compiles_and_publishes() {
        let config = EngineConfig::tiered("bg", 1, CompilerOptions::allopt());
        let artifact = Arc::new(CompiledModule::build(small_module(2)).unwrap());
        let pool = BackgroundCompiler::new(2);
        for defined in 0..2 {
            assert!(pool.enqueue(
                Arc::clone(&artifact),
                defined,
                ProbeSites::none(),
                config.clone()
            ));
        }
        pool.wait_idle();
        assert_eq!(pool.jobs_queued(), 2);
        assert_eq!(pool.jobs_completed(), 2);
        assert_eq!(pool.functions_compiled(), 2);
        assert_eq!(artifact.compiled_count(), 2);
        // Re-enqueueing an already-compiled function completes without
        // recompiling.
        assert!(pool.enqueue(artifact.clone(), 0, ProbeSites::none(), config));
        pool.wait_idle();
        assert_eq!(pool.functions_compiled(), 2);
    }
}
