//! Structured trap reasons with spec-style messages.
//!
//! The execution tiers report traps as [`TrapCode`]s — a tier-internal enum
//! shared by the interpreter and the CPU simulator so cross-tier differential
//! tests can compare exactly. [`TrapReason`] is the *engine-surface*
//! classification of those codes: each reason carries the canonical message
//! the upstream specification test suite uses in `assert_trap`, so the
//! conformance runner (and any embedder) can match on the cause of a trap
//! structurally instead of scraping `Display` strings.

use machine::inst::TrapCode;
use std::fmt;

/// Why execution trapped, in the vocabulary of the Wasm specification's
/// assertion scripts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrapReason {
    /// The `unreachable` instruction executed.
    Unreachable,
    /// A linear-memory access was out of bounds.
    OutOfBoundsMemory,
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// Signed division overflow or a float-to-int conversion out of range.
    IntegerOverflow,
    /// A float-to-int conversion of NaN.
    InvalidConversion,
    /// A `call_indirect` index outside the table.
    OutOfBoundsTable,
    /// A `call_indirect` through a null table entry.
    UninitializedElement,
    /// A `call_indirect` whose callee signature mismatched.
    IndirectCallMismatch,
    /// The call stack was exhausted.
    StackExhaustion,
    /// A host function or embedder API reported an error.
    Host,
    /// Execution ran out of fuel (deterministic metering).
    OutOfFuel,
    /// Execution was interrupted by an epoch deadline (preemption).
    Interrupted,
}

impl TrapReason {
    /// Every reason, in a stable order.
    pub const ALL: [TrapReason; 12] = [
        TrapReason::Unreachable,
        TrapReason::OutOfBoundsMemory,
        TrapReason::DivisionByZero,
        TrapReason::IntegerOverflow,
        TrapReason::InvalidConversion,
        TrapReason::OutOfBoundsTable,
        TrapReason::UninitializedElement,
        TrapReason::IndirectCallMismatch,
        TrapReason::StackExhaustion,
        TrapReason::Host,
        TrapReason::OutOfFuel,
        TrapReason::Interrupted,
    ];

    /// The canonical message the spec test suite's `assert_trap` uses for
    /// this reason.
    pub fn wast_message(self) -> &'static str {
        match self {
            TrapReason::Unreachable => "unreachable",
            TrapReason::OutOfBoundsMemory => "out of bounds memory access",
            TrapReason::DivisionByZero => "integer divide by zero",
            TrapReason::IntegerOverflow => "integer overflow",
            TrapReason::InvalidConversion => "invalid conversion to integer",
            TrapReason::OutOfBoundsTable => "undefined element",
            TrapReason::UninitializedElement => "uninitialized element",
            TrapReason::IndirectCallMismatch => "indirect call type mismatch",
            TrapReason::StackExhaustion => "call stack exhausted",
            TrapReason::Host => "host error",
            TrapReason::OutOfFuel => "all fuel consumed",
            TrapReason::Interrupted => "interrupt",
        }
    }

    /// True if `expected` (an `assert_trap` message) names this reason.
    ///
    /// Spec scripts sometimes abbreviate or extend the canonical message
    /// ("integer divide by zero" vs "divide by zero"), so matching accepts
    /// either string being a prefix of the other.
    pub fn matches_wast(self, expected: &str) -> bool {
        let canonical = self.wast_message();
        canonical.starts_with(expected) || expected.starts_with(canonical)
    }
}

impl From<TrapCode> for TrapReason {
    fn from(code: TrapCode) -> TrapReason {
        match code {
            TrapCode::Unreachable => TrapReason::Unreachable,
            TrapCode::MemoryOutOfBounds => TrapReason::OutOfBoundsMemory,
            TrapCode::DivisionByZero => TrapReason::DivisionByZero,
            TrapCode::IntegerOverflow => TrapReason::IntegerOverflow,
            TrapCode::InvalidConversionToInteger => TrapReason::InvalidConversion,
            TrapCode::TableOutOfBounds => TrapReason::OutOfBoundsTable,
            TrapCode::NullTableEntry => TrapReason::UninitializedElement,
            TrapCode::IndirectCallTypeMismatch => TrapReason::IndirectCallMismatch,
            TrapCode::StackOverflow => TrapReason::StackExhaustion,
            TrapCode::HostError => TrapReason::Host,
            TrapCode::OutOfFuel => TrapReason::OutOfFuel,
            TrapCode::Interrupted => TrapReason::Interrupted,
        }
    }
}

impl fmt::Display for TrapReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.wast_message())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_trap_code_maps_to_a_reason() {
        let codes = [
            TrapCode::Unreachable,
            TrapCode::MemoryOutOfBounds,
            TrapCode::DivisionByZero,
            TrapCode::IntegerOverflow,
            TrapCode::InvalidConversionToInteger,
            TrapCode::TableOutOfBounds,
            TrapCode::NullTableEntry,
            TrapCode::IndirectCallTypeMismatch,
            TrapCode::StackOverflow,
            TrapCode::HostError,
            TrapCode::OutOfFuel,
            TrapCode::Interrupted,
        ];
        let mut seen = std::collections::HashSet::new();
        for code in codes {
            seen.insert(TrapReason::from(code));
        }
        assert_eq!(seen.len(), TrapReason::ALL.len(), "the mapping is a bijection");
    }

    #[test]
    fn wast_messages_are_unique_and_match() {
        let mut seen = std::collections::HashSet::new();
        for reason in TrapReason::ALL {
            assert!(seen.insert(reason.wast_message()));
            assert!(reason.matches_wast(reason.wast_message()));
        }
        assert!(TrapReason::DivisionByZero.matches_wast("integer divide by zero"));
        assert!(TrapReason::DivisionByZero.matches_wast("integer divide"));
        assert!(!TrapReason::DivisionByZero.matches_wast("integer overflow"));
        assert!(!TrapReason::Unreachable.matches_wast("out of bounds memory access"));
    }
}
