//! Structured trap reasons, symbolicated backtraces, and trap diagnostics.
//!
//! The execution tiers report traps as [`TrapCode`]s — a tier-internal enum
//! shared by the interpreter and the CPU simulator so cross-tier differential
//! tests can compare exactly. [`TrapReason`] is the *engine-surface*
//! classification of those codes: each reason carries the canonical message
//! the upstream specification test suite uses in `assert_trap`, so the
//! conformance runner (and any embedder) can match on the cause of a trap
//! structurally instead of scraping `Display` strings.
//!
//! A trap also carries *where*: the engine walks the live activation stack at
//! trap time and builds a [`Backtrace`] of [`Frame`]s — function index, name
//! (from the module's `name` section when present), and the wasm bytecode
//! offset of the faulting or calling instruction. Interpreter frames report
//! their instruction pointer directly; compiled frames (baseline, optimizing,
//! and OSR'd activations alike) map the machine program counter back through
//! the code's source map. The tier a frame was executing in is recorded for
//! display but deliberately excluded from equality: the whole point of the
//! backtrace is that it is **bit-identical across every tier configuration**,
//! which the cross-tier differential tests assert directly.

use machine::inst::TrapCode;
use std::fmt;

/// Why execution trapped, in the vocabulary of the Wasm specification's
/// assertion scripts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrapReason {
    /// The `unreachable` instruction executed.
    Unreachable,
    /// A linear-memory access was out of bounds.
    OutOfBoundsMemory,
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// Signed division overflow or a float-to-int conversion out of range.
    IntegerOverflow,
    /// A float-to-int conversion of NaN.
    InvalidConversion,
    /// A `call_indirect` index outside the table.
    OutOfBoundsTable,
    /// A `call_indirect` through a null table entry.
    UninitializedElement,
    /// A `call_indirect` whose callee signature mismatched.
    IndirectCallMismatch,
    /// The call stack was exhausted.
    StackExhaustion,
    /// A host function or embedder API reported an error.
    Host,
    /// Execution ran out of fuel (deterministic metering).
    OutOfFuel,
    /// Execution was interrupted by an epoch deadline (preemption).
    Interrupted,
}

impl TrapReason {
    /// Every reason, in a stable order.
    pub const ALL: [TrapReason; 12] = [
        TrapReason::Unreachable,
        TrapReason::OutOfBoundsMemory,
        TrapReason::DivisionByZero,
        TrapReason::IntegerOverflow,
        TrapReason::InvalidConversion,
        TrapReason::OutOfBoundsTable,
        TrapReason::UninitializedElement,
        TrapReason::IndirectCallMismatch,
        TrapReason::StackExhaustion,
        TrapReason::Host,
        TrapReason::OutOfFuel,
        TrapReason::Interrupted,
    ];

    /// The canonical message the spec test suite's `assert_trap` uses for
    /// this reason.
    pub fn wast_message(self) -> &'static str {
        match self {
            TrapReason::Unreachable => "unreachable",
            TrapReason::OutOfBoundsMemory => "out of bounds memory access",
            TrapReason::DivisionByZero => "integer divide by zero",
            TrapReason::IntegerOverflow => "integer overflow",
            TrapReason::InvalidConversion => "invalid conversion to integer",
            TrapReason::OutOfBoundsTable => "undefined element",
            TrapReason::UninitializedElement => "uninitialized element",
            TrapReason::IndirectCallMismatch => "indirect call type mismatch",
            TrapReason::StackExhaustion => "call stack exhausted",
            TrapReason::Host => "host error",
            TrapReason::OutOfFuel => "all fuel consumed",
            TrapReason::Interrupted => "interrupt",
        }
    }

    /// True if `expected` (an `assert_trap` message) names this reason.
    ///
    /// Spec scripts sometimes abbreviate or extend the canonical message
    /// ("integer divide by zero" vs "divide by zero"), so matching accepts
    /// either string being a prefix of the other.
    pub fn matches_wast(self, expected: &str) -> bool {
        let canonical = self.wast_message();
        canonical.starts_with(expected) || expected.starts_with(canonical)
    }

    /// This reason's position in [`TrapReason::ALL`] — the index the
    /// per-reason counters in `RunMetrics` use.
    pub fn index(self) -> usize {
        match self {
            TrapReason::Unreachable => 0,
            TrapReason::OutOfBoundsMemory => 1,
            TrapReason::DivisionByZero => 2,
            TrapReason::IntegerOverflow => 3,
            TrapReason::InvalidConversion => 4,
            TrapReason::OutOfBoundsTable => 5,
            TrapReason::UninitializedElement => 6,
            TrapReason::IndirectCallMismatch => 7,
            TrapReason::StackExhaustion => 8,
            TrapReason::Host => 9,
            TrapReason::OutOfFuel => 10,
            TrapReason::Interrupted => 11,
        }
    }

    /// A short identifier-safe label, used to name per-reason metrics
    /// counters (`engine.traps.<slug>`) and JSON report keys.
    pub fn slug(self) -> &'static str {
        match self {
            TrapReason::Unreachable => "unreachable",
            TrapReason::OutOfBoundsMemory => "memory_out_of_bounds",
            TrapReason::DivisionByZero => "division_by_zero",
            TrapReason::IntegerOverflow => "integer_overflow",
            TrapReason::InvalidConversion => "invalid_conversion",
            TrapReason::OutOfBoundsTable => "table_out_of_bounds",
            TrapReason::UninitializedElement => "uninitialized_element",
            TrapReason::IndirectCallMismatch => "indirect_call_mismatch",
            TrapReason::StackExhaustion => "stack_exhaustion",
            TrapReason::Host => "host_error",
            TrapReason::OutOfFuel => "out_of_fuel",
            TrapReason::Interrupted => "interrupted",
        }
    }
}

impl From<TrapCode> for TrapReason {
    fn from(code: TrapCode) -> TrapReason {
        match code {
            TrapCode::Unreachable => TrapReason::Unreachable,
            TrapCode::MemoryOutOfBounds => TrapReason::OutOfBoundsMemory,
            TrapCode::DivisionByZero => TrapReason::DivisionByZero,
            TrapCode::IntegerOverflow => TrapReason::IntegerOverflow,
            TrapCode::InvalidConversionToInteger => TrapReason::InvalidConversion,
            TrapCode::TableOutOfBounds => TrapReason::OutOfBoundsTable,
            TrapCode::NullTableEntry => TrapReason::UninitializedElement,
            TrapCode::IndirectCallTypeMismatch => TrapReason::IndirectCallMismatch,
            TrapCode::StackOverflow => TrapReason::StackExhaustion,
            TrapCode::HostError => TrapReason::Host,
            TrapCode::OutOfFuel => TrapReason::OutOfFuel,
            TrapCode::Interrupted => TrapReason::Interrupted,
        }
    }
}

impl fmt::Display for TrapReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.wast_message())
    }
}

/// The execution tier a backtrace frame was captured in.
///
/// Carried on each [`Frame`] for display and telemetry, but excluded from
/// frame equality: tier choice never changes *where* a trap happens, and the
/// differential tests compare backtraces across tier configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameTierTag {
    /// The frame was interpreting.
    Interp,
    /// The frame was running baseline-compiled code.
    Baseline,
    /// The frame was running optimizing-tier code (including frames
    /// transferred mid-loop by on-stack replacement).
    Opt,
}

impl FrameTierTag {
    /// A short stable label for rendering.
    pub fn label(self) -> &'static str {
        match self {
            FrameTierTag::Interp => "interp",
            FrameTierTag::Baseline => "baseline",
            FrameTierTag::Opt => "opt",
        }
    }
}

/// One frame of a wasm backtrace.
///
/// Equality (and hashing) cover the *location* — function index, name, and
/// bytecode offset — but not [`Frame::tier`]: two runs of the same module
/// under different tier configurations must produce equal backtraces even
/// though the frames executed in different tiers.
#[derive(Debug, Clone)]
pub struct Frame {
    /// The function's index in the module function space.
    pub func_index: u32,
    /// The function's name from the module's `name` section, if present.
    pub name: Option<String>,
    /// The wasm bytecode offset (relative to the function body) of the
    /// trapping instruction (top frame) or of the call instruction the frame
    /// was suspended at (every other frame).
    pub offset: u32,
    /// The tier the frame was executing in. Diagnostic only — see the type
    /// docs for why equality ignores it.
    pub tier: FrameTierTag,
}

impl PartialEq for Frame {
    fn eq(&self, other: &Frame) -> bool {
        self.func_index == other.func_index
            && self.name == other.name
            && self.offset == other.offset
    }
}

impl Eq for Frame {}

impl std::hash::Hash for Frame {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.func_index.hash(state);
        self.name.hash(state);
        self.offset.hash(state);
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.name {
            Some(name) => write!(
                f,
                "{name} (func {}) @ +{:#06x} [{}]",
                self.func_index,
                self.offset,
                self.tier.label()
            ),
            None => write!(
                f,
                "func {} @ +{:#06x} [{}]",
                self.func_index,
                self.offset,
                self.tier.label()
            ),
        }
    }
}

/// A symbolicated wasm backtrace: frames from innermost (the trapping
/// function) to outermost (the called export).
///
/// Deep stacks — a stack-exhaustion trap sits `max_call_depth` frames deep —
/// are truncated to a fixed head and tail ([`Backtrace::HEAD_FRAMES`] /
/// [`Backtrace::TAIL_FRAMES`]) with the omitted middle count preserved, so
/// the rendered trace is bounded no matter how deep the recursion was while
/// both the fault site and the entry path stay visible.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Backtrace {
    frames: Vec<Frame>,
    truncated: u32,
}

impl Backtrace {
    /// Innermost frames kept when a trace is truncated.
    pub const HEAD_FRAMES: usize = 16;
    /// Outermost frames kept when a trace is truncated.
    pub const TAIL_FRAMES: usize = 16;

    /// Builds a backtrace from innermost-first frames, truncating the middle
    /// when there are more than `HEAD_FRAMES + TAIL_FRAMES` of them.
    pub fn from_frames(mut frames: Vec<Frame>) -> Backtrace {
        let max = Backtrace::HEAD_FRAMES + Backtrace::TAIL_FRAMES;
        let truncated = frames.len().saturating_sub(max) as u32;
        if truncated > 0 {
            frames.drain(Backtrace::HEAD_FRAMES..frames.len() - Backtrace::TAIL_FRAMES);
        }
        Backtrace { frames, truncated }
    }

    /// The retained frames, innermost first. When the trace was truncated
    /// these are the head frames followed immediately by the tail frames.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// How many middle frames were dropped by truncation (zero for full
    /// traces).
    pub fn truncated(&self) -> u32 {
        self.truncated
    }

    /// The true depth of the stack at trap time, counting dropped frames.
    pub fn depth(&self) -> usize {
        self.frames.len() + self.truncated as usize
    }

    /// Fraction of retained frames that carry a function name — the
    /// symbolication coverage the diagnostics harness reports. `1.0` for an
    /// empty trace (nothing needed symbolicating).
    pub fn symbolication_coverage(&self) -> f64 {
        if self.frames.is_empty() {
            return 1.0;
        }
        let named = self.frames.iter().filter(|f| f.name.is_some()).count();
        named as f64 / self.frames.len() as f64
    }
}

impl fmt::Display for Backtrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, frame) in self.frames.iter().enumerate() {
            // Frame numbers stay true to the original stack across the
            // truncation gap.
            let shown = if self.truncated > 0 && i >= Backtrace::HEAD_FRAMES {
                i + self.truncated as usize
            } else {
                i
            };
            if self.truncated > 0 && i == Backtrace::HEAD_FRAMES {
                writeln!(f, "  ... {} frames omitted ...", self.truncated)?;
            }
            writeln!(f, "  #{shown} {frame}")?;
        }
        Ok(())
    }
}

/// Everything the engine knows about a trap: the classified reason plus the
/// symbolicated backtrace captured when it fired. Stored on the instance
/// (`Instance::last_trap`) so embedders can retrieve diagnostics after the
/// trapping call returns its `TrapCode`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrapInfo {
    /// Why execution trapped.
    pub reason: TrapReason,
    /// Where it trapped, innermost frame first.
    pub backtrace: Backtrace,
}

impl fmt::Display for TrapInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "wasm trap: {}", self.reason)?;
        write!(f, "{}", self.backtrace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_trap_code_maps_to_a_reason() {
        let codes = [
            TrapCode::Unreachable,
            TrapCode::MemoryOutOfBounds,
            TrapCode::DivisionByZero,
            TrapCode::IntegerOverflow,
            TrapCode::InvalidConversionToInteger,
            TrapCode::TableOutOfBounds,
            TrapCode::NullTableEntry,
            TrapCode::IndirectCallTypeMismatch,
            TrapCode::StackOverflow,
            TrapCode::HostError,
            TrapCode::OutOfFuel,
            TrapCode::Interrupted,
        ];
        let mut seen = std::collections::HashSet::new();
        for code in codes {
            seen.insert(TrapReason::from(code));
        }
        assert_eq!(seen.len(), TrapReason::ALL.len(), "the mapping is a bijection");
    }

    #[test]
    fn wast_messages_are_unique_and_match() {
        let mut seen = std::collections::HashSet::new();
        for reason in TrapReason::ALL {
            assert!(seen.insert(reason.wast_message()));
            assert!(reason.matches_wast(reason.wast_message()));
        }
        assert!(TrapReason::DivisionByZero.matches_wast("integer divide by zero"));
        assert!(TrapReason::DivisionByZero.matches_wast("integer divide"));
        assert!(!TrapReason::DivisionByZero.matches_wast("integer overflow"));
        assert!(!TrapReason::Unreachable.matches_wast("out of bounds memory access"));
    }

    #[test]
    fn indices_and_slugs_are_stable_and_unique() {
        let mut slugs = std::collections::HashSet::new();
        for (i, reason) in TrapReason::ALL.iter().enumerate() {
            assert_eq!(reason.index(), i);
            assert!(slugs.insert(reason.slug()));
        }
    }

    fn frame(func_index: u32, name: Option<&str>, offset: u32, tier: FrameTierTag) -> Frame {
        Frame {
            func_index,
            name: name.map(str::to_string),
            offset,
            tier,
        }
    }

    #[test]
    fn frame_equality_ignores_tier() {
        let a = frame(3, Some("f"), 12, FrameTierTag::Interp);
        let b = frame(3, Some("f"), 12, FrameTierTag::Opt);
        assert_eq!(a, b);
        assert_ne!(a, frame(3, Some("f"), 13, FrameTierTag::Interp));
        assert_ne!(a, frame(3, None, 12, FrameTierTag::Interp));
    }

    #[test]
    fn short_traces_are_kept_whole() {
        let frames: Vec<Frame> =
            (0..5).map(|i| frame(i, None, i * 2, FrameTierTag::Interp)).collect();
        let bt = Backtrace::from_frames(frames.clone());
        assert_eq!(bt.frames(), &frames[..]);
        assert_eq!(bt.truncated(), 0);
        assert_eq!(bt.depth(), 5);
    }

    #[test]
    fn deep_traces_keep_head_and_tail() {
        let frames: Vec<Frame> =
            (0..100).map(|i| frame(i, None, i, FrameTierTag::Baseline)).collect();
        let bt = Backtrace::from_frames(frames);
        assert_eq!(bt.frames().len(), Backtrace::HEAD_FRAMES + Backtrace::TAIL_FRAMES);
        assert_eq!(bt.truncated(), 100 - 32);
        assert_eq!(bt.depth(), 100);
        // Head keeps the innermost frames, tail the outermost.
        assert_eq!(bt.frames()[0].func_index, 0);
        assert_eq!(bt.frames()[Backtrace::HEAD_FRAMES - 1].func_index, 15);
        assert_eq!(bt.frames()[Backtrace::HEAD_FRAMES].func_index, 84);
        assert_eq!(bt.frames().last().unwrap().func_index, 99);
        let rendered = bt.to_string();
        assert!(rendered.contains("... 68 frames omitted ..."));
        assert!(rendered.contains("#99 "));
    }

    #[test]
    fn symbolication_coverage_counts_named_frames() {
        let bt = Backtrace::from_frames(vec![
            frame(0, Some("a"), 0, FrameTierTag::Interp),
            frame(1, None, 4, FrameTierTag::Interp),
            frame(2, Some("c"), 8, FrameTierTag::Interp),
            frame(3, Some("d"), 2, FrameTierTag::Interp),
        ]);
        assert!((bt.symbolication_coverage() - 0.75).abs() < 1e-9);
        assert_eq!(Backtrace::default().symbolication_coverage(), 1.0);
    }

    #[test]
    fn trap_info_renders_reason_and_frames() {
        let info = TrapInfo {
            reason: TrapReason::DivisionByZero,
            backtrace: Backtrace::from_frames(vec![
                frame(2, Some("div"), 9, FrameTierTag::Opt),
                frame(1, Some("main"), 4, FrameTierTag::Interp),
            ]),
        };
        let text = info.to_string();
        assert!(text.starts_with("wasm trap: integer divide by zero"));
        assert!(text.contains("#0 div (func 2) @ +0x0009 [opt]"));
        assert!(text.contains("#1 main (func 1) @ +0x0004 [interp]"));
    }
}
