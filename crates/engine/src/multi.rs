//! Multi-tenant engine registry: shared code, isolated budgets.
//!
//! A serving host runs many tenants, each with its own [`EngineConfig`]
//! (tier policy, metering, resource ceilings). Tenants whose configurations
//! emit the *same code* — identical
//! [`compile_fingerprint`](EngineConfig::compile_fingerprint), backend, and
//! optimizing-tier axis — should share compiled artifacts instead of each
//! paying compilation and memory for their own copy. [`MultiEngine`] is that
//! registry: it hands out [`Engine`]s wired to one shared [`CodeCache`] and
//! one shared epoch counter, so
//!
//! - two tenants instantiating the same module under code-compatible
//!   configurations hit the cache the second time (the [`crate::CacheKey`] already
//!   disambiguates every code-affecting axis, including metering), while
//! - each tenant keeps its own *execution* knobs — fuel budget, epoch
//!   deadline, memory/table/call-depth ceilings — which never affect emitted
//!   code and therefore never fragment the cache, and
//! - one supervisor call ([`MultiEngine::increment_epoch`]) preempts every
//!   tenant with an armed deadline, across all engines the registry built.

use crate::cache::CodeCache;
use crate::config::EngineConfig;
use crate::engine::Engine;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The registry key: every axis of a configuration that affects emitted
/// code. Configurations agreeing on all three produce byte-identical
/// artifacts and may share cache entries (the per-module [`crate::CacheKey`]
/// repeats these axes, so even engines handed out for *different* fingerprints
/// can share one cache safely — the map below exists for bookkeeping and the
/// [`MultiEngine::num_code_groups`] metric, not for correctness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CodeGroup {
    compile_fingerprint: u64,
    backend: machine::masm::CodeBackend,
    opt_fingerprint: u64,
}

impl CodeGroup {
    fn for_config(config: &EngineConfig) -> CodeGroup {
        CodeGroup {
            compile_fingerprint: config.compile_fingerprint(),
            backend: config.backend,
            opt_fingerprint: config.opt_fingerprint(),
        }
    }
}

/// A registry handing out [`Engine`]s that share one [`CodeCache`] and one
/// epoch counter across tenants (see the module docs).
#[derive(Debug, Default)]
pub struct MultiEngine {
    cache: Arc<CodeCache>,
    epoch: Arc<AtomicU64>,
    /// Distinct code groups observed, for introspection/metrics.
    groups: Mutex<Vec<CodeGroup>>,
}

impl MultiEngine {
    /// An empty registry with a fresh shared cache and epoch counter.
    pub fn new() -> MultiEngine {
        MultiEngine::default()
    }

    /// Builds a tenant engine under `config`, wired to the registry's shared
    /// code cache and epoch counter. Engines for code-compatible
    /// configurations share compiled artifacts automatically; engines for
    /// differing configurations coexist in the same cache under different
    /// keys.
    pub fn engine(&self, config: EngineConfig) -> Engine {
        let group = CodeGroup::for_config(&config);
        let mut groups = self.groups.lock().expect("group registry poisoned");
        if !groups.contains(&group) {
            groups.push(group);
        }
        drop(groups);
        Engine::new(config)
            .with_code_cache(Arc::clone(&self.cache))
            .with_epoch(Arc::clone(&self.epoch))
    }

    /// The shared code cache (e.g. to read hit/miss counters).
    pub fn code_cache(&self) -> &Arc<CodeCache> {
        &self.cache
    }

    /// The shared epoch counter.
    pub fn epoch(&self) -> &Arc<AtomicU64> {
        &self.epoch
    }

    /// Advances the shared epoch, preempting every tenant instance with a
    /// reached deadline at its next check site (loop back-edge or call
    /// boundary) — across all engines this registry has built.
    pub fn increment_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// How many distinct code groups (sets of code-compatible
    /// configurations) this registry has handed engines out for.
    pub fn num_code_groups(&self) -> usize {
        self.groups.lock().expect("group registry poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ResourceLimits;
    use spc::CompilerOptions;

    #[test]
    fn code_compatible_tenants_land_in_one_group() {
        let multi = MultiEngine::new();
        let a = EngineConfig::baseline("tenant-a", CompilerOptions::allopt());
        // Execution-only differences: same code group.
        let b = EngineConfig::baseline("tenant-b", CompilerOptions::allopt())
            .with_limits(ResourceLimits {
                memory_pages: Some(4),
                table_elements: None,
                call_depth: Some(100),
            })
            .with_lazy_compile(true);
        let _ea = multi.engine(a);
        let _eb = multi.engine(b);
        assert_eq!(multi.num_code_groups(), 1);
        // Metering changes emitted code: a second group.
        let c = EngineConfig::baseline("tenant-c", CompilerOptions::allopt()).with_metering();
        let _ec = multi.engine(c);
        assert_eq!(multi.num_code_groups(), 2);
    }

    #[test]
    fn engines_share_cache_and_epoch() {
        let multi = MultiEngine::new();
        let e1 = multi.engine(EngineConfig::default());
        let e2 = multi.engine(EngineConfig::default());
        assert!(Arc::ptr_eq(
            e1.code_cache().expect("wired"),
            e2.code_cache().expect("wired")
        ));
        assert!(Arc::ptr_eq(e1.epoch(), e2.epoch()));
        multi.increment_epoch();
        assert_eq!(e1.epoch().load(Ordering::Relaxed), 1);
        assert_eq!(e2.epoch().load(Ordering::Relaxed), 1);
    }
}
