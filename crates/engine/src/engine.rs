//! The multi-tier engine: instances, the frame executor, and metrics.
//!
//! The engine owns the pieces the paper's Wizard engine owns: module loading
//! and validation, per-function preparation (sidetables), tier selection and
//! compilation (baseline or optimizing), the shared tagged value stack,
//! linear memory/globals/tables, the host GC heap, instrumentation, and the
//! unified execution driver that lets interpreter frames and JIT frames call
//! each other freely (tier-up happens at function entry once a function gets
//! hot; tier-down to the interpreter can happen when a probe fires in JIT
//! code).

use crate::config::{EngineConfig, TierPolicy};
use crate::gc::{scan_roots_via_stackmaps, scan_roots_via_tags, Heap, StackmapFrame};
use crate::monitor::Instrumentation;
use interp::interp::{prepare, InterpExit, Interpreter, PreparedFunction};
use interp::probe::{FrameAccessor, ProbeSink};
use machine::cost::CycleCounter;
use machine::cpu::{Cpu, CpuExit, CpuState, ExecContext, ProbeExit};
use machine::inst::TrapCode;
use machine::masm::CodeBackend;
use machine::x64_masm::X64Masm;
use machine::memory::{LinearMemory, Table};
use machine::values::{GlobalSlot, ValueStack, ValueTag, WasmValue};
use spc::{CompiledFunction, ProbeSites, SinglePassCompiler};
use std::collections::HashMap;
use std::fmt;
use std::time::{Duration, Instant};
use wasm::module::{ConstExpr, ImportKind, Module};
use wasm::validate::{validate, ModuleInfo};

/// A host (imported) function.
pub type HostFunc = Box<dyn FnMut(&mut Heap, &[WasmValue]) -> Result<Vec<WasmValue>, TrapCode>>;

/// Host imports provided at instantiation, keyed by `(module, name)`.
#[derive(Default)]
pub struct Imports {
    funcs: HashMap<(String, String), HostFunc>,
}

impl Imports {
    /// No imports.
    pub fn new() -> Imports {
        Imports::default()
    }

    /// Provides a host function for `(module, name)`.
    pub fn func(
        mut self,
        module: &str,
        name: &str,
        f: impl FnMut(&mut Heap, &[WasmValue]) -> Result<Vec<WasmValue>, TrapCode> + 'static,
    ) -> Imports {
        self.funcs
            .insert((module.to_string(), name.to_string()), Box::new(f));
        self
    }
}

impl fmt::Debug for Imports {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Imports").field("funcs", &self.funcs.len()).finish()
    }
}

/// Errors produced while building an instance.
#[derive(Debug)]
pub enum EngineError {
    /// Validation failed.
    Validate(wasm::validate::ValidateError),
    /// Compilation failed.
    Compile(spc::CompileError),
    /// Instantiation failed (missing import, bad segment, ...).
    Instantiate(String),
    /// Execution of the start function trapped.
    Start(TrapCode),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Validate(e) => write!(f, "{e}"),
            EngineError::Compile(e) => write!(f, "{e}"),
            EngineError::Instantiate(msg) => write!(f, "instantiation error: {msg}"),
            EngineError::Start(code) => write!(f, "start function trapped: {code}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Timing and counting data for one instance, in the units the paper's
/// figures use: wall-clock time for setup/compilation (real work done by this
/// reproduction's compilers) and simulated cycles for execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunMetrics {
    /// Wall-clock time spent in instantiation (validation, preparation,
    /// eager compilation, segment initialization).
    pub setup_wall: Duration,
    /// Wall-clock time spent compiling (eager and lazy).
    pub compile_wall: Duration,
    /// Bytes of Wasm function bodies compiled.
    pub compiled_wasm_bytes: u64,
    /// Bytes of machine code produced by the configured
    /// [`CodeBackend`]: the virtual ISA's per-instruction estimate, or real
    /// encoded bytes when the x86-64 backend is selected.
    pub compiled_machine_bytes: u64,
    /// Functions compiled.
    pub functions_compiled: u32,
    /// Simulated cycles of execution ("main execution time").
    pub exec_cycles: u64,
    /// Number of Wasm calls executed.
    pub calls_executed: u64,
    /// Garbage collections performed.
    pub gc_count: u64,
    /// Value-tag store instructions emitted by the compiler.
    pub tag_stores_emitted: u64,
}

/// One live, runnable instance of a module under a specific engine
/// configuration.
pub struct Instance {
    module: Module,
    info: ModuleInfo,
    prepared: Vec<PreparedFunction>,
    compiled: Vec<Option<CompiledFunction>>,
    call_counts: Vec<u32>,
    memory: Option<LinearMemory>,
    globals: Vec<GlobalSlot>,
    tables: Vec<Table>,
    values: ValueStack,
    /// The host garbage-collected heap.
    pub heap: Heap,
    /// Attached instrumentation (monitors and probe registry).
    pub instrumentation: Instrumentation,
    host_funcs: Vec<Option<HostFunc>>,
    /// Accumulated metrics.
    pub metrics: RunMetrics,
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Instance")
            .field("funcs", &self.module.num_funcs())
            .field("compiled", &self.compiled.iter().filter(|c| c.is_some()).count())
            .field("metrics", &self.metrics)
            .finish()
    }
}

impl Instance {
    /// The instantiated module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The compiled code for a defined function, if it has been compiled.
    pub fn compiled_code(&self, defined_index: u32) -> Option<&CompiledFunction> {
        self.compiled.get(defined_index as usize)?.as_ref()
    }

    /// The number of times each defined function has been called.
    pub fn call_count(&self, defined_index: u32) -> u32 {
        self.call_counts.get(defined_index as usize).copied().unwrap_or(0)
    }

    /// Read a global's current value by index.
    pub fn global_value(&self, index: u32) -> Option<WasmValue> {
        self.globals.get(index as usize).map(|g| g.value())
    }
}

enum FrameTier {
    Interp { ip: usize },
    // The register file is boxed so interpreter activations stay small.
    Jit { pc: usize, cpu: Box<CpuState> },
}

struct Activation {
    func_index: u32,
    defined_index: u32,
    frame_base: usize,
    num_results: u32,
    frame_slots: u32,
    tier: FrameTier,
}

/// The engine: a configuration plus the machinery to instantiate and run
/// modules under it.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    config: EngineConfig,
}

impl Engine {
    /// Creates an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Engine {
        Engine { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Instantiates a module: validates, prepares, optionally compiles
    /// eagerly, initializes memory/globals/tables and segments, and runs the
    /// start function.
    ///
    /// # Errors
    ///
    /// Returns an error if validation, compilation, import resolution, or
    /// segment initialization fails, or if the start function traps.
    pub fn instantiate(
        &self,
        module: &Module,
        imports: Imports,
        instrumentation: Instrumentation,
    ) -> Result<Instance, EngineError> {
        let setup_start = Instant::now();
        let info = validate(module).map_err(EngineError::Validate)?;

        // Prepare every defined function (sidetables, frame metadata).
        let mut prepared = Vec::with_capacity(module.funcs.len());
        for defined in 0..module.funcs.len() as u32 {
            let func_index = module.defined_to_func_index(defined);
            let p = prepare(module, func_index, &info.funcs[defined as usize]).map_err(|e| {
                EngineError::Instantiate(format!("prepare failed: {e}"))
            })?;
            prepared.push(p);
        }

        // Resolve host imports.
        let mut imports = imports;
        let mut host_funcs = Vec::new();
        for import in &module.imports {
            if let ImportKind::Func(_) = import.kind {
                let key = (import.module.clone(), import.name.clone());
                match imports.funcs.remove(&key) {
                    Some(f) => host_funcs.push(Some(f)),
                    None => {
                        return Err(EngineError::Instantiate(format!(
                            "missing import {}.{}",
                            import.module, import.name
                        )))
                    }
                }
            }
        }

        // Memories, globals, tables.
        let memory = (0..module.num_memories())
            .next()
            .and_then(|i| module.memory_type(i))
            .map(|m| LinearMemory::new(m.limits));
        let globals: Vec<GlobalSlot> = {
            let mut out = Vec::new();
            for i in 0..module.num_globals() {
                let ty = module
                    .global_type(i)
                    .ok_or_else(|| EngineError::Instantiate("unknown global".to_string()))?;
                let defined = i.checked_sub(module.num_imported_globals());
                let value = match defined.and_then(|d| module.globals.get(d as usize)) {
                    Some(g) => eval_const(&g.init, &out),
                    None => WasmValue::default_for(ty.value_type),
                };
                out.push(GlobalSlot::from_value(value));
            }
            out
        };
        let mut tables: Vec<Table> = (0..module.num_tables())
            .filter_map(|i| module.table_type(i))
            .map(|t| Table::new(t.limits))
            .collect();

        let mut memory = memory;
        // Data segments.
        for (i, d) in module.data.iter().enumerate() {
            let offset = eval_const(&d.offset, &globals).unwrap_i32() as u32;
            let mem = memory
                .as_mut()
                .ok_or_else(|| EngineError::Instantiate("data segment without memory".to_string()))?;
            mem.init(offset, &d.bytes).map_err(|_| {
                EngineError::Instantiate(format!("data segment {i} out of bounds"))
            })?;
        }
        // Element segments.
        for (i, e) in module.elems.iter().enumerate() {
            let offset = eval_const(&e.offset, &globals).unwrap_i32() as u32;
            let table = tables.get_mut(e.table_index as usize).ok_or_else(|| {
                EngineError::Instantiate(format!("element segment {i} has no table"))
            })?;
            table.init(offset, &e.func_indices).map_err(|_| {
                EngineError::Instantiate(format!("element segment {i} out of bounds"))
            })?;
        }

        let mut instance = Instance {
            module: module.clone(),
            info,
            prepared,
            compiled: vec![None; module.funcs.len()],
            call_counts: vec![0; module.funcs.len()],
            memory,
            globals,
            tables,
            values: ValueStack::default(),
            heap: Heap::with_threshold(0),
            instrumentation,
            host_funcs,
            metrics: RunMetrics::default(),
        };

        // Eager compilation.
        let needs_eager = !self.config.lazy_compile
            && !matches!(self.config.tier, TierPolicy::InterpreterOnly);
        if needs_eager {
            for defined in 0..module.funcs.len() as u32 {
                self.ensure_compiled(&mut instance, defined)
                    .map_err(EngineError::Compile)?;
            }
        }
        instance.metrics.setup_wall = setup_start.elapsed();

        // Start function.
        if let Some(start) = module.start {
            self.call(&mut instance, start, &[]).map_err(EngineError::Start)?;
        }
        Ok(instance)
    }

    /// Calls an exported function by name.
    ///
    /// # Errors
    ///
    /// Returns the trap that terminated execution, or `HostError` if the
    /// export does not exist.
    pub fn call_export(
        &self,
        instance: &mut Instance,
        name: &str,
        args: &[WasmValue],
    ) -> Result<Vec<WasmValue>, TrapCode> {
        let func_index = instance
            .module
            .exported_func(name)
            .ok_or(TrapCode::HostError)?;
        self.call(instance, func_index, args)
    }

    /// Calls a function by index with the given arguments.
    ///
    /// # Errors
    ///
    /// Returns the trap that terminated execution.
    pub fn call(
        &self,
        instance: &mut Instance,
        func_index: u32,
        args: &[WasmValue],
    ) -> Result<Vec<WasmValue>, TrapCode> {
        if instance.module.is_imported_func(func_index) {
            return Err(TrapCode::HostError);
        }
        let num_results = instance
            .module
            .func_type(func_index)
            .map(|t| t.results.clone())
            .ok_or(TrapCode::HostError)?;

        let frame_base = 0usize;
        let mut cycles = CycleCounter::new();
        let exec_result = self.run_call(instance, func_index, args, frame_base, &mut cycles);
        instance.metrics.exec_cycles += cycles.total();
        exec_result?;
        // Read results from the frame base.
        let out = num_results
            .iter()
            .enumerate()
            .map(|(i, &ty)| {
                WasmValue::from_bits(
                    instance.values.read(frame_base + i),
                    ValueTag::for_type(ty),
                )
            })
            .collect();
        Ok(out)
    }

    // ---- Internal machinery -------------------------------------------------

    fn ensure_compiled(
        &self,
        instance: &mut Instance,
        defined: u32,
    ) -> Result<(), spc::CompileError> {
        if instance.compiled[defined as usize].is_some() {
            return Ok(());
        }
        let func_index = instance.module.defined_to_func_index(defined);
        let probes = instance.instrumentation.sites_for(func_index);
        let start = Instant::now();
        let compiled = self.compile_one(instance, func_index, defined, &probes)?;
        // The compile-time metric covers exactly the work that produced the
        // executable artifact; the backend size probe below is measured
        // separately so an x86-64-backend run stays comparable.
        let elapsed = start.elapsed();
        // Backend selection: with the x86-64 backend the same single-pass
        // translation is emitted again as real machine bytes, so the
        // code-size metric reports actual encodings. Execution still runs
        // the virtual-ISA code — the simulator cannot execute raw bytes.
        // Only tiers that install baseline code are probed: the optimizing
        // tier's slot promotion is a virtual-ISA-only pass, so an x86-64
        // size for it would describe code the engine never produced.
        let machine_bytes = match (self.config.backend, self.config.baseline_options()) {
            (CodeBackend::X64, Some(options)) => {
                let info = &instance.info.funcs[defined as usize];
                let x64 = SinglePassCompiler::new(options.clone()).compile_with(
                    X64Masm::new(),
                    &instance.module,
                    func_index,
                    info,
                    &probes,
                )?;
                x64.code.code_size() as u64
            }
            _ => compiled.stats.code_size_bytes as u64,
        };
        instance.metrics.compile_wall += elapsed;
        instance.metrics.compiled_wasm_bytes += compiled.stats.wasm_bytes as u64;
        instance.metrics.compiled_machine_bytes += machine_bytes;
        instance.metrics.tag_stores_emitted += compiled.stats.tag_stores as u64;
        instance.metrics.functions_compiled += 1;
        instance.compiled[defined as usize] = Some(compiled);
        Ok(())
    }

    fn compile_one(
        &self,
        instance: &Instance,
        func_index: u32,
        defined: u32,
        probes: &ProbeSites,
    ) -> Result<CompiledFunction, spc::CompileError> {
        let info = &instance.info.funcs[defined as usize];
        match &self.config.tier {
            TierPolicy::OptimizingOnly => {
                optc::OptimizingCompiler::default().compile(&instance.module, func_index, info, probes)
            }
            TierPolicy::BaselineOnly(options) | TierPolicy::Tiered { baseline: options, .. } => {
                SinglePassCompiler::new(options.clone()).compile(
                    &instance.module,
                    func_index,
                    info,
                    probes,
                )
            }
            TierPolicy::InterpreterOnly => {
                // Interpreter-only engines never compile; this is unreachable
                // in practice but harmless.
                SinglePassCompiler::default().compile(&instance.module, func_index, info, probes)
            }
        }
    }

    /// Decides the tier for a new activation of `defined`, compiling lazily
    /// or on tier-up as needed.
    fn choose_tier(&self, instance: &mut Instance, defined: u32) -> Result<bool, TrapCode> {
        instance.call_counts[defined as usize] =
            instance.call_counts[defined as usize].saturating_add(1);
        let use_jit = match &self.config.tier {
            TierPolicy::InterpreterOnly => false,
            TierPolicy::BaselineOnly(_) | TierPolicy::OptimizingOnly => true,
            TierPolicy::Tiered { threshold, .. } => {
                instance.call_counts[defined as usize] > *threshold
            }
        };
        if use_jit {
            self.ensure_compiled(instance, defined)
                .map_err(|_| TrapCode::HostError)?;
        }
        Ok(use_jit)
    }

    fn push_frame(
        &self,
        instance: &mut Instance,
        func_index: u32,
        frame_base: usize,
        init_locals_from_args: Option<&[WasmValue]>,
        depth: usize,
    ) -> Result<Activation, TrapCode> {
        let defined = func_index
            .checked_sub(instance.module.num_imported_funcs())
            .ok_or(TrapCode::HostError)?;
        if depth >= self.config.max_call_depth {
            return Err(TrapCode::StackOverflow);
        }
        let use_jit = self.choose_tier(instance, defined)?;
        let prepared = &instance.prepared[defined as usize];
        let num_params = prepared.num_params as usize;
        let num_results = prepared.num_results;
        let frame_slots = if use_jit {
            instance.compiled[defined as usize]
                .as_ref()
                .map(|c| c.frame_slots)
                .unwrap_or(prepared.frame_slots())
        } else {
            prepared.frame_slots()
        };
        if instance.values.capacity() < frame_base + frame_slots as usize {
            return Err(TrapCode::StackOverflow);
        }

        // Arguments (when provided by the host; Wasm callers already wrote
        // them into place), then default-initialized declared locals.
        if let Some(args) = init_locals_from_args {
            if args.len() != num_params {
                return Err(TrapCode::HostError);
            }
            for (i, arg) in args.iter().enumerate() {
                instance.values.write_value(frame_base + i, *arg);
            }
        } else {
            // Ensure parameter tags are present even if the caller's tier
            // does not store tags (e.g. a notags baseline configuration):
            // the callee's locals have static types.
            let local_types = prepared.local_types.clone();
            for (i, ty) in local_types.iter().enumerate().take(num_params) {
                instance
                    .values
                    .set_tag(frame_base + i, ValueTag::for_type(*ty));
            }
        }
        let local_types = prepared.local_types.clone();
        for (i, ty) in local_types.iter().enumerate().skip(num_params) {
            instance
                .values
                .write_value(frame_base + i, WasmValue::default_for(*ty));
        }

        let tier = if use_jit {
            FrameTier::Jit {
                pc: 0,
                cpu: Box::new(CpuState::new()),
            }
        } else {
            FrameTier::Interp { ip: 0 }
        };
        // The value-stack pointer covers the locals for interpreter frames
        // (operands are pushed as it executes) and the whole frame for JIT
        // frames (slots are addressed statically).
        let sp = if use_jit {
            frame_base + frame_slots as usize
        } else {
            frame_base + local_types.len()
        };
        instance.values.set_sp(sp);
        instance.metrics.calls_executed += 1;
        Ok(Activation {
            func_index,
            defined_index: defined,
            frame_base,
            num_results,
            frame_slots,
            tier,
        })
    }

    fn run_call(
        &self,
        instance: &mut Instance,
        func_index: u32,
        args: &[WasmValue],
        frame_base: usize,
        cycles: &mut CycleCounter,
    ) -> Result<(), TrapCode> {
        let interp = Interpreter::new(self.config.cost.clone());
        let cpu = Cpu::new(self.config.cost.clone());
        let mut stack: Vec<Activation> = Vec::new();
        let root = self.push_frame(instance, func_index, frame_base, Some(args), 0)?;
        stack.push(root);

        while let Some(act) = stack.last_mut() {
            let defined = act.defined_index as usize;
            // Run the top frame until it exits.
            let exit = {
                let Instance {
                    module,
                    prepared,
                    compiled,
                    memory,
                    globals,
                    tables,
                    values,
                    instrumentation,
                    ..
                } = instance;
                let mut ctx = ExecContext {
                    values,
                    frame_base: act.frame_base,
                    memory: memory.as_mut(),
                    globals,
                    tables,
                };
                match &mut act.tier {
                    FrameTier::Interp { ip } => {
                        let exit = interp.run(
                            module,
                            &prepared[defined],
                            *ip,
                            &mut ctx,
                            instrumentation,
                            cycles,
                        );
                        UnifiedExit::from_interp(exit)
                    }
                    FrameTier::Jit { pc, cpu: cpu_state } => {
                        let code = compiled[defined]
                            .as_ref()
                            .expect("JIT frame has compiled code");
                        let exit = cpu.run(cpu_state, &code.code, *pc, &mut ctx, cycles);
                        UnifiedExit::from_cpu(exit)
                    }
                }
            };

            match exit {
                UnifiedExit::Return => {
                    let finished = stack.pop().expect("active frame");
                    let result_end = finished.frame_base + finished.num_results as usize;
                    let frame_end = finished.frame_base + finished.frame_slots as usize;
                    instance.values.clear_range(result_end, frame_end.min(instance.values.capacity()));
                    match stack.last_mut() {
                        None => {
                            instance.values.set_sp(result_end);
                            return Ok(());
                        }
                        Some(parent) => {
                            cycles.charge(self.config.cost.ret);
                            match parent.tier {
                                FrameTier::Interp { .. } => {
                                    instance.values.set_sp(result_end);
                                }
                                FrameTier::Jit { .. } => {
                                    instance
                                        .values
                                        .set_sp(parent.frame_base + parent.frame_slots as usize);
                                }
                            }
                        }
                    }
                }
                UnifiedExit::Call {
                    callee,
                    resume,
                    jit_caller,
                } => {
                    // Record where to resume the caller.
                    let (caller_base, caller_defined, nargs_from_sig) = {
                        let sig = instance
                            .module
                            .func_type(callee)
                            .ok_or(TrapCode::HostError)?;
                        (act.frame_base, act.defined_index, sig.params.len())
                    };
                    match &mut act.tier {
                        FrameTier::Interp { ip } => *ip = resume,
                        FrameTier::Jit { pc, .. } => *pc = resume,
                    }
                    let callee_base = if jit_caller {
                        let site = instance.compiled[caller_defined as usize]
                            .as_ref()
                            .and_then(|c| c.call_sites.get(&(resume - 1)))
                            .copied()
                            .ok_or(TrapCode::HostError)?;
                        caller_base + site.callee_slot_base as usize
                    } else {
                        instance.values.sp() - nargs_from_sig
                    };
                    cycles.charge(self.config.cost.call);
                    self.maybe_collect(instance, &stack);

                    if instance.module.is_imported_func(callee) {
                        self.call_host(instance, callee, callee_base, cycles)?;
                        // Restore the caller's stack pointer.
                        let parent = stack.last().expect("caller");
                        let nresults = instance
                            .module
                            .func_type(callee)
                            .map(|t| t.results.len())
                            .unwrap_or(0);
                        match parent.tier {
                            FrameTier::Interp { .. } => {
                                instance.values.set_sp(callee_base + nresults);
                            }
                            FrameTier::Jit { .. } => {
                                instance
                                    .values
                                    .set_sp(parent.frame_base + parent.frame_slots as usize);
                            }
                        }
                    } else {
                        let depth = stack.len();
                        let child =
                            self.push_frame(instance, callee, callee_base, None, depth)?;
                        stack.push(child);
                    }
                }
                UnifiedExit::CallIndirect {
                    type_index,
                    table_index,
                    entry_index,
                    resume,
                    jit_caller,
                } => {
                    match &mut act.tier {
                        FrameTier::Interp { ip } => *ip = resume,
                        FrameTier::Jit { pc, .. } => *pc = resume,
                    }
                    let caller_base = act.frame_base;
                    let caller_defined = act.defined_index;
                    let table = instance
                        .tables
                        .get(table_index as usize)
                        .ok_or(TrapCode::TableOutOfBounds)?;
                    let callee = table
                        .get(entry_index)?
                        .ok_or(TrapCode::NullTableEntry)?;
                    let expected = instance
                        .module
                        .types
                        .get(type_index as usize)
                        .ok_or(TrapCode::IndirectCallTypeMismatch)?;
                    let actual = instance
                        .module
                        .func_type(callee)
                        .ok_or(TrapCode::IndirectCallTypeMismatch)?;
                    if expected != actual {
                        return Err(TrapCode::IndirectCallTypeMismatch);
                    }
                    let nargs = actual.params.len();
                    let nresults = actual.results.len();
                    let callee_base = if jit_caller {
                        let site = instance.compiled[caller_defined as usize]
                            .as_ref()
                            .and_then(|c| c.call_sites.get(&(resume - 1)))
                            .copied()
                            .ok_or(TrapCode::HostError)?;
                        caller_base + site.callee_slot_base as usize
                    } else {
                        instance.values.sp() - nargs
                    };
                    cycles.charge(self.config.cost.call_indirect);
                    self.maybe_collect(instance, &stack);
                    if instance.module.is_imported_func(callee) {
                        self.call_host(instance, callee, callee_base, cycles)?;
                        let parent = stack.last().expect("caller");
                        match parent.tier {
                            FrameTier::Interp { .. } => {
                                instance.values.set_sp(callee_base + nresults);
                            }
                            FrameTier::Jit { .. } => {
                                instance
                                    .values
                                    .set_sp(parent.frame_base + parent.frame_slots as usize);
                            }
                        }
                    } else {
                        let depth = stack.len();
                        let child =
                            self.push_frame(instance, callee, callee_base, None, depth)?;
                        stack.push(child);
                    }
                }
                UnifiedExit::Probe { exit, resume } => {
                    self.handle_jit_probe(instance, act, exit, resume)?;
                }
                UnifiedExit::Trap(code) => return Err(code),
            }
        }
        Ok(())
    }

    fn handle_jit_probe(
        &self,
        instance: &mut Instance,
        act: &mut Activation,
        exit: ProbeExit,
        resume: usize,
    ) -> Result<(), TrapCode> {
        let defined = act.defined_index as usize;
        let func_index = act.func_index;
        let (offset, operand_height) = {
            let compiled = instance.compiled[defined]
                .as_ref()
                .expect("probe fired in compiled code");
            compiled
                .probe_sites
                .get(&(resume - 1))
                .map(|m| (m.offset, m.operand_height))
                .unwrap_or((0, 0))
        };
        match exit {
            ProbeExit::Counter { counter_id } => {
                instance.instrumentation.increment_counter(counter_id);
            }
            ProbeExit::TosValue { bits, .. } => {
                // The value's type is whatever the top of stack was; the
                // branch monitor only needs zero/non-zero, so i64 suffices.
                instance.instrumentation.fire_with_value(
                    func_index,
                    offset,
                    WasmValue::I64(bits as i64),
                );
            }
            ProbeExit::Runtime { .. } | ProbeExit::Direct { .. } => {
                if self.config.deopt_on_probe {
                    // Tier-down: the frame state is flushed at runtime probes,
                    // so the interpreter can take over in place. The probe is
                    // NOT fired here — the interpreter will fire it when it
                    // re-executes the probed instruction.
                    let num_locals = instance.prepared[defined].num_locals() as usize;
                    instance
                        .values
                        .set_sp(act.frame_base + num_locals + operand_height as usize);
                    act.tier = FrameTier::Interp {
                        ip: offset as usize,
                    };
                    return Ok(());
                }
                let num_locals = instance.prepared[defined].num_locals() as usize;
                let sp_before = instance.values.sp();
                instance
                    .values
                    .set_sp(act.frame_base + num_locals + operand_height as usize);
                let Instance {
                    values,
                    instrumentation,
                    ..
                } = instance;
                let mut accessor =
                    FrameAccessor::new(values, act.frame_base, num_locals, func_index, offset);
                instrumentation.fire(&mut accessor);
                instance.values.set_sp(sp_before);
            }
        }
        match &mut act.tier {
            FrameTier::Jit { pc, .. } => *pc = resume,
            FrameTier::Interp { .. } => {}
        }
        Ok(())
    }

    fn call_host(
        &self,
        instance: &mut Instance,
        callee: u32,
        callee_base: usize,
        cycles: &mut CycleCounter,
    ) -> Result<(), TrapCode> {
        cycles.charge(self.config.cost.host_call);
        let sig = instance
            .module
            .func_type(callee)
            .cloned()
            .ok_or(TrapCode::HostError)?;
        let args: Vec<WasmValue> = sig
            .params
            .iter()
            .enumerate()
            .map(|(i, &ty)| {
                WasmValue::from_bits(
                    instance.values.read(callee_base + i),
                    ValueTag::for_type(ty),
                )
            })
            .collect();
        let Instance {
            host_funcs, heap, ..
        } = instance;
        let f = host_funcs
            .get_mut(callee as usize)
            .and_then(|f| f.as_mut())
            .ok_or(TrapCode::HostError)?;
        let results = f(heap, &args)?;
        if results.len() != sig.results.len() {
            return Err(TrapCode::HostError);
        }
        for (i, value) in results.iter().enumerate() {
            instance.values.write_value(callee_base + i, *value);
        }
        Ok(())
    }

    fn maybe_collect(&self, instance: &mut Instance, stack: &[Activation]) {
        if !instance.heap.should_collect() {
            return;
        }
        let roots = self.collect_roots(instance, stack);
        instance.heap.collect(&roots);
        instance.metrics.gc_count += 1;
    }

    fn collect_roots(&self, instance: &Instance, stack: &[Activation]) -> Vec<u32> {
        let uses_stackmaps = self
            .config
            .baseline_options()
            .map(|o| o.tagging.uses_stackmaps())
            .unwrap_or(false);
        if uses_stackmaps {
            let mut frames = Vec::new();
            for act in stack {
                if let FrameTier::Jit { pc, .. } = &act.tier {
                    if let Some(compiled) = instance.compiled[act.defined_index as usize].as_ref() {
                        // The frame is paused at the call instruction before
                        // its resume point.
                        if *pc > 0 {
                            frames.push(StackmapFrame {
                                compiled,
                                frame_base: act.frame_base,
                                call_inst_index: *pc - 1,
                            });
                        }
                    }
                }
            }
            let mut roots = scan_roots_via_stackmaps(&instance.values, &frames);
            // Interpreter frames and globals still use tags.
            roots.extend(scan_roots_via_tags(&instance.values));
            roots.extend(global_roots(&instance.globals));
            roots.sort_unstable();
            roots.dedup();
            roots
        } else {
            let mut roots = scan_roots_via_tags(&instance.values);
            roots.extend(global_roots(&instance.globals));
            roots.sort_unstable();
            roots.dedup();
            roots
        }
    }
}

fn global_roots(globals: &[GlobalSlot]) -> Vec<u32> {
    globals
        .iter()
        .filter(|g| g.tag == ValueTag::Ref && g.bits != machine::values::NULL_REF_BITS)
        .map(|g| g.bits as u32)
        .collect()
}

fn eval_const(expr: &ConstExpr, globals: &[GlobalSlot]) -> WasmValue {
    match *expr {
        ConstExpr::I32(v) => WasmValue::I32(v),
        ConstExpr::I64(v) => WasmValue::I64(v),
        ConstExpr::F32(v) => WasmValue::F32(v),
        ConstExpr::F64(v) => WasmValue::F64(v),
        ConstExpr::RefNull(t) => WasmValue::default_for(t),
        ConstExpr::RefFunc(f) => WasmValue::FuncRef(Some(f)),
        ConstExpr::GlobalGet(i) => globals
            .get(i as usize)
            .map(|g| g.value())
            .unwrap_or(WasmValue::I32(0)),
    }
}

/// A tier-independent view of why a frame stopped executing.
enum UnifiedExit {
    Return,
    Call {
        callee: u32,
        resume: usize,
        /// True when the caller is a JIT frame, whose callee frame base is
        /// found in the compiled call-site metadata; interpreter callers use
        /// the dynamic stack pointer instead.
        jit_caller: bool,
    },
    CallIndirect {
        type_index: u32,
        table_index: u32,
        entry_index: u32,
        resume: usize,
        jit_caller: bool,
    },
    Probe {
        exit: ProbeExit,
        resume: usize,
    },
    Trap(TrapCode),
}

impl UnifiedExit {
    fn from_interp(exit: InterpExit) -> UnifiedExit {
        match exit {
            InterpExit::Return => UnifiedExit::Return,
            InterpExit::Call {
                func_index,
                resume_ip,
            } => UnifiedExit::Call {
                callee: func_index,
                resume: resume_ip,
                jit_caller: false,
            },
            InterpExit::CallIndirect {
                type_index,
                table_index,
                entry_index,
                resume_ip,
            } => UnifiedExit::CallIndirect {
                type_index,
                table_index,
                entry_index,
                resume: resume_ip,
                jit_caller: false,
            },
            InterpExit::Trap(code) => UnifiedExit::Trap(code),
        }
    }

    fn from_cpu(exit: CpuExit) -> UnifiedExit {
        match exit {
            CpuExit::Return => UnifiedExit::Return,
            CpuExit::Call {
                func_index,
                resume_pc,
            } => UnifiedExit::Call {
                callee: func_index,
                resume: resume_pc,
                jit_caller: true,
            },
            CpuExit::CallIndirect {
                type_index,
                table_index,
                entry_index,
                resume_pc,
            } => UnifiedExit::CallIndirect {
                type_index,
                table_index,
                entry_index,
                resume: resume_pc,
                jit_caller: true,
            },
            CpuExit::Probe { exit, resume_pc } => UnifiedExit::Probe {
                exit,
                resume: resume_pc,
            },
            CpuExit::Trap(code) => UnifiedExit::Trap(code),
        }
    }
}
