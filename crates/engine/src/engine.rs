//! The multi-tier engine: instances, the frame executor, and metrics.
//!
//! The engine owns the pieces the paper's Wizard engine owns: module loading
//! and validation, per-function preparation (sidetables), tier selection and
//! compilation (baseline or optimizing), the shared tagged value stack,
//! linear memory/globals/tables, the host GC heap, instrumentation, and the
//! unified execution driver that lets interpreter frames and JIT frames call
//! each other freely (tier-up happens at function entry once a function gets
//! hot; tier-down to the interpreter can happen when a probe fires in JIT
//! code).
//!
//! Compilation itself lives in [`crate::pipeline`]: every instance holds an
//! immutable, shareable [`CompiledModule`] artifact behind an [`Arc`], while
//! the instance keeps only mutable runtime state. An engine can additionally
//! be wired to a [`CodeCache`] (shared artifacts across instantiations) and
//! a [`BackgroundCompiler`] (off-thread tier-up).

use crate::cache::{CacheKey, CodeCache};
use crate::config::{EngineConfig, TierPolicy};
use crate::gc::{scan_roots_via_stackmaps, scan_roots_via_tags, Heap, StackmapFrame};
use crate::image::MemoryImage;
use crate::monitor::Instrumentation;
use crate::pipeline::{self, BackgroundCompiler, CompileTier, CompiledArtifact, CompiledModule};
use crate::trap::{Backtrace, Frame, FrameTierTag, TrapInfo, TrapReason};
use interp::interp::{InterpExit, Interpreter};
use interp::probe::{FrameAccessor, ProbeSink};
use machine::cost::CycleCounter;
use machine::cpu::{Cpu, CpuExit, CpuState, EpochSampler, ExecContext, Meter, OsrHook, ProbeExit};
use machine::inst::TrapCode;
use machine::memory::{LinearMemory, Table};
use machine::values::{GlobalSlot, ValueStack, ValueTag, WasmValue};
use spc::CompiledFunction;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use telemetry::{EventKind, Telemetry};
use wasm::module::{ImportKind, Module};

/// A host (imported) function. `Send` so instances (and with them, instance
/// pools) can move between serving workers.
pub type HostFunc =
    Box<dyn FnMut(&mut Heap, &[WasmValue]) -> Result<Vec<WasmValue>, TrapCode> + Send>;

/// Host imports provided at instantiation, keyed by `(module, name)`.
#[derive(Default)]
pub struct Imports {
    funcs: HashMap<(String, String), HostFunc>,
}

impl Imports {
    /// No imports.
    pub fn new() -> Imports {
        Imports::default()
    }

    /// Provides a host function for `(module, name)`.
    pub fn func(
        mut self,
        module: &str,
        name: &str,
        f: impl FnMut(&mut Heap, &[WasmValue]) -> Result<Vec<WasmValue>, TrapCode> + Send + 'static,
    ) -> Imports {
        self.funcs
            .insert((module.to_string(), name.to_string()), Box::new(f));
        self
    }
}

impl fmt::Debug for Imports {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Imports").field("funcs", &self.funcs.len()).finish()
    }
}

/// Errors produced while building an instance.
#[derive(Debug)]
pub enum EngineError {
    /// Validation failed.
    Validate(wasm::validate::ValidateError),
    /// Compilation failed.
    Compile(spc::CompileError),
    /// Instantiation failed (missing import, bad segment, ...).
    Instantiate(String),
    /// Execution of the start function trapped.
    Start(TrapCode),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Validate(e) => write!(f, "{e}"),
            EngineError::Compile(e) => write!(f, "{e}"),
            EngineError::Instantiate(msg) => write!(f, "instantiation error: {msg}"),
            EngineError::Start(code) => write!(f, "start function trapped: {code}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Timing and counting data for one instance, in the units the paper's
/// figures use: wall-clock time for setup/compilation (real work done by this
/// reproduction's compilers) and simulated cycles for execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunMetrics {
    /// Wall-clock time spent in instantiation (validation, preparation,
    /// eager compilation, segment initialization).
    pub setup_wall: Duration,
    /// Time spent compiling eagerly at instantiation time, summed over the
    /// per-function compile durations. With one compile worker (the
    /// default) this is wall-clock time inside instantiation; with more it
    /// is aggregate compile CPU time across the workers, which can exceed
    /// [`RunMetrics::setup_wall`] while the elapsed compilation wall-clock
    /// (part of `setup_wall`) shrinks.
    pub compile_wall: Duration,
    /// Wall-clock time spent compiling after instantiation in the *baseline*
    /// tier: lazy first-call compiles, tier-up compiles, and background
    /// compiles performed on this instance's behalf (accounted when the
    /// published code is first observed). Kept separate from
    /// [`RunMetrics::compile_wall`] so the deferred-compilation confounder is
    /// visible; sum everything via [`RunMetrics::total_compile_wall`] when
    /// only the total matters.
    pub lazy_compile_wall: Duration,
    /// Wall-clock time spent in the optimizing compiler on this instance's
    /// behalf — eager (optimizing-only configurations) and tier-up promotion
    /// compiles alike. The optimizing tier is expected to be an order of
    /// magnitude slower to run than the baseline compiler; this bucket makes
    /// that cost visible next to the cycles it buys
    /// ([`RunMetrics::opt_exec_cycles`]).
    pub opt_compile_wall: Duration,
    /// True if instantiation reused a shared artifact from the engine's
    /// [`CodeCache`] instead of validating, preparing, and compiling — the
    /// observable form of a warm instantiation.
    pub cache_hit: bool,
    /// Cumulative hit counter of the attached [`CodeCache`], snapshotted
    /// right after this instantiation's lookup (zero without a cache).
    /// Together with [`RunMetrics::cache_misses`] and
    /// [`RunMetrics::cache_entries`] this makes cache behavior under
    /// concurrent serving observable per request, without a side channel to
    /// the cache itself. Only the cheap counters are snapshotted here —
    /// resident code size needs a walk over every cached artifact
    /// ([`CodeCache::stats`]), which has no business on the instantiation
    /// hot path; harnesses report it once per batch instead.
    pub cache_hits: u64,
    /// Cumulative miss counter of the attached [`CodeCache`], snapshotted
    /// right after this instantiation's lookup (zero without a cache).
    pub cache_misses: u64,
    /// Entries resident in the attached [`CodeCache`], snapshotted right
    /// after this instantiation's lookup (zero without a cache).
    pub cache_entries: u64,
    /// Bytes of Wasm function bodies compiled.
    pub compiled_wasm_bytes: u64,
    /// Bytes of machine code produced by the configured
    /// [`crate::CodeBackend`]: the virtual ISA's per-instruction estimate, or real
    /// encoded bytes when the x86-64 backend is selected.
    pub compiled_machine_bytes: u64,
    /// Functions compiled.
    pub functions_compiled: u32,
    /// Simulated cycles of execution ("main execution time").
    pub exec_cycles: u64,
    /// The subset of [`RunMetrics::exec_cycles`] spent executing
    /// optimizing-tier code.
    pub opt_exec_cycles: u64,
    /// Functions whose code was installed *after* instantiation on this
    /// instance's behalf: lazy first-call compiles, interpreter→baseline
    /// tier-ups, and baseline→optimizing promotions each count once.
    pub tiered_up_functions: u32,
    /// Number of Wasm calls executed.
    pub calls_executed: u64,
    /// Garbage collections performed.
    pub gc_count: u64,
    /// Value-tag store instructions emitted by the compiler.
    pub tag_stores_emitted: u64,
    /// Calls that ended in a trap (any [`TrapReason`], including fuel
    /// exhaustion and epoch interruption).
    pub traps: u64,
    /// Per-reason trap counts, indexed by [`TrapReason::index`]. A fixed
    /// array (not a map) keeps [`RunMetrics`] `Copy`.
    pub trap_counts: [u64; 12],
}

impl RunMetrics {
    /// Total wall-clock compile time attributed to this instance, eager plus
    /// deferred (lazy / tier-up / background) plus the optimizing tier.
    pub fn total_compile_wall(&self) -> Duration {
        self.compile_wall + self.lazy_compile_wall + self.opt_compile_wall
    }

    /// How many calls trapped with `reason`.
    pub fn trap_count(&self, reason: TrapReason) -> u64 {
        self.trap_counts[reason.index()]
    }
}

/// Whether a compilation ran at instantiation time or after it, which
/// decides the [`RunMetrics`] bucket its wall-clock time lands in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CompileTiming {
    Eager,
    Deferred,
}

/// One live, runnable instance of a module under a specific engine
/// configuration.
///
/// The instance owns only *mutable runtime state* — value stack, linear
/// memory, globals, tables, heap, call counts, instrumentation data, and
/// metrics. Everything immutable (the module, validation output, sidetables,
/// and compiled code) lives in the shared [`CompiledModule`] artifact, so
/// many instances of the same module can share one copy of the compiled
/// code across threads.
pub struct Instance {
    artifact: Arc<CompiledModule>,
    call_counts: Vec<u32>,
    /// Per-function loop back-edge counts, incremented by the OSR hook at
    /// the fused meter-check sites. Like [`Instance::call_counts`], this is
    /// earned tier state: a pool reset keeps it.
    osr_counts: Vec<u32>,
    /// Functions this instance has handed to the background compiler and
    /// not yet observed published, per tier (`[baseline, opt]`; used to
    /// attribute the off-thread compile time to this instance's metrics
    /// exactly once).
    background_pending: Vec<[bool; 2]>,
    memory: Option<LinearMemory>,
    globals: Vec<GlobalSlot>,
    tables: Vec<Table>,
    values: ValueStack,
    /// The host garbage-collected heap.
    pub heap: Heap,
    /// Attached instrumentation (monitors and probe registry).
    pub instrumentation: Instrumentation,
    host_funcs: Vec<Option<HostFunc>>,
    /// Remaining fuel, when fuel metering is armed via
    /// [`Instance::set_fuel`]. `None` runs unmetered even under a metering
    /// configuration (the compiled check sequences become no-ops).
    fuel: Option<u64>,
    /// The fuel budget [`Instance::set_fuel`] last armed, so
    /// [`Instance::fuel_consumed`] can report spend without the caller
    /// keeping the initial number around.
    initial_fuel: u64,
    /// Epoch deadline: execution traps with [`TrapCode::Interrupted`] once
    /// the engine's shared epoch counter reaches this value.
    epoch_deadline: Option<u64>,
    /// Diagnostics for the most recent trap: the classified reason plus the
    /// symbolicated cross-tier backtrace captured when it fired.
    last_trap: Option<TrapInfo>,
    /// Accumulated metrics.
    pub metrics: RunMetrics,
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Instance")
            .field("funcs", &self.module().num_funcs())
            .field("compiled", &self.artifact.compiled_count())
            .field("metrics", &self.metrics)
            .finish()
    }
}

impl Instance {
    /// The instantiated module.
    pub fn module(&self) -> &Module {
        self.artifact.module()
    }

    /// The shared compilation artifact this instance executes from.
    pub fn artifact(&self) -> &Arc<CompiledModule> {
        &self.artifact
    }

    /// The compiled code for a defined function, if it has been compiled.
    pub fn compiled_code(&self, defined_index: u32) -> Option<&CompiledFunction> {
        self.artifact.code(defined_index)
    }

    /// The number of times each defined function has been called.
    pub fn call_count(&self, defined_index: u32) -> u32 {
        self.call_counts.get(defined_index as usize).copied().unwrap_or(0)
    }

    /// Read a global's current value by index.
    pub fn global_value(&self, index: u32) -> Option<WasmValue> {
        self.globals.get(index as usize).map(|g| g.value())
    }

    /// Arms deterministic fuel metering with a budget of `fuel` units.
    ///
    /// Requires an engine configuration built with
    /// [`EngineConfig::with_metering`](crate::EngineConfig::with_metering):
    /// without it no tier contains check sequences and the budget is never
    /// consumed. When the budget runs out, execution traps with
    /// [`TrapCode::OutOfFuel`] at the same instruction in every tier.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = Some(fuel);
        self.initial_fuel = fuel;
    }

    /// Remaining fuel, or `None` if fuel metering was never armed.
    pub fn fuel_remaining(&self) -> Option<u64> {
        self.fuel
    }

    /// Fuel consumed since the last [`Instance::set_fuel`], or `None` if
    /// fuel metering was never armed.
    pub fn fuel_consumed(&self) -> Option<u64> {
        self.fuel.map(|remaining| self.initial_fuel - remaining)
    }

    /// Sets the epoch deadline: execution traps with
    /// [`TrapCode::Interrupted`] at the next check site (loop back-edge or
    /// call boundary) once the engine's shared epoch counter reaches
    /// `deadline`. Requires a metering configuration for in-loop checks;
    /// call-boundary checks work regardless.
    pub fn set_epoch_deadline(&mut self, deadline: u64) {
        self.epoch_deadline = Some(deadline);
    }

    /// Clears the epoch deadline so execution can resume after an
    /// interruption.
    pub fn clear_epoch_deadline(&mut self) {
        self.epoch_deadline = None;
    }

    /// Diagnostics for the most recent trap on this instance, if any call
    /// has trapped since instantiation (or the last pool reset). The engine
    /// captures these for *every* trapping call — including fuel exhaustion
    /// and epoch interruption — at the moment the trap fires, so the
    /// backtrace reflects the live activation stack.
    pub fn last_trap(&self) -> Option<&TrapInfo> {
        self.last_trap.as_ref()
    }

    /// Snapshots this instance's mutable state (memory contents, globals,
    /// tables) as a [`MemoryImage`]. Captured immediately after
    /// instantiation, the image is the pre-initialized state a pooled
    /// instance resets to on a warm checkout.
    pub fn capture_image(&self) -> MemoryImage {
        MemoryImage::capture(self.memory.as_ref(), &self.globals, &self.tables)
    }

    /// Rewinds this instance to `image` plus a pristine execution state:
    /// memory/globals/tables are restored by memcpy, the value stack's
    /// dirtied region is scrubbed, the host heap is replaced, and
    /// fuel/deadline arming is cleared. Metrics restart with
    /// [`RunMetrics::cache_hit`] set — a reset *is* the warm-instantiation
    /// path.
    ///
    /// Deliberately kept: call counts, accumulated instrumentation data,
    /// and already-published compiled code, so a pooled instance stays in
    /// its earned tier. Tier choice never changes results — that is the
    /// conformance matrix's invariant, and the pool-reset differential
    /// tests re-prove it against cold instantiation directly.
    pub fn reset_from_image(&mut self, image: &MemoryImage, gc_threshold: usize) {
        image.restore_into(&mut self.memory, &mut self.globals, &mut self.tables);
        self.values.reset();
        self.heap = Heap::with_threshold(gc_threshold);
        self.fuel = None;
        self.initial_fuel = 0;
        self.epoch_deadline = None;
        self.last_trap = None;
        self.metrics = RunMetrics {
            cache_hit: true,
            ..RunMetrics::default()
        };
    }
}

enum FrameTier {
    Interp {
        ip: usize,
    },
    // The register file is boxed so interpreter activations stay small. The
    // compile tier is pinned per activation: a frame keeps running the code
    // it started in even if a higher tier publishes mid-activation.
    Jit {
        pc: usize,
        cpu: Box<CpuState>,
        tier: CompileTier,
    },
}

impl FrameTier {
    fn jit_tier(&self) -> Option<CompileTier> {
        match self {
            FrameTier::Interp { .. } => None,
            FrameTier::Jit { tier, .. } => Some(*tier),
        }
    }

    /// The backtrace tag for this frame's tier.
    fn tag(&self) -> FrameTierTag {
        match self.jit_tier() {
            None => FrameTierTag::Interp,
            Some(CompileTier::Baseline) => FrameTierTag::Baseline,
            Some(CompileTier::Opt) => FrameTierTag::Opt,
        }
    }
}

fn tier_index(tier: CompileTier) -> usize {
    match tier {
        CompileTier::Baseline => 0,
        CompileTier::Opt => 1,
    }
}

struct Activation {
    func_index: u32,
    defined_index: u32,
    frame_base: usize,
    num_results: u32,
    frame_slots: u32,
    tier: FrameTier,
    /// One declined OSR poll is absorbed before the next can fire, so a
    /// loop whose transition is pending (or was refused) always makes a
    /// full iteration of progress between polls.
    osr_skip: bool,
    /// OSR permanently disabled for this activation (no entry for the loop,
    /// compile failure, or a frame that cannot grow to the optimized size).
    osr_off: bool,
    /// Bytecode offset of the call instruction this frame last suspended
    /// at. This is the frame's position in a backtrace while a callee runs —
    /// and where traps raised *at the call boundary itself* (stack
    /// exhaustion, epoch interruption in `push_frame`, indirect-call
    /// dispatch failures, host errors) are attributed.
    site_offset: u32,
}

/// The engine: a configuration plus the machinery to instantiate and run
/// modules under it.
///
/// Engines are cheap to clone; clones share the attached [`CodeCache`] and
/// [`BackgroundCompiler`] (both behind [`Arc`]s), which is how a serving
/// setup gives every worker thread its own engine handle over one shared
/// cache and compile pool.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    config: EngineConfig,
    cache: Option<Arc<CodeCache>>,
    background: Option<Arc<BackgroundCompiler>>,
    /// The shared epoch counter for preemption. Engine clones (and engines
    /// built by [`crate::multi::MultiEngine`]) share one counter, so a
    /// supervisor thread bumping it preempts every instance with an armed
    /// deadline at its next check site.
    epoch: Arc<AtomicU64>,
    /// The engine's telemetry handle. Disabled by default (one never-taken
    /// branch per site); clones share the sink, so a whole serving stack
    /// reports into one coherent trace.
    telemetry: Telemetry,
}

impl Engine {
    /// Creates an engine with the given configuration. A fresh telemetry
    /// sink is attached when the configuration says
    /// [`EngineConfig::telemetry`]; use [`Engine::with_telemetry`] to share
    /// an existing sink instead.
    pub fn new(config: EngineConfig) -> Engine {
        let telemetry = if config.telemetry {
            Telemetry::enabled()
        } else {
            Telemetry::disabled()
        };
        Engine {
            config,
            cache: None,
            background: None,
            epoch: Arc::new(AtomicU64::new(0)),
            telemetry,
        }
    }

    /// Attaches a shared code cache: instantiations look up the
    /// (content-hash, options-fingerprint, backend, instrumentation) key and
    /// reuse the whole compiled artifact on a hit, skipping validation,
    /// preparation, and compilation.
    pub fn with_code_cache(mut self, cache: Arc<CodeCache>) -> Engine {
        self.cache = Some(cache);
        self
    }

    /// Attaches a background compile pool: lazy and tier-up compilations are
    /// enqueued there and execution continues in the interpreter until the
    /// compiled code is published into the shared artifact.
    pub fn with_background_compiler(mut self, pool: Arc<BackgroundCompiler>) -> Engine {
        self.background = Some(pool);
        self
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The attached code cache, if any.
    pub fn code_cache(&self) -> Option<&Arc<CodeCache>> {
        self.cache.as_ref()
    }

    /// The attached background compile pool, if any.
    pub fn background_compiler(&self) -> Option<&Arc<BackgroundCompiler>> {
        self.background.as_ref()
    }

    /// Shares an epoch counter with other engines (see [`Engine::epoch`]).
    pub fn with_epoch(mut self, epoch: Arc<AtomicU64>) -> Engine {
        self.epoch = epoch;
        self
    }

    /// Shares a telemetry handle (and with it, the sink behind it) with
    /// other engines — the way a serving stack collects every worker's
    /// events into one trace. Passing a disabled handle turns telemetry
    /// off regardless of [`EngineConfig::telemetry`].
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Engine {
        self.telemetry = telemetry;
        self
    }

    /// The engine's telemetry handle (disabled unless configured or shared
    /// in).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The engine's epoch counter. Clone the [`Arc`] to bump it from a
    /// supervisor thread.
    pub fn epoch(&self) -> &Arc<AtomicU64> {
        &self.epoch
    }

    /// Advances the epoch by one, preempting every instance whose deadline
    /// is now reached at its next check site.
    pub fn increment_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Instantiates a module: validates, prepares, optionally compiles
    /// eagerly, initializes memory/globals/tables and segments, and runs the
    /// start function.
    ///
    /// # Errors
    ///
    /// Returns an error if validation, compilation, import resolution, or
    /// segment initialization fails, or if the start function traps.
    pub fn instantiate(
        &self,
        module: &Module,
        imports: Imports,
        instrumentation: Instrumentation,
    ) -> Result<Instance, EngineError> {
        let setup_start = Instant::now();

        // Obtain the shared artifact: from the code cache when attached (a
        // hit skips validation, preparation, and all compilation), freshly
        // built otherwise.
        let mut cache_hit = false;
        let mut cache_stats = None;
        let artifact: Arc<CompiledModule> = match &self.cache {
            Some(cache) => {
                let key = CacheKey::for_instantiation(&self.config, module, &instrumentation);
                let found = match cache.lookup(&key) {
                    Some(shared) => {
                        cache_hit = true;
                        shared
                    }
                    None => {
                        let built = Arc::new(CompiledModule::build(module.clone())?);
                        cache.insert(key, Arc::clone(&built));
                        built
                    }
                };
                if self.telemetry.is_enabled() {
                    self.telemetry.emit(EventKind::CacheLookup { hit: cache_hit });
                    if let Some(metrics) = self.telemetry.metrics() {
                        metrics
                            .counter(if cache_hit { "cache.hits" } else { "cache.misses" })
                            .inc();
                    }
                }
                // Snapshot only the atomic counters and the entry count:
                // walking every artifact for resident code size is too
                // expensive for the instantiation hot path (see
                // [`CodeCache::stats`] for the full snapshot).
                cache_stats = Some((cache.hits(), cache.misses(), cache.len() as u64));
                found
            }
            None => Arc::new(CompiledModule::build(module.clone())?),
        };

        // Resolve host imports.
        let mut imports = imports;
        let mut host_funcs = Vec::new();
        for import in &module.imports {
            if let ImportKind::Func(_) = import.kind {
                let key = (import.module.clone(), import.name.clone());
                match imports.funcs.remove(&key) {
                    Some(f) => host_funcs.push(Some(f)),
                    None => {
                        return Err(EngineError::Instantiate(format!(
                            "missing import {}.{}",
                            import.module, import.name
                        )))
                    }
                }
            }
        }

        // Memories, globals, tables, and segment initialization — the whole
        // state-initialization half of instantiation lives in
        // [`MemoryImage::build`], shared with snapshot capture/restore.
        // Declared limits are clamped against the tenant's resource
        // ceilings there, so `memory.grow` can never exceed the tenant
        // budget.
        let (memory, globals, tables) =
            MemoryImage::build(module, &self.config.limits)?.into_parts();

        let num_defined = module.funcs.len();
        let mut instance = Instance {
            artifact,
            call_counts: vec![0; num_defined],
            osr_counts: vec![0; num_defined],
            background_pending: vec![[false; 2]; num_defined],
            memory,
            globals,
            tables,
            values: ValueStack::default(),
            heap: Heap::with_threshold(self.config.gc_threshold),
            instrumentation,
            host_funcs,
            fuel: None,
            initial_fuel: 0,
            epoch_deadline: None,
            last_trap: None,
            metrics: RunMetrics {
                cache_hit,
                cache_hits: cache_stats.map_or(0, |(hits, _, _)| hits),
                cache_misses: cache_stats.map_or(0, |(_, misses, _)| misses),
                cache_entries: cache_stats.map_or(0, |(_, _, entries)| entries),
                ..RunMetrics::default()
            },
        };

        // Eager compilation, sharded across the configured worker count.
        // Slots already published into a cached artifact are skipped, so a
        // warm instantiation compiles nothing and only the instance that
        // actually compiled a function accounts its time.
        let needs_eager = !self.config.lazy_compile
            && !matches!(self.config.tier, TierPolicy::InterpreterOnly);
        if needs_eager {
            let published = pipeline::compile_eager(
                &self.config,
                &instance.artifact,
                &instance.instrumentation,
                &self.telemetry,
            )
            .map_err(EngineError::Compile)?;
            let tier = pipeline::eager_tier(&self.config);
            for defined in published {
                let compiled = instance
                    .artifact
                    .artifact_for(defined, tier)
                    .expect("published function has an artifact");
                account_compile(&mut instance.metrics, compiled, CompileTiming::Eager, tier);
            }
        }
        instance.metrics.setup_wall = setup_start.elapsed();

        // Start function.
        if let Some(start) = module.start {
            self.call(&mut instance, start, &[]).map_err(EngineError::Start)?;
        }
        Ok(instance)
    }

    /// Calls an exported function by name.
    ///
    /// # Errors
    ///
    /// Returns the trap that terminated execution, or `HostError` if the
    /// export does not exist.
    pub fn call_export(
        &self,
        instance: &mut Instance,
        name: &str,
        args: &[WasmValue],
    ) -> Result<Vec<WasmValue>, TrapCode> {
        let func_index = instance
            .module()
            .exported_func(name)
            .ok_or(TrapCode::HostError)?;
        self.call(instance, func_index, args)
    }

    /// Calls a function by index with the given arguments.
    ///
    /// # Errors
    ///
    /// Returns the trap that terminated execution.
    pub fn call(
        &self,
        instance: &mut Instance,
        func_index: u32,
        args: &[WasmValue],
    ) -> Result<Vec<WasmValue>, TrapCode> {
        if instance.module().is_imported_func(func_index) {
            return Err(TrapCode::HostError);
        }
        let num_results = instance
            .module()
            .func_type(func_index)
            .map(|t| t.results.clone())
            .ok_or(TrapCode::HostError)?;

        let frame_base = 0usize;
        let mut cycles = CycleCounter::new();
        let exec_result = self.run_call(instance, func_index, args, frame_base, &mut cycles);
        instance.metrics.exec_cycles += cycles.total();
        if self.telemetry.is_enabled() {
            if let Err(code) = &exec_result {
                self.telemetry.emit(match code {
                    TrapCode::OutOfFuel => EventKind::FuelExhausted,
                    TrapCode::Interrupted => EventKind::EpochInterrupt,
                    code => {
                        // `run_call` captured the diagnostics as the stack
                        // unwound; the event carries the innermost frame.
                        let top = instance
                            .last_trap
                            .as_ref()
                            .and_then(|t| t.backtrace.frames().first());
                        EventKind::Trap {
                            reason: TrapReason::from(*code).wast_message(),
                            func: top.map_or(0, |f| f.func_index),
                            offset: top.map_or(0, |f| f.offset),
                            depth: instance
                                .last_trap
                                .as_ref()
                                .map_or(0, |t| t.backtrace.depth() as u32),
                        }
                    }
                });
            }
        }
        exec_result?;
        // Read results from the frame base.
        let out = num_results
            .iter()
            .enumerate()
            .map(|(i, &ty)| {
                WasmValue::from_bits(
                    instance.values.read(frame_base + i),
                    ValueTag::for_type(ty),
                )
            })
            .collect();
        Ok(out)
    }

    // ---- Internal machinery -------------------------------------------------

    /// Compiles `defined` for `tier` in the execution thread unless it is
    /// already published, attributing newly-published work to this
    /// instance's deferred-compile metrics.
    fn ensure_compiled(
        &self,
        instance: &mut Instance,
        defined: u32,
        tier: CompileTier,
    ) -> Result<(), spc::CompileError> {
        if instance.artifact.artifact_for(defined, tier).is_some() {
            self.observe_published(instance, defined, tier);
            return Ok(());
        }
        let func_index = instance.artifact.module().defined_to_func_index(defined);
        let probes = instance.instrumentation.sites_for(func_index);
        let profile = match tier {
            CompileTier::Opt => Some(instance.instrumentation.func_profile(func_index)),
            CompileTier::Baseline => None,
        };
        let compiled = pipeline::compile_function_traced(
            &self.telemetry,
            &self.config,
            tier,
            instance.artifact.module(),
            func_index,
            instance.artifact.func_info(defined),
            &probes,
            profile.as_ref(),
        )?;
        if instance.artifact.publish_for(defined, tier, compiled) {
            let published = instance
                .artifact
                .artifact_for(defined, tier)
                .expect("just published");
            account_compile(&mut instance.metrics, published, CompileTiming::Deferred, tier);
            self.telemetry.emit(EventKind::TierUp {
                func: func_index,
                tier: pipeline::telemetry_tier(tier),
            });
        } else {
            // A background worker (or another instance sharing the artifact)
            // won the publication race.
            self.observe_published(instance, defined, tier);
        }
        Ok(())
    }

    /// Accounts a background compilation into this instance's metrics the
    /// first time its published result is observed at a call boundary.
    fn observe_published(&self, instance: &mut Instance, defined: u32, tier: CompileTier) {
        if !instance.background_pending[defined as usize][tier_index(tier)] {
            return;
        }
        instance.background_pending[defined as usize][tier_index(tier)] = false;
        if let Some(compiled) = instance.artifact.artifact_for(defined, tier) {
            account_compile(&mut instance.metrics, compiled, CompileTiming::Deferred, tier);
        }
    }

    /// Hands the compilation of `defined` for `tier` to the background pool
    /// (at most once per tier), snapshotting the branch profile for
    /// optimizing-tier jobs.
    fn enqueue_background(
        &self,
        pool: &BackgroundCompiler,
        instance: &mut Instance,
        defined: u32,
        tier: CompileTier,
    ) {
        if instance.background_pending[defined as usize][tier_index(tier)] {
            return;
        }
        let func_index = instance.artifact.module().defined_to_func_index(defined);
        let probes = instance.instrumentation.sites_for(func_index);
        let profile = match tier {
            CompileTier::Opt => Some(instance.instrumentation.func_profile(func_index)),
            CompileTier::Baseline => None,
        };
        if pool.enqueue_tier(
            Arc::clone(&instance.artifact),
            defined,
            probes,
            self.config.clone(),
            tier,
            profile,
        ) {
            instance.background_pending[defined as usize][tier_index(tier)] = true;
        }
    }

    /// Decides the tier for a new activation of `defined`, compiling lazily
    /// or on tier-up / promotion as needed. With a background pool attached,
    /// deferred compilations are enqueued off-thread and the function keeps
    /// running in the best already-published tier until the new code lands.
    fn choose_tier(
        &self,
        instance: &mut Instance,
        defined: u32,
    ) -> Result<Option<CompileTier>, TrapCode> {
        instance.call_counts[defined as usize] =
            instance.call_counts[defined as usize].saturating_add(1);
        let want: Option<CompileTier> = match &self.config.tier {
            TierPolicy::InterpreterOnly => None,
            TierPolicy::BaselineOnly(_) => Some(CompileTier::Baseline),
            TierPolicy::OptimizingOnly => Some(CompileTier::Opt),
            TierPolicy::Tiered {
                threshold,
                opt_threshold,
                ..
            } => {
                let calls = instance.call_counts[defined as usize];
                match opt_threshold {
                    Some(ot) if calls > *ot => Some(CompileTier::Opt),
                    _ if calls > *threshold => Some(CompileTier::Baseline),
                    _ => None,
                }
            }
        };
        let Some(want_tier) = want else {
            return Ok(None);
        };
        if instance.artifact.artifact_for(defined, want_tier).is_some() {
            self.observe_published(instance, defined, want_tier);
            if want_tier == CompileTier::Opt {
                // A baseline compile this instance requested may have been
                // superseded by the promotion without ever being activated;
                // settle its pending observation so the work is accounted.
                self.observe_published(instance, defined, CompileTier::Baseline);
            }
            return Ok(Some(want_tier));
        }
        if let Some(pool) = &self.background {
            let pool = Arc::clone(pool);
            self.enqueue_background(&pool, instance, defined, want_tier);
            // Every call boundary is a tier boundary: keep running in the
            // best tier already published and pick up the new code once a
            // later call observes the filled slot.
            if want_tier == CompileTier::Opt
                && instance
                    .artifact
                    .artifact_for(defined, CompileTier::Baseline)
                    .is_some()
            {
                self.observe_published(instance, defined, CompileTier::Baseline);
                return Ok(Some(CompileTier::Baseline));
            }
            return Ok(None);
        }
        self.ensure_compiled(instance, defined, want_tier)
            .map_err(|_| TrapCode::HostError)?;
        Ok(Some(want_tier))
    }

    fn push_frame(
        &self,
        instance: &mut Instance,
        func_index: u32,
        frame_base: usize,
        init_locals_from_args: Option<&[WasmValue]>,
        depth: usize,
    ) -> Result<Activation, TrapCode> {
        let defined = func_index
            .checked_sub(instance.module().num_imported_funcs())
            .ok_or(TrapCode::HostError)?;
        let max_depth = self
            .config
            .limits
            .call_depth
            .map_or(self.config.max_call_depth, |d| {
                d.min(self.config.max_call_depth)
            });
        if depth >= max_depth {
            return Err(TrapCode::StackOverflow);
        }
        // The call boundary is a preemption point in every tier: functions
        // that recurse instead of looping still observe the epoch.
        if let Some(deadline) = instance.epoch_deadline {
            if self.epoch.load(Ordering::Relaxed) >= deadline {
                return Err(TrapCode::Interrupted);
            }
        }
        let jit_tier = self.choose_tier(instance, defined)?;
        // The artifact is immutable and behind an `Arc`, so a cheap handle
        // clone sidesteps simultaneous-borrow gymnastics with the mutable
        // value stack below.
        let artifact = Arc::clone(&instance.artifact);
        let prepared = artifact.prepared(defined);
        let num_params = prepared.num_params as usize;
        let num_results = prepared.num_results;
        let frame_slots = match jit_tier {
            Some(tier) => artifact
                .code_for(defined, tier)
                .map(|c| c.frame_slots)
                .unwrap_or(prepared.frame_slots()),
            None => prepared.frame_slots(),
        };
        if instance.values.capacity() < frame_base + frame_slots as usize {
            return Err(TrapCode::StackOverflow);
        }

        // Arguments (when provided by the host; Wasm callers already wrote
        // them into place), then default-initialized declared locals.
        if let Some(args) = init_locals_from_args {
            if args.len() != num_params {
                return Err(TrapCode::HostError);
            }
            for (i, arg) in args.iter().enumerate() {
                instance.values.write_value(frame_base + i, *arg);
            }
        } else {
            // Ensure parameter tags are present even if the caller's tier
            // does not store tags (e.g. a notags baseline configuration):
            // the callee's locals have static types.
            for (i, ty) in prepared.local_types.iter().enumerate().take(num_params) {
                instance
                    .values
                    .set_tag(frame_base + i, ValueTag::for_type(*ty));
            }
        }
        for (i, ty) in prepared.local_types.iter().enumerate().skip(num_params) {
            instance
                .values
                .write_value(frame_base + i, WasmValue::default_for(*ty));
        }

        let tier = match jit_tier {
            Some(tier) => FrameTier::Jit {
                pc: 0,
                cpu: Box::new(CpuState::new()),
                tier,
            },
            None => FrameTier::Interp { ip: 0 },
        };
        // The value-stack pointer covers the locals for interpreter frames
        // (operands are pushed as it executes) and the whole frame for JIT
        // frames (slots are addressed statically).
        let sp = if jit_tier.is_some() {
            frame_base + frame_slots as usize
        } else {
            frame_base + prepared.num_locals() as usize
        };
        instance.values.set_sp(sp);
        instance.metrics.calls_executed += 1;
        Ok(Activation {
            func_index,
            defined_index: defined,
            frame_base,
            num_results,
            frame_slots,
            tier,
            osr_skip: false,
            osr_off: false,
            site_offset: 0,
        })
    }

    fn run_call(
        &self,
        instance: &mut Instance,
        func_index: u32,
        args: &[WasmValue],
        frame_base: usize,
        cycles: &mut CycleCounter,
    ) -> Result<(), TrapCode> {
        let mut stack: Vec<Activation> = Vec::new();
        let mut trap_offset: Option<u32> = None;
        let result = self.run_frames(
            instance,
            func_index,
            args,
            frame_base,
            cycles,
            &mut stack,
            &mut trap_offset,
        );
        if let Err(code) = result {
            // The stack is still live here — the frame walk sees exactly the
            // activations that existed when the trap fired.
            self.record_trap(instance, &stack, code, trap_offset);
        }
        result
    }

    /// Captures diagnostics for a trap that unwound [`Engine::run_frames`]:
    /// walks the (still-live) activation stack into a symbolicated
    /// [`Backtrace`], stores the [`TrapInfo`] on the instance, and bumps the
    /// per-reason metrics and telemetry counters.
    ///
    /// The top frame's offset is `trap_offset` when the trap came from
    /// *executing* an instruction; traps raised at a call boundary (stack
    /// exhaustion, `push_frame` epoch interruption, indirect-call dispatch
    /// failures, host errors) have no executing instruction, so the top
    /// frame reports the call site it was suspended at.
    fn record_trap(
        &self,
        instance: &mut Instance,
        stack: &[Activation],
        code: TrapCode,
        trap_offset: Option<u32>,
    ) {
        let reason = TrapReason::from(code);
        instance.metrics.traps += 1;
        instance.metrics.trap_counts[reason.index()] += 1;
        let names = instance.module().name_section();
        let mut frames = Vec::with_capacity(stack.len());
        for (depth, act) in stack.iter().rev().enumerate() {
            let offset = if depth == 0 {
                trap_offset.unwrap_or(act.site_offset)
            } else {
                act.site_offset
            };
            frames.push(Frame {
                func_index: act.func_index,
                name: names.func_name(act.func_index).map(str::to_string),
                offset,
                tier: act.tier.tag(),
            });
        }
        if self.telemetry.is_enabled() {
            if let Some(metrics) = self.telemetry.metrics() {
                metrics.counter(&format!("engine.traps.{}", reason.slug())).inc();
            }
        }
        instance.last_trap = Some(TrapInfo {
            reason,
            backtrace: Backtrace::from_frames(frames),
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn run_frames(
        &self,
        instance: &mut Instance,
        func_index: u32,
        args: &[WasmValue],
        frame_base: usize,
        cycles: &mut CycleCounter,
        stack: &mut Vec<Activation>,
        trap_offset: &mut Option<u32>,
    ) -> Result<(), TrapCode> {
        let interp = Interpreter::new(self.config.cost.clone());
        let cpu = Cpu::new(self.config.cost.clone());
        let root = self.push_frame(instance, func_index, frame_base, Some(args), 0)?;
        stack.push(root);
        // An owned handle to the shared artifact lets the executor borrow
        // module/code immutably while the instance's runtime state is
        // borrowed mutably.
        let artifact = Arc::clone(&instance.artifact);
        // Sampling-profiler state for this call tree: execution loops poll
        // the shared epoch at their existing check sites and report the
        // current (function, tier) once per tick — `last_sample_epoch` is
        // what makes a tick yield one sample, not one per site.
        let telemetry = &self.telemetry;
        let mut last_sample_epoch = self.epoch.load(Ordering::Relaxed);

        while let Some(act) = stack.last_mut() {
            let defined = act.defined_index;
            // Run the top frame until it exits, attributing the cycles of
            // optimizing-tier frames to their own metrics bucket.
            let cycles_before = cycles.total();
            let frame_tier = act.tier.jit_tier();
            let sample_func = act.func_index;
            let sample_tier = match frame_tier {
                None => telemetry::Tier::Interp,
                Some(CompileTier::Baseline) => telemetry::Tier::Baseline,
                Some(CompileTier::Opt) => telemetry::Tier::Opt,
            };
            let exit = {
                let Instance {
                    memory,
                    globals,
                    tables,
                    values,
                    instrumentation,
                    fuel,
                    epoch_deadline,
                    osr_counts,
                    ..
                } = instance;
                let mut record_sample =
                    |_offset: u32| telemetry.record_sample(sample_func, sample_tier);
                let sampler = telemetry.is_enabled().then(|| EpochSampler {
                    epoch: self.epoch.as_ref(),
                    last: &mut last_sample_epoch,
                    record: &mut record_sample,
                });
                // The OSR hook rides the same fused meter-check sites.
                // Optimizing-tier frames never poll — they are already where
                // OSR would take them.
                let osr = match self.config.osr_threshold {
                    Some(threshold)
                        if !act.osr_off && frame_tier != Some(CompileTier::Opt) =>
                    {
                        Some(OsrHook {
                            plan: &artifact.prepared(defined).fuel,
                            count: &mut osr_counts[defined as usize],
                            threshold,
                            skip_once: &mut act.osr_skip,
                        })
                    }
                    _ => None,
                };
                let mut ctx = ExecContext {
                    values,
                    frame_base: act.frame_base,
                    memory: memory.as_mut(),
                    globals,
                    tables,
                    meter: Meter {
                        fuel: fuel.as_mut(),
                        epoch: epoch_deadline.map(|d| (self.epoch.as_ref(), d)),
                        sampler,
                        osr,
                    },
                };
                match &mut act.tier {
                    FrameTier::Interp { ip } => {
                        let exit = interp.run(
                            artifact.module(),
                            artifact.prepared(defined),
                            *ip,
                            &mut ctx,
                            instrumentation,
                            cycles,
                        );
                        UnifiedExit::from_interp(exit)
                    }
                    FrameTier::Jit { pc, cpu: cpu_state, tier } => {
                        let code = artifact
                            .code_for(defined, *tier)
                            .expect("JIT frame has compiled code");
                        let exit = cpu.run(cpu_state, &code.code, *pc, &mut ctx, cycles);
                        UnifiedExit::from_cpu(exit, code)
                    }
                }
            };
            if frame_tier == Some(CompileTier::Opt) {
                instance.metrics.opt_exec_cycles += cycles.total() - cycles_before;
            }
            // Frame exits (returns, calls, probes) are sample points too, so
            // recursion-heavy code with no loop back-edges still attributes
            // its time.
            if telemetry.is_enabled() {
                let now = self.epoch.load(Ordering::Relaxed);
                if now != last_sample_epoch {
                    last_sample_epoch = now;
                    telemetry.record_sample(sample_func, sample_tier);
                }
            }

            match exit {
                UnifiedExit::Return => {
                    let finished = stack.pop().expect("active frame");
                    let result_end = finished.frame_base + finished.num_results as usize;
                    let frame_end = finished.frame_base + finished.frame_slots as usize;
                    instance.values.clear_range(result_end, frame_end.min(instance.values.capacity()));
                    match stack.last_mut() {
                        None => {
                            instance.values.set_sp(result_end);
                            return Ok(());
                        }
                        Some(parent) => {
                            cycles.charge(self.config.cost.ret);
                            match parent.tier {
                                FrameTier::Interp { .. } => {
                                    instance.values.set_sp(result_end);
                                }
                                FrameTier::Jit { .. } => {
                                    instance
                                        .values
                                        .set_sp(parent.frame_base + parent.frame_slots as usize);
                                }
                            }
                        }
                    }
                }
                UnifiedExit::Call {
                    callee,
                    resume,
                    jit_caller,
                    site_offset,
                } => {
                    // Record where to resume the caller, and where it stands
                    // in a backtrace while the callee runs.
                    act.site_offset = site_offset;
                    let caller_tier = act.tier.jit_tier();
                    let (caller_base, caller_defined, nargs_from_sig) = {
                        let sig = artifact
                            .module()
                            .func_type(callee)
                            .ok_or(TrapCode::HostError)?;
                        (act.frame_base, act.defined_index, sig.params.len())
                    };
                    match &mut act.tier {
                        FrameTier::Interp { ip } => *ip = resume,
                        FrameTier::Jit { pc, .. } => *pc = resume,
                    }
                    let callee_base = if jit_caller {
                        let tier = caller_tier.expect("JIT caller has a tier");
                        let site = artifact
                            .code_for(caller_defined, tier)
                            .and_then(|c| c.call_sites.get(&(resume - 1)))
                            .copied()
                            .ok_or(TrapCode::HostError)?;
                        caller_base + site.callee_slot_base as usize
                    } else {
                        instance.values.sp() - nargs_from_sig
                    };
                    cycles.charge(self.config.cost.call);
                    self.maybe_collect(instance, stack);

                    if artifact.module().is_imported_func(callee) {
                        self.call_host(instance, callee, callee_base, cycles)?;
                        // Restore the caller's stack pointer.
                        let parent = stack.last().expect("caller");
                        let nresults = artifact
                            .module()
                            .func_type(callee)
                            .map(|t| t.results.len())
                            .unwrap_or(0);
                        match parent.tier {
                            FrameTier::Interp { .. } => {
                                instance.values.set_sp(callee_base + nresults);
                            }
                            FrameTier::Jit { .. } => {
                                instance
                                    .values
                                    .set_sp(parent.frame_base + parent.frame_slots as usize);
                            }
                        }
                    } else {
                        let depth = stack.len();
                        let child =
                            self.push_frame(instance, callee, callee_base, None, depth)?;
                        stack.push(child);
                    }
                }
                UnifiedExit::CallIndirect {
                    type_index,
                    table_index,
                    entry_index,
                    resume,
                    jit_caller,
                    site_offset,
                } => {
                    // Set the backtrace position before the dispatch checks:
                    // table-bounds, null-entry, and signature traps below all
                    // belong to this `call_indirect` instruction.
                    act.site_offset = site_offset;
                    match &mut act.tier {
                        FrameTier::Interp { ip } => *ip = resume,
                        FrameTier::Jit { pc, .. } => *pc = resume,
                    }
                    let caller_base = act.frame_base;
                    let caller_defined = act.defined_index;
                    let caller_tier = act.tier.jit_tier();
                    let table = instance
                        .tables
                        .get(table_index as usize)
                        .ok_or(TrapCode::TableOutOfBounds)?;
                    let callee = table
                        .get(entry_index)?
                        .ok_or(TrapCode::NullTableEntry)?;
                    let expected = artifact
                        .module()
                        .types
                        .get(type_index as usize)
                        .ok_or(TrapCode::IndirectCallTypeMismatch)?;
                    let actual = artifact
                        .module()
                        .func_type(callee)
                        .ok_or(TrapCode::IndirectCallTypeMismatch)?;
                    if expected != actual {
                        return Err(TrapCode::IndirectCallTypeMismatch);
                    }
                    let nargs = actual.params.len();
                    let nresults = actual.results.len();
                    let callee_base = if jit_caller {
                        let tier = caller_tier.expect("JIT caller has a tier");
                        let site = artifact
                            .code_for(caller_defined, tier)
                            .and_then(|c| c.call_sites.get(&(resume - 1)))
                            .copied()
                            .ok_or(TrapCode::HostError)?;
                        caller_base + site.callee_slot_base as usize
                    } else {
                        instance.values.sp() - nargs
                    };
                    cycles.charge(self.config.cost.call_indirect);
                    self.maybe_collect(instance, stack);
                    if artifact.module().is_imported_func(callee) {
                        self.call_host(instance, callee, callee_base, cycles)?;
                        let parent = stack.last().expect("caller");
                        match parent.tier {
                            FrameTier::Interp { .. } => {
                                instance.values.set_sp(callee_base + nresults);
                            }
                            FrameTier::Jit { .. } => {
                                instance
                                    .values
                                    .set_sp(parent.frame_base + parent.frame_slots as usize);
                            }
                        }
                    } else {
                        let depth = stack.len();
                        let child =
                            self.push_frame(instance, callee, callee_base, None, depth)?;
                        stack.push(child);
                    }
                }
                UnifiedExit::Probe { exit, resume } => {
                    self.handle_jit_probe(instance, act, exit, resume)?;
                }
                UnifiedExit::Osr { offset, resume } => {
                    self.handle_osr(instance, act, offset, resume);
                }
                UnifiedExit::Trap { code, offset } => {
                    *trap_offset = Some(offset);
                    return Err(code);
                }
            }
        }
        Ok(())
    }

    /// Handles an OSR poll from a hot loop in an interpreter or baseline
    /// frame: when optimizing-tier code for the function is published and
    /// has an entry stub for this loop, the running activation is
    /// transferred to it mid-loop; otherwise the compilation is requested
    /// and the current tier resumes at the check site (which consumed
    /// nothing, so re-executing it is correct — and the loop-head check of
    /// the optimized code runs instead after a transfer, keeping fuel and
    /// epoch accounting bit-identical to a never-OSR run).
    fn handle_osr(&self, instance: &mut Instance, act: &mut Activation, offset: u32, resume: usize) {
        let defined = act.defined_index;
        // Default: resume the current tier at the declined poll site.
        match &mut act.tier {
            FrameTier::Interp { ip } => *ip = resume,
            FrameTier::Jit { pc, .. } => *pc = resume,
        }
        if instance.artifact.artifact_for(defined, CompileTier::Opt).is_none() {
            // Not compiled yet: request it and guarantee a full loop
            // iteration of progress before the next poll.
            act.osr_skip = true;
            if let Some(pool) = &self.background {
                let pool = Arc::clone(pool);
                self.enqueue_background(&pool, instance, defined, CompileTier::Opt);
            } else if self.ensure_compiled(instance, defined, CompileTier::Opt).is_err() {
                // The optimizing compiler rejected the function; the
                // current tier is always correct, so just stop polling.
                act.osr_off = true;
            }
            return;
        }
        self.observe_published(instance, defined, CompileTier::Opt);
        let (entry, frame_slots) = {
            let code = instance
                .artifact
                .code_for(defined, CompileTier::Opt)
                .expect("artifact published");
            match code.osr_entries.get(&offset) {
                Some(&entry) => (entry, code.frame_slots),
                None => {
                    // No stub for this loop (its header was optimized away,
                    // or the code predates OSR in a shared artifact).
                    act.osr_off = true;
                    return;
                }
            }
        };
        let frame_end = act.frame_base + frame_slots as usize;
        if instance.values.capacity() < frame_end {
            // The optimized frame does not fit where this activation sits;
            // keep running the current tier rather than overflowing.
            act.osr_off = true;
            return;
        }
        // The frame only grows (the allocator reserves the interpreter
        // operand region whenever OSR entries exist). Clear the newly
        // exposed slots so the GC's tag scan never reads stale tags, then
        // hand the frame to the entry stub, which rebuilds the loop
        // header's state from the interpreter-layout slots below.
        let sp_before = instance.values.sp();
        if frame_end > sp_before {
            instance.values.clear_range(sp_before, frame_end);
        }
        instance.values.set_sp(frame_end);
        act.frame_slots = frame_slots;
        act.tier = FrameTier::Jit {
            pc: entry,
            cpu: Box::new(CpuState::new()),
            tier: CompileTier::Opt,
        };
        if self.telemetry.is_enabled() {
            self.telemetry.emit(EventKind::OsrEnter { func: act.func_index, offset });
            if let Some(metrics) = self.telemetry.metrics() {
                metrics.counter("engine.osr_entries").inc();
            }
        }
    }

    fn handle_jit_probe(
        &self,
        instance: &mut Instance,
        act: &mut Activation,
        exit: ProbeExit,
        resume: usize,
    ) -> Result<(), TrapCode> {
        let defined = act.defined_index;
        let func_index = act.func_index;
        let tier = act.tier.jit_tier().expect("probe fired in compiled code");
        let (offset, operand_height) = {
            let compiled = instance
                .artifact
                .code_for(defined, tier)
                .expect("probe fired in compiled code");
            compiled
                .probe_sites
                .get(&(resume - 1))
                .map(|m| (m.offset, m.operand_height))
                .unwrap_or((0, 0))
        };
        match exit {
            ProbeExit::Counter { counter_id } => {
                instance.instrumentation.increment_counter(counter_id);
            }
            ProbeExit::TosValue { bits, .. } => {
                // The value's type is whatever the top of stack was; the
                // branch monitor only needs zero/non-zero, so i64 suffices.
                instance.instrumentation.fire_with_value(
                    func_index,
                    offset,
                    WasmValue::I64(bits as i64),
                );
            }
            ProbeExit::Runtime { .. } | ProbeExit::Direct { .. } => {
                if self.config.deopt_on_probe {
                    // Tier-down: the frame state is flushed at runtime probes,
                    // so the interpreter can take over in place. The probe is
                    // NOT fired here — the interpreter will fire it when it
                    // re-executes the probed instruction.
                    let num_locals = instance.artifact.prepared(defined).num_locals() as usize;
                    instance
                        .values
                        .set_sp(act.frame_base + num_locals + operand_height as usize);
                    act.tier = FrameTier::Interp {
                        ip: offset as usize,
                    };
                    return Ok(());
                }
                let num_locals = instance.artifact.prepared(defined).num_locals() as usize;
                let sp_before = instance.values.sp();
                instance
                    .values
                    .set_sp(act.frame_base + num_locals + operand_height as usize);
                let Instance {
                    values,
                    instrumentation,
                    ..
                } = instance;
                let mut accessor =
                    FrameAccessor::new(values, act.frame_base, num_locals, func_index, offset);
                instrumentation.fire(&mut accessor);
                instance.values.set_sp(sp_before);
            }
        }
        match &mut act.tier {
            FrameTier::Jit { pc, .. } => *pc = resume,
            FrameTier::Interp { .. } => {}
        }
        Ok(())
    }

    fn call_host(
        &self,
        instance: &mut Instance,
        callee: u32,
        callee_base: usize,
        cycles: &mut CycleCounter,
    ) -> Result<(), TrapCode> {
        cycles.charge(self.config.cost.host_call);
        let sig = instance
            .module()
            .func_type(callee)
            .cloned()
            .ok_or(TrapCode::HostError)?;
        let args: Vec<WasmValue> = sig
            .params
            .iter()
            .enumerate()
            .map(|(i, &ty)| {
                WasmValue::from_bits(
                    instance.values.read(callee_base + i),
                    ValueTag::for_type(ty),
                )
            })
            .collect();
        let Instance {
            host_funcs, heap, ..
        } = instance;
        let f = host_funcs
            .get_mut(callee as usize)
            .and_then(|f| f.as_mut())
            .ok_or(TrapCode::HostError)?;
        let results = f(heap, &args)?;
        if results.len() != sig.results.len() {
            return Err(TrapCode::HostError);
        }
        for (i, value) in results.iter().enumerate() {
            instance.values.write_value(callee_base + i, *value);
        }
        Ok(())
    }

    fn maybe_collect(&self, instance: &mut Instance, stack: &[Activation]) {
        if !instance.heap.should_collect() {
            return;
        }
        let roots = self.collect_roots(instance, stack);
        instance.heap.collect(&roots);
        instance.metrics.gc_count += 1;
    }

    fn collect_roots(&self, instance: &Instance, stack: &[Activation]) -> Vec<u32> {
        let uses_stackmaps = self
            .config
            .baseline_options()
            .map(|o| o.tagging.uses_stackmaps())
            .unwrap_or(false);
        if uses_stackmaps {
            let mut frames = Vec::new();
            for act in stack {
                if let FrameTier::Jit { pc, tier, .. } = &act.tier {
                    if let Some(compiled) = instance.artifact.code_for(act.defined_index, *tier) {
                        // The frame is paused at the call instruction before
                        // its resume point. Optimizing-tier frames publish
                        // their references through tagged slots instead of
                        // stackmaps; their (empty) tables contribute nothing
                        // here and the tag scan below picks the roots up.
                        if *pc > 0 {
                            frames.push(StackmapFrame {
                                compiled,
                                frame_base: act.frame_base,
                                call_inst_index: *pc - 1,
                            });
                        }
                    }
                }
            }
            let mut roots = scan_roots_via_stackmaps(&instance.values, &frames);
            // Interpreter frames and globals still use tags.
            roots.extend(scan_roots_via_tags(&instance.values));
            roots.extend(global_roots(&instance.globals));
            roots.sort_unstable();
            roots.dedup();
            roots
        } else {
            let mut roots = scan_roots_via_tags(&instance.values);
            roots.extend(global_roots(&instance.globals));
            roots.sort_unstable();
            roots.dedup();
            roots
        }
    }
}

/// Attributes one published compilation to an instance's metrics, in the
/// bucket matching when and in which tier it ran.
fn account_compile(
    metrics: &mut RunMetrics,
    compiled: &CompiledArtifact,
    timing: CompileTiming,
    tier: CompileTier,
) {
    match (tier, timing) {
        (CompileTier::Opt, _) => metrics.opt_compile_wall += compiled.compile_wall,
        (CompileTier::Baseline, CompileTiming::Eager) => {
            metrics.compile_wall += compiled.compile_wall
        }
        (CompileTier::Baseline, CompileTiming::Deferred) => {
            metrics.lazy_compile_wall += compiled.compile_wall
        }
    }
    if timing == CompileTiming::Deferred {
        metrics.tiered_up_functions += 1;
    }
    metrics.compiled_wasm_bytes += compiled.function.stats.wasm_bytes as u64;
    metrics.compiled_machine_bytes += compiled.machine_bytes;
    metrics.tag_stores_emitted += compiled.function.stats.tag_stores as u64;
    metrics.functions_compiled += 1;
}

fn global_roots(globals: &[GlobalSlot]) -> Vec<u32> {
    globals
        .iter()
        .filter(|g| g.tag == ValueTag::Ref && g.bits != machine::values::NULL_REF_BITS)
        .map(|g| g.bits as u32)
        .collect()
}

/// A tier-independent view of why a frame stopped executing.
///
/// Wasm bytecode offsets are resolved here, once, at the tier boundary: the
/// interpreter reports them directly, while compiled exits map their machine
/// program counter back through the code's source map
/// ([`spc::CompiledFunction`]'s `code.source_offset`). Past this point the
/// engine never needs to know which tier produced an exit to attribute it in
/// a backtrace — that is what makes backtraces bit-identical across tiers.
enum UnifiedExit {
    Return,
    Call {
        callee: u32,
        resume: usize,
        /// True when the caller is a JIT frame, whose callee frame base is
        /// found in the compiled call-site metadata; interpreter callers use
        /// the dynamic stack pointer instead.
        jit_caller: bool,
        /// Bytecode offset of the `call` instruction itself — the caller's
        /// backtrace position while the callee runs.
        site_offset: u32,
    },
    CallIndirect {
        type_index: u32,
        table_index: u32,
        entry_index: u32,
        resume: usize,
        jit_caller: bool,
        /// Bytecode offset of the `call_indirect` instruction itself.
        site_offset: u32,
    },
    Probe {
        exit: ProbeExit,
        resume: usize,
    },
    /// A hot-loop OSR poll fired at the loop-body start `offset`; `resume`
    /// re-enters the current tier at the poll site if the transition is
    /// declined (nothing was consumed, so the site re-executes).
    Osr {
        offset: u32,
        resume: usize,
    },
    Trap {
        code: TrapCode,
        /// Bytecode offset of the trapping instruction (0 when the code was
        /// compiled without debug metadata and the source map is empty).
        offset: u32,
    },
}

impl UnifiedExit {
    fn from_interp(exit: InterpExit) -> UnifiedExit {
        match exit {
            InterpExit::Return => UnifiedExit::Return,
            InterpExit::Call {
                func_index,
                resume_ip,
                site_offset,
            } => UnifiedExit::Call {
                callee: func_index,
                resume: resume_ip,
                jit_caller: false,
                site_offset,
            },
            InterpExit::CallIndirect {
                type_index,
                table_index,
                entry_index,
                resume_ip,
                site_offset,
            } => UnifiedExit::CallIndirect {
                type_index,
                table_index,
                entry_index,
                resume: resume_ip,
                jit_caller: false,
                site_offset,
            },
            InterpExit::Osr { offset } => UnifiedExit::Osr {
                offset,
                resume: offset as usize,
            },
            InterpExit::Trap { code, offset } => UnifiedExit::Trap { code, offset },
        }
    }

    /// `code` is the compiled function the exit came from; its source map
    /// translates the machine program counters in the exit back to wasm
    /// bytecode offsets. Call exits resume at `call instruction + 1`, so the
    /// call site itself is the preceding instruction.
    fn from_cpu(exit: CpuExit, code: &CompiledFunction) -> UnifiedExit {
        match exit {
            CpuExit::Return => UnifiedExit::Return,
            CpuExit::Call {
                func_index,
                resume_pc,
            } => UnifiedExit::Call {
                callee: func_index,
                resume: resume_pc,
                jit_caller: true,
                site_offset: code.code.source_offset(resume_pc - 1).unwrap_or(0),
            },
            CpuExit::CallIndirect {
                type_index,
                table_index,
                entry_index,
                resume_pc,
            } => UnifiedExit::CallIndirect {
                type_index,
                table_index,
                entry_index,
                resume: resume_pc,
                jit_caller: true,
                site_offset: code.code.source_offset(resume_pc - 1).unwrap_or(0),
            },
            CpuExit::Probe { exit, resume_pc } => UnifiedExit::Probe {
                exit,
                resume: resume_pc,
            },
            CpuExit::Osr { offset, resume_pc } => UnifiedExit::Osr {
                offset,
                resume: resume_pc,
            },
            CpuExit::Trap { code: trap, pc } => UnifiedExit::Trap {
                code: trap,
                offset: code.code.source_offset(pc).unwrap_or(0),
            },
        }
    }
}
