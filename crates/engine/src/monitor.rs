//! Monitors and the probe registry.
//!
//! A *monitor* is user code that instruments a module as it is loaded
//! (Section IV-D of the paper). The engine exposes the same probe interface
//! to both tiers: the interpreter consults the registry at every instruction,
//! while the baseline compiler bakes the attached probes into generated code
//! and routes firings back here.
//!
//! The built-in [`BranchMonitor`] reproduces the paper's Fig. 6 workload: it
//! attaches a top-of-stack probe to every conditional branch and counts how
//! often each branch is taken and not taken.

use interp::probe::{FrameAccessor, ProbeSink};
use machine::values::WasmValue;
use spc::{ProbeKind, ProbeSite, ProbeSites};
use std::collections::HashMap;
use wasm::module::Module;
use wasm::opcode::Opcode;
use wasm::reader::BytecodeReader;

/// Per-site taken / not-taken counts collected by the branch monitor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BranchProfile {
    /// Times the branch condition was false (not taken).
    pub not_taken: u64,
    /// Times the branch condition was true (taken).
    pub taken: u64,
}

/// The branch monitor: profiles the outcome of every conditional branch.
#[derive(Debug, Clone, Default)]
pub struct BranchMonitor {
    counts: HashMap<(u32, u32), BranchProfile>,
}

impl BranchMonitor {
    /// Records one observation of the branch at `(func, offset)`.
    pub fn record(&mut self, func: u32, offset: u32, condition: bool) {
        let entry = self.counts.entry((func, offset)).or_default();
        if condition {
            entry.taken += 1;
        } else {
            entry.not_taken += 1;
        }
    }

    /// The profile of one branch site.
    pub fn profile(&self, func: u32, offset: u32) -> Option<&BranchProfile> {
        self.counts.get(&(func, offset))
    }

    /// Total observations across all sites.
    pub fn total_observations(&self) -> u64 {
        self.counts.values().map(|p| p.taken + p.not_taken).sum()
    }

    /// The number of distinct branch sites observed.
    pub fn site_count(&self) -> usize {
        self.counts.len()
    }
}

/// The kinds of instrumentation the engine supports out of the box.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MonitorKind {
    /// No instrumentation.
    None,
    /// The branch monitor.
    Branch,
    /// A global instruction/site counter (fully intrinsifiable).
    Counter,
}

/// The engine's probe registry: which sites are instrumented in which
/// function, plus the monitors receiving the firings.
///
/// Implements [`ProbeSink`] so the interpreter (and the engine's handling of
/// JIT probe exits) can fire probes without knowing which monitors exist.
#[derive(Debug, Clone)]
pub struct Instrumentation {
    sites: HashMap<u32, ProbeSites>,
    kind: MonitorKind,
    branch: BranchMonitor,
    counters: Vec<u64>,
}

impl Default for Instrumentation {
    fn default() -> Instrumentation {
        Instrumentation::none()
    }
}

impl Instrumentation {
    /// No instrumentation at all.
    pub fn none() -> Instrumentation {
        Instrumentation {
            sites: HashMap::new(),
            kind: MonitorKind::None,
            branch: BranchMonitor::default(),
            counters: Vec::new(),
        }
    }

    /// Attaches the branch monitor to every conditional branch (`br_if`,
    /// `if`, `br_table`) in every defined function of `module`.
    pub fn branch_monitor(module: &Module) -> Instrumentation {
        let mut sites: HashMap<u32, ProbeSites> = HashMap::new();
        let mut next_probe = 0u32;
        for defined in 0..module.funcs.len() as u32 {
            let func_index = module.defined_to_func_index(defined);
            let decl = module.func_decl(func_index).expect("defined function");
            let mut func_sites = ProbeSites::none();
            let mut reader = BytecodeReader::new(&decl.code);
            while !reader.is_at_end() {
                let offset = reader.pc() as u32;
                let op = match reader.read_opcode() {
                    Ok(op) => op,
                    Err(_) => break,
                };
                if matches!(op, Opcode::BrIf | Opcode::If | Opcode::BrTable) {
                    func_sites.insert(
                        offset,
                        ProbeSite {
                            probe_id: next_probe,
                            kind: ProbeKind::TopOfStack,
                        },
                    );
                    next_probe += 1;
                }
                if reader.skip_immediates(op).is_err() {
                    break;
                }
            }
            if !func_sites.is_empty() {
                sites.insert(func_index, func_sites);
            }
        }
        Instrumentation {
            sites,
            kind: MonitorKind::Branch,
            branch: BranchMonitor::default(),
            counters: Vec::new(),
        }
    }

    /// Attaches an intrinsifiable counter probe at the start of every
    /// defined function (a simple call-count monitor).
    pub fn function_counters(module: &Module) -> Instrumentation {
        let mut sites: HashMap<u32, ProbeSites> = HashMap::new();
        let count = module.funcs.len();
        for defined in 0..count as u32 {
            let func_index = module.defined_to_func_index(defined);
            let mut func_sites = ProbeSites::none();
            func_sites.insert(
                0,
                ProbeSite {
                    probe_id: defined,
                    kind: ProbeKind::Counter {
                        counter_id: defined,
                    },
                },
            );
            sites.insert(func_index, func_sites);
        }
        Instrumentation {
            sites,
            kind: MonitorKind::Counter,
            branch: BranchMonitor::default(),
            counters: vec![0; count],
        }
    }

    /// True if no probes are attached anywhere.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The probe sites attached to `func_index` (for the compiler).
    pub fn sites_for(&self, func_index: u32) -> ProbeSites {
        self.sites.get(&func_index).cloned().unwrap_or_default()
    }

    /// The branch monitor's collected data.
    pub fn branch_monitor_data(&self) -> &BranchMonitor {
        &self.branch
    }

    /// Exports the branch profile of one function for the optimizing tier
    /// (see [`interp::profile`]): every site the branch monitor has observed
    /// in `func_index`, as taken/not-taken counts keyed by bytecode offset.
    /// Empty when no branch monitor is attached — the optimizing tier then
    /// lays blocks out in bytecode order.
    ///
    /// The scan is linear in the module's total observed branch sites; it
    /// runs once per optimizing-tier promotion (at most once per function
    /// per instance), so the aggregate cost is bounded by
    /// `functions × sites` per instance lifetime.
    pub fn func_profile(&self, func_index: u32) -> interp::profile::FuncProfile {
        let mut profile = interp::profile::FuncProfile::empty();
        for (&(func, offset), counts) in &self.branch.counts {
            if func == func_index {
                profile.record(offset, true, counts.taken);
                profile.record(offset, false, counts.not_taken);
            }
        }
        profile
    }

    /// The counter values of a counter monitor.
    pub fn counters(&self) -> &[u64] {
        &self.counters
    }

    /// Total probe firings observed (all monitors).
    pub fn total_firings(&self) -> u64 {
        self.branch.total_observations() + self.counters.iter().sum::<u64>()
    }

    /// A stable fingerprint of the probe sites this instrumentation attaches
    /// — the part that is baked into generated code and therefore belongs in
    /// the code-cache key. Monitors with the same sites but different
    /// accumulated data fingerprint equal (the data lives outside the code);
    /// iteration order is normalized by sorting, so the value is independent
    /// of `HashMap` ordering.
    pub fn fingerprint(&self) -> u64 {
        let mut h = wasm::hash::Fnv64::new();
        let mut funcs: Vec<u32> = self.sites.keys().copied().collect();
        funcs.sort_unstable();
        for func in funcs {
            h.write_u32(func);
            let sites = &self.sites[&func];
            let mut entries: Vec<(u32, ProbeSite)> =
                sites.iter().map(|(&offset, &site)| (offset, site)).collect();
            entries.sort_unstable_by_key(|(offset, _)| *offset);
            for (offset, site) in entries {
                h.write_u32(offset);
                h.write_u32(site.probe_id);
                match site.kind {
                    ProbeKind::Generic => {
                        h.write_u8(0);
                    }
                    ProbeKind::Counter { counter_id } => {
                        h.write_u8(1).write_u32(counter_id);
                    }
                    ProbeKind::TopOfStack => {
                        h.write_u8(2);
                    }
                }
            }
        }
        h.finish()
    }

    /// Routes a value-carrying probe firing (used for JIT `ProbeTosValue`
    /// exits and interpreter firings alike).
    pub fn record_value(&mut self, func: u32, offset: u32, value: WasmValue) {
        match self.kind {
            MonitorKind::Branch => {
                let condition = match value {
                    WasmValue::I32(v) => v != 0,
                    WasmValue::I64(v) => v != 0,
                    _ => false,
                };
                self.branch.record(func, offset, condition);
            }
            MonitorKind::Counter => {
                // Value-carrying firings still count as one observation.
                if let Some(c) = self.counters.get_mut(0) {
                    *c += 1;
                }
            }
            MonitorKind::None => {}
        }
    }
}

impl ProbeSink for Instrumentation {
    fn has_probe(&self, func_index: u32, offset: u32) -> bool {
        self.sites
            .get(&func_index)
            .map(|s| s.get(offset).is_some())
            .unwrap_or(false)
    }

    fn fire(&mut self, frame: &mut FrameAccessor<'_>) {
        let func = frame.func_index();
        let offset = frame.offset();
        match self.kind {
            MonitorKind::Branch => {
                let condition = frame
                    .top_of_stack()
                    .map(|v| match v {
                        WasmValue::I32(v) => v != 0,
                        WasmValue::I64(v) => v != 0,
                        _ => false,
                    })
                    .unwrap_or(false);
                self.branch.record(func, offset, condition);
            }
            MonitorKind::Counter => {
                let defined = func as usize;
                if defined < self.counters.len() {
                    self.counters[defined] += 1;
                }
            }
            MonitorKind::None => {}
        }
    }

    fn fire_with_value(&mut self, func_index: u32, offset: u32, value: WasmValue) {
        self.record_value(func_index, offset, value);
    }

    fn increment_counter(&mut self, counter_id: u32) {
        if let Some(c) = self.counters.get_mut(counter_id as usize) {
            *c += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasm::builder::{CodeBuilder, ModuleBuilder};
    use wasm::types::{BlockType, FuncType, ValueType};

    fn branchy_module() -> Module {
        let mut b = ModuleBuilder::new();
        let mut c = CodeBuilder::new();
        c.block(BlockType::Empty)
            .local_get(0)
            .br_if(0)
            .local_get(0)
            .if_(BlockType::Empty)
            .nop()
            .end()
            .end();
        let f = b.add_func(FuncType::new(vec![ValueType::I32], vec![]), vec![], c.finish());
        b.export_func("f", f);
        b.finish()
    }

    #[test]
    fn branch_monitor_attaches_to_conditional_branches() {
        let module = branchy_module();
        let instr = Instrumentation::branch_monitor(&module);
        assert!(!instr.is_empty());
        let sites = instr.sites_for(0);
        assert_eq!(sites.len(), 2, "one br_if and one if");
        assert!(instr.sites_for(99).is_empty());
    }

    #[test]
    fn branch_monitor_records_outcomes() {
        let mut m = BranchMonitor::default();
        m.record(0, 4, true);
        m.record(0, 4, true);
        m.record(0, 4, false);
        m.record(1, 8, false);
        assert_eq!(m.profile(0, 4).unwrap().taken, 2);
        assert_eq!(m.profile(0, 4).unwrap().not_taken, 1);
        assert_eq!(m.total_observations(), 4);
        assert_eq!(m.site_count(), 2);
        assert!(m.profile(2, 0).is_none());
    }

    #[test]
    fn instrumentation_routes_value_firings() {
        let module = branchy_module();
        let mut instr = Instrumentation::branch_monitor(&module);
        instr.fire_with_value(0, 4, WasmValue::I32(1));
        instr.fire_with_value(0, 4, WasmValue::I32(0));
        instr.fire_with_value(0, 4, WasmValue::I64(5));
        let data = instr.branch_monitor_data();
        assert_eq!(data.profile(0, 4).unwrap().taken, 2);
        assert_eq!(data.profile(0, 4).unwrap().not_taken, 1);
        assert_eq!(instr.total_firings(), 3);
    }

    #[test]
    fn counter_monitor_counts() {
        let module = branchy_module();
        let mut instr = Instrumentation::function_counters(&module);
        assert!(instr.has_probe(0, 0));
        assert!(!instr.has_probe(0, 3));
        instr.increment_counter(0);
        instr.increment_counter(0);
        assert_eq!(instr.counters(), &[2]);
        assert_eq!(instr.total_firings(), 2);
    }

    #[test]
    fn fingerprint_reflects_sites_not_data() {
        let module = branchy_module();
        let a = Instrumentation::branch_monitor(&module);
        let mut b = Instrumentation::branch_monitor(&module);
        assert_eq!(a.fingerprint(), b.fingerprint(), "same sites, same fingerprint");
        b.fire_with_value(0, 4, WasmValue::I32(1));
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "accumulated monitor data is not part of the generated code"
        );
        assert_ne!(a.fingerprint(), Instrumentation::none().fingerprint());
        assert_ne!(
            a.fingerprint(),
            Instrumentation::function_counters(&module).fingerprint(),
            "different probe kinds fingerprint differently"
        );
    }

    #[test]
    fn empty_instrumentation_has_no_probes() {
        let instr = Instrumentation::none();
        assert!(instr.is_empty());
        assert!(!instr.has_probe(0, 0));
        assert_eq!(instr.total_firings(), 0);
    }
}
