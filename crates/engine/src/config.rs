//! Engine configurations: which execution tier(s) to use and how.
//!
//! A configuration corresponds to one "engine configuration E" of the paper's
//! Section VI: a specific tier (or tier combination) with its own setup and
//! execution characteristics. The Fig. 10 experiment instantiates many of
//! these side by side.

use machine::cost::CostModel;
use machine::masm::CodeBackend;
use spc::{CompilerOptions, ProbeMode, TagStrategy};
use wasm::hash::Fnv64;

/// Which execution tier(s) a configuration uses.
#[derive(Debug, Clone, PartialEq)]
pub enum TierPolicy {
    /// Execute everything in the in-place interpreter.
    InterpreterOnly,
    /// Execute everything in baseline-compiled code with the given compiler
    /// configuration.
    BaselineOnly(CompilerOptions),
    /// Execute everything in optimizing-compiled code.
    OptimizingOnly,
    /// Start in the interpreter, tier up a function to baseline code once it
    /// has been called `threshold` times, and — when `opt_threshold` is set
    /// — promote it again to the optimizing tier once it has been called
    /// that many times.
    Tiered {
        /// Number of calls before a function is baseline-compiled.
        threshold: u32,
        /// Number of calls before a function is promoted to the optimizing
        /// tier (`None` disables the third tier).
        opt_threshold: Option<u32>,
        /// Baseline compiler configuration used for hot functions.
        baseline: CompilerOptions,
    },
}

impl TierPolicy {
    /// True if this policy can ever run optimizing-compiled code.
    pub fn uses_opt_tier(&self) -> bool {
        matches!(
            self,
            TierPolicy::OptimizingOnly
                | TierPolicy::Tiered {
                    opt_threshold: Some(_),
                    ..
                }
        )
    }
}

/// Per-tenant resource ceilings enforced by the engine regardless of what a
/// module's own type section declares.
///
/// Limits compose with the module's declared limits by taking the minimum:
/// a module asking for an unbounded memory under a 16-page tenant limit gets
/// a memory that refuses to grow past 16 pages, and a module whose declared
/// minimum already exceeds a ceiling fails instantiation. The call-depth
/// ceiling caps [`EngineConfig::max_call_depth`] the same way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceLimits {
    /// Maximum linear-memory size in 64 KiB pages (`None` = unlimited).
    pub memory_pages: Option<u32>,
    /// Maximum table size in elements (`None` = unlimited).
    pub table_elements: Option<u32>,
    /// Maximum call depth (`None` = use [`EngineConfig::max_call_depth`]).
    pub call_depth: Option<usize>,
}

impl ResourceLimits {
    /// No ceilings: modules get exactly what they declare.
    pub fn unlimited() -> ResourceLimits {
        ResourceLimits {
            memory_pages: None,
            table_elements: None,
            call_depth: None,
        }
    }
}

impl Default for ResourceLimits {
    fn default() -> ResourceLimits {
        ResourceLimits::unlimited()
    }
}

/// A complete engine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Configuration name (used in reports and figures).
    pub name: String,
    /// The tier policy.
    pub tier: TierPolicy,
    /// The cycle cost model shared by all tiers.
    pub cost: CostModel,
    /// Compile functions lazily at first call instead of eagerly at
    /// instantiation (a confounding factor the paper calls out in Fig. 10).
    pub lazy_compile: bool,
    /// Validate the module during instantiation (wasm3 famously does not).
    pub validate: bool,
    /// When JIT code fires a probe, transfer the frame back to the
    /// interpreter (tier-down / deopt) instead of continuing in JIT code.
    pub deopt_on_probe: bool,
    /// Maximum call depth before a stack-overflow trap.
    pub max_call_depth: usize,
    /// Which macro-assembler backend the compiling tiers emit through.
    ///
    /// Execution always runs virtual-ISA code (the simulator cannot execute
    /// real machine bytes in this offline environment); selecting
    /// [`CodeBackend::X64`] additionally emits each compiled function
    /// through the x86-64 backend so [`crate::RunMetrics`] reports *real*
    /// encoded machine-code bytes instead of the virtual ISA's estimate.
    pub backend: CodeBackend,
    /// How many worker threads eager (instantiate-time) compilation shards
    /// across. `1` (the default) is the serial path; any higher count
    /// produces byte-identical code, since each function's compilation reads
    /// only immutable inputs (see [`crate::pipeline`]).
    pub compile_workers: usize,
    /// The host GC heap's collection threshold: a collection is requested at
    /// the next safe point once this many objects are live. `0` (the
    /// default) never requests collection — matching the seed behaviour
    /// where instances started with an inert heap — so GC-sensitive callers
    /// opt in explicitly.
    pub gc_threshold: usize,
    /// Thread deterministic fuel accounting and epoch-check sites through
    /// every execution tier. Metering changes the code the compiling tiers
    /// emit (fuel/epoch check sequences at block headers), so it is folded
    /// into [`EngineConfig::compile_fingerprint`]; runs with metering
    /// disabled pay nothing.
    pub metering: bool,
    /// Attach a live telemetry sink to engines built from this
    /// configuration: structured trace events, the metrics registry, and the
    /// epoch-driven sampling profiler. Telemetry observes execution without
    /// changing the code any tier emits — it is *not* part of
    /// [`EngineConfig::compile_fingerprint`] — and charges no simulated
    /// cycles, so enabling it never perturbs measured `exec_cycles`.
    pub telemetry: bool,
    /// Per-tenant resource ceilings (memory pages, table elements, call
    /// depth) enforced at instantiation and at `memory.grow`.
    pub limits: ResourceLimits,
    /// Loop back-edge count after which a running activation is transferred
    /// mid-loop into optimizing-tier code (on-stack replacement). `None`
    /// disables OSR; `Some(0)` requests the transition at the very first
    /// back edge. The counter piggybacks on the fused fuel/epoch meter-check
    /// sites, so interpreter and baseline hot loops pay no extra cold-path
    /// branch. Independent of the call-count promotion in
    /// [`TierPolicy::Tiered`]: OSR rescues hot *loops* the call counter is
    /// blind to. Enabling OSR changes the code both compiling tiers emit
    /// (loop-head poll sites in baseline code, entry stubs in optimized
    /// code), so the *enablement bit* — never the threshold value — is
    /// folded into [`EngineConfig::compile_fingerprint`] and
    /// [`EngineConfig::opt_fingerprint`].
    pub osr_threshold: Option<u32>,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig::baseline("wizeng-spc", CompilerOptions::allopt())
    }
}

impl EngineConfig {
    /// An interpreter-only configuration (the reproduction's Wizard-INT).
    pub fn interpreter(name: &str) -> EngineConfig {
        EngineConfig {
            name: name.to_string(),
            tier: TierPolicy::InterpreterOnly,
            cost: CostModel::default(),
            lazy_compile: false,
            validate: true,
            deopt_on_probe: false,
            max_call_depth: 10_000,
            backend: CodeBackend::VirtualIsa,
            compile_workers: 1,
            gc_threshold: 0,
            metering: false,
            telemetry: false,
            limits: ResourceLimits::unlimited(),
            osr_threshold: None,
        }
    }

    /// A baseline-compiler-only configuration with the given options.
    pub fn baseline(name: &str, options: CompilerOptions) -> EngineConfig {
        EngineConfig {
            name: name.to_string(),
            tier: TierPolicy::BaselineOnly(options),
            cost: CostModel::default(),
            lazy_compile: false,
            validate: true,
            deopt_on_probe: false,
            max_call_depth: 10_000,
            backend: CodeBackend::VirtualIsa,
            compile_workers: 1,
            gc_threshold: 0,
            metering: false,
            telemetry: false,
            limits: ResourceLimits::unlimited(),
            osr_threshold: None,
        }
    }

    /// An optimizing-compiler-only configuration.
    pub fn optimizing(name: &str) -> EngineConfig {
        EngineConfig {
            name: name.to_string(),
            tier: TierPolicy::OptimizingOnly,
            cost: CostModel::default(),
            lazy_compile: false,
            validate: true,
            deopt_on_probe: false,
            max_call_depth: 10_000,
            backend: CodeBackend::VirtualIsa,
            compile_workers: 1,
            gc_threshold: 0,
            metering: false,
            telemetry: false,
            limits: ResourceLimits::unlimited(),
            osr_threshold: None,
        }
    }

    /// A two-tier configuration: interpreter first, baseline when hot.
    pub fn tiered(name: &str, threshold: u32, baseline: CompilerOptions) -> EngineConfig {
        EngineConfig {
            name: name.to_string(),
            tier: TierPolicy::Tiered {
                threshold,
                opt_threshold: None,
                baseline,
            },
            cost: CostModel::default(),
            lazy_compile: true,
            validate: true,
            deopt_on_probe: false,
            max_call_depth: 10_000,
            backend: CodeBackend::VirtualIsa,
            compile_workers: 1,
            gc_threshold: 0,
            metering: false,
            telemetry: false,
            limits: ResourceLimits::unlimited(),
            osr_threshold: None,
        }
    }

    /// Adds the optimizing tier on top of this configuration: functions
    /// called more than `opt_threshold` times are recompiled by the
    /// SSA-based optimizing compiler (`crates/optc`) and promoted at their
    /// next activation. A [`EngineConfig::tiered`] configuration becomes
    /// three-tier (interpreter → baseline → optimizing); a baseline
    /// configuration becomes baseline-then-optimizing. Interpreter-only and
    /// optimizing-only configurations are unchanged.
    pub fn with_opt_tier(mut self, opt_threshold: u32) -> EngineConfig {
        self.tier = match self.tier {
            TierPolicy::Tiered {
                threshold,
                baseline,
                ..
            } => TierPolicy::Tiered {
                threshold,
                opt_threshold: Some(opt_threshold),
                baseline,
            },
            TierPolicy::BaselineOnly(baseline) => TierPolicy::Tiered {
                threshold: 0,
                opt_threshold: Some(opt_threshold),
                baseline,
            },
            other => other,
        };
        self
    }

    /// Marks this configuration as compiling lazily at first call.
    pub fn with_lazy_compile(mut self, lazy: bool) -> EngineConfig {
        self.lazy_compile = lazy;
        self
    }

    /// Disables validation (the wasm3 design point).
    pub fn without_validation(mut self) -> EngineConfig {
        self.validate = false;
        self
    }

    /// Enables tier-down to the interpreter when probes fire in JIT code.
    pub fn with_deopt_on_probe(mut self) -> EngineConfig {
        self.deopt_on_probe = true;
        self
    }

    /// Selects the macro-assembler backend the compiling tiers emit through
    /// (see [`EngineConfig::backend`]).
    pub fn with_backend(mut self, backend: CodeBackend) -> EngineConfig {
        self.backend = backend;
        self
    }

    /// Shards eager (instantiate-time) compilation across `workers` threads
    /// (see [`EngineConfig::compile_workers`]).
    pub fn with_compile_workers(mut self, workers: usize) -> EngineConfig {
        self.compile_workers = workers.max(1);
        self
    }

    /// Sets the host GC heap's collection threshold (see
    /// [`EngineConfig::gc_threshold`]).
    pub fn with_gc_threshold(mut self, threshold: usize) -> EngineConfig {
        self.gc_threshold = threshold;
        self
    }

    /// Enables deterministic fuel accounting and epoch-based preemption in
    /// every tier (see [`EngineConfig::metering`]).
    pub fn with_metering(mut self) -> EngineConfig {
        self.metering = true;
        self
    }

    /// Attaches a live telemetry sink to engines built from this
    /// configuration (see [`EngineConfig::telemetry`]).
    pub fn with_telemetry(mut self) -> EngineConfig {
        self.telemetry = true;
        self
    }

    /// Sets per-tenant resource ceilings (see [`EngineConfig::limits`]).
    pub fn with_limits(mut self, limits: ResourceLimits) -> EngineConfig {
        self.limits = limits;
        self
    }

    /// Enables on-stack replacement: after `threshold` back edges of any one
    /// loop, the running activation is transferred mid-loop into
    /// optimizing-tier code (see [`EngineConfig::osr_threshold`]). `0` means
    /// the first back edge already requests the transition. Has no effect on
    /// [`TierPolicy::OptimizingOnly`] configurations, which never run a
    /// lower tier.
    pub fn with_osr(mut self, threshold: u32) -> EngineConfig {
        self.osr_threshold = Some(threshold);
        self
    }

    /// A stable fingerprint of the *compiler-options* axes that affect the
    /// code the compiling tiers emit: the tier policy, the metering flag and
    /// each [`CompilerOptions`] feature axis. Labels (the configuration and
    /// options names) and execution-only knobs (cost model, call-depth
    /// limit, laziness, tier-up threshold, GC threshold, worker count) are
    /// deliberately excluded — configurations differing only in those
    /// produce byte-identical code and may share a cache entry. The
    /// [`EngineConfig::backend`] is *not* folded in either: it is its own
    /// axis of the cache key (see [`crate::cache::CacheKey`]), so pair this
    /// fingerprint with the backend when keying anything by it.
    pub fn compile_fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        // Metering changes emitted code in every compiling tier (fuel/epoch
        // check sequences at block headers), so it is a code-affecting axis.
        h.write_bool(self.metering);
        // So does enabling OSR (loop-head poll sites in baseline code); the
        // threshold value itself only decides *when* a transition happens.
        h.write_bool(self.osr_threshold.is_some());
        match &self.tier {
            TierPolicy::InterpreterOnly => {
                h.write_u8(0);
            }
            TierPolicy::BaselineOnly(options) => {
                h.write_u8(1);
                fold_options(&mut h, options);
            }
            TierPolicy::OptimizingOnly => {
                h.write_u8(2);
            }
            TierPolicy::Tiered { baseline, .. } => {
                h.write_u8(3);
                fold_options(&mut h, baseline);
            }
        }
        h.finish()
    }

    /// A stable fingerprint of the optimizing-tier axis: `0` when this
    /// configuration never runs the optimizing compiler, the optimizing
    /// pipeline's own fingerprint otherwise. Its own [`crate::cache::CacheKey`]
    /// field, so artifacts built with and without the optimizing tier never
    /// alias (their opt code slots differ). The promotion *threshold* is
    /// deliberately excluded: it decides when code is produced, not what
    /// code.
    pub fn opt_fingerprint(&self) -> u64 {
        // OSR reaches the optimizing tier without a call-count promotion
        // policy, and OSR-enabled opt code differs (entry stubs, reserved
        // interpreter operand region), so both axes fold in here.
        if self.tier.uses_opt_tier() || self.osr_threshold.is_some() {
            let mut h = Fnv64::new();
            h.write_u64(optc::OptimizingCompiler::pipeline_fingerprint())
                .write_bool(self.osr_threshold.is_some());
            h.finish()
        } else {
            0
        }
    }

    /// The baseline compiler options of this configuration, if any tier uses
    /// the baseline compiler.
    pub fn baseline_options(&self) -> Option<&CompilerOptions> {
        match &self.tier {
            TierPolicy::BaselineOnly(o) => Some(o),
            TierPolicy::Tiered { baseline, .. } => Some(baseline),
            _ => None,
        }
    }
}

/// Folds every semantic [`CompilerOptions`] axis (not the display name) into
/// a fingerprint.
fn fold_options(h: &mut Fnv64, options: &CompilerOptions) {
    h.write_bool(options.register_allocation)
        .write_bool(options.multi_register)
        .write_bool(options.track_constants)
        .write_bool(options.constant_folding)
        .write_bool(options.instruction_selection)
        .write_u8(match options.tagging {
            TagStrategy::None => 0,
            TagStrategy::Eager => 1,
            TagStrategy::EagerOperandsOnly => 2,
            TagStrategy::EagerLocalsOnly => 3,
            TagStrategy::OnDemand => 4,
            TagStrategy::Lazy => 5,
            TagStrategy::Stackmaps => 6,
        })
        .write_bool(options.multi_value)
        .write_u8(match options.probe_mode {
            ProbeMode::Runtime => 0,
            ProbeMode::Optimized => 1,
        })
        .write_bool(options.extra_lowering_pass)
        .write_bool(options.copy_and_patch)
        .write_bool(options.debug_metadata);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_tiers() {
        let i = EngineConfig::interpreter("wizeng-int");
        assert_eq!(i.tier, TierPolicy::InterpreterOnly);
        assert!(i.validate);
        assert!(i.baseline_options().is_none());

        let b = EngineConfig::baseline("spc", CompilerOptions::allopt());
        assert!(matches!(b.tier, TierPolicy::BaselineOnly(_)));
        assert_eq!(b.baseline_options().unwrap().name, "allopt");

        let t = EngineConfig::tiered("tiered", 10, CompilerOptions::allopt());
        assert!(t.lazy_compile);
        assert!(t.baseline_options().is_some());

        let o = EngineConfig::optimizing("opt");
        assert!(matches!(o.tier, TierPolicy::OptimizingOnly));
    }

    #[test]
    fn builder_modifiers() {
        let c = EngineConfig::interpreter("wasm3-like")
            .without_validation()
            .with_lazy_compile(true);
        assert!(!c.validate);
        assert!(c.lazy_compile);
        let d = EngineConfig::default().with_deopt_on_probe();
        assert!(d.deopt_on_probe);
        assert_eq!(d.backend, CodeBackend::VirtualIsa);
        let x = EngineConfig::default().with_backend(CodeBackend::X64);
        assert_eq!(x.backend, CodeBackend::X64);
    }

    #[test]
    fn pipeline_knobs_default_off_and_build() {
        let d = EngineConfig::default();
        assert_eq!(d.compile_workers, 1);
        assert_eq!(d.gc_threshold, 0);
        let c = EngineConfig::default().with_compile_workers(8).with_gc_threshold(64);
        assert_eq!(c.compile_workers, 8);
        assert_eq!(c.gc_threshold, 64);
        assert_eq!(
            EngineConfig::default().with_compile_workers(0).compile_workers,
            1,
            "at least one worker"
        );
    }

    #[test]
    fn compile_fingerprint_tracks_code_affecting_axes_only() {
        let base = EngineConfig::baseline("a", CompilerOptions::allopt());
        let fp = base.compile_fingerprint();
        // Non-semantic differences keep the fingerprint.
        assert_eq!(fp, EngineConfig::baseline("z", CompilerOptions::allopt()).compile_fingerprint());
        assert_eq!(fp, base.clone().with_lazy_compile(true).compile_fingerprint());
        assert_eq!(fp, base.clone().with_compile_workers(8).compile_fingerprint());
        assert_eq!(fp, base.clone().with_gc_threshold(10).compile_fingerprint());
        // The backend is deliberately NOT part of this fingerprint — it is a
        // separate axis of the cache key.
        assert_eq!(fp, base.clone().with_backend(CodeBackend::X64).compile_fingerprint());
        // Resource limits are execution-only: they never change emitted code.
        assert_eq!(
            fp,
            base.clone()
                .with_limits(ResourceLimits {
                    memory_pages: Some(4),
                    table_elements: Some(8),
                    call_depth: Some(100),
                })
                .compile_fingerprint()
        );
        // Metering changes emitted code, so it changes the fingerprint.
        assert_ne!(fp, base.clone().with_metering().compile_fingerprint());
        // Telemetry observes without changing emitted code: same fingerprint,
        // so traced and untraced engines share cache entries.
        assert_eq!(fp, base.clone().with_telemetry().compile_fingerprint());
        // Code-affecting differences change it.
        assert_ne!(fp, EngineConfig::baseline("a", CompilerOptions::nok()).compile_fingerprint());
        assert_ne!(fp, EngineConfig::interpreter("a").compile_fingerprint());
        assert_ne!(fp, EngineConfig::optimizing("a").compile_fingerprint());
        // Tiered with the same baseline options differs only by tier tag.
        let tiered = EngineConfig::tiered("a", 10, CompilerOptions::allopt());
        assert_ne!(fp, tiered.compile_fingerprint());
        assert_eq!(
            tiered.compile_fingerprint(),
            EngineConfig::tiered("b", 99, CompilerOptions::allopt()).compile_fingerprint(),
            "the tier-up threshold does not affect emitted code"
        );
    }

    #[test]
    fn with_opt_tier_extends_tiered_and_baseline_policies() {
        let t = EngineConfig::tiered("t", 2, CompilerOptions::allopt()).with_opt_tier(5);
        match &t.tier {
            TierPolicy::Tiered {
                threshold,
                opt_threshold,
                ..
            } => {
                assert_eq!(*threshold, 2);
                assert_eq!(*opt_threshold, Some(5));
            }
            other => panic!("{other:?}"),
        }
        assert!(t.tier.uses_opt_tier());

        let b = EngineConfig::baseline("b", CompilerOptions::allopt()).with_opt_tier(3);
        match &b.tier {
            TierPolicy::Tiered {
                threshold,
                opt_threshold,
                ..
            } => {
                assert_eq!(*threshold, 0, "baseline from the first call");
                assert_eq!(*opt_threshold, Some(3));
            }
            other => panic!("{other:?}"),
        }

        let i = EngineConfig::interpreter("i").with_opt_tier(3);
        assert_eq!(i.tier, TierPolicy::InterpreterOnly, "interpreter unchanged");
        assert!(!EngineConfig::tiered("t", 2, CompilerOptions::allopt())
            .tier
            .uses_opt_tier());
        assert!(EngineConfig::optimizing("o").tier.uses_opt_tier());
    }

    #[test]
    fn metering_and_limits_default_off() {
        let d = EngineConfig::default();
        assert!(!d.metering);
        assert_eq!(d.limits, ResourceLimits::unlimited());
        let m = EngineConfig::default().with_metering().with_limits(ResourceLimits {
            memory_pages: Some(16),
            table_elements: None,
            call_depth: Some(64),
        });
        assert!(m.metering);
        assert_eq!(m.limits.memory_pages, Some(16));
        assert_eq!(m.limits.call_depth, Some(64));
    }

    #[test]
    fn opt_fingerprint_separates_the_opt_axis() {
        let plain = EngineConfig::tiered("t", 2, CompilerOptions::allopt());
        let with_opt = plain.clone().with_opt_tier(5);
        assert_eq!(plain.opt_fingerprint(), 0);
        assert_ne!(with_opt.opt_fingerprint(), 0);
        assert_eq!(
            with_opt.opt_fingerprint(),
            plain.clone().with_opt_tier(99).opt_fingerprint(),
            "the promotion threshold does not affect emitted code"
        );
        assert_eq!(
            with_opt.opt_fingerprint(),
            EngineConfig::optimizing("o").opt_fingerprint()
        );
        // The baseline axis is unchanged by adding the optimizing tier.
        assert_eq!(plain.compile_fingerprint(), with_opt.compile_fingerprint());
    }
}
