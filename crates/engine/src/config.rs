//! Engine configurations: which execution tier(s) to use and how.
//!
//! A configuration corresponds to one "engine configuration E" of the paper's
//! Section VI: a specific tier (or tier combination) with its own setup and
//! execution characteristics. The Fig. 10 experiment instantiates many of
//! these side by side.

use machine::cost::CostModel;
use machine::masm::CodeBackend;
use spc::CompilerOptions;

/// Which execution tier(s) a configuration uses.
#[derive(Debug, Clone, PartialEq)]
pub enum TierPolicy {
    /// Execute everything in the in-place interpreter.
    InterpreterOnly,
    /// Execute everything in baseline-compiled code with the given compiler
    /// configuration.
    BaselineOnly(CompilerOptions),
    /// Execute everything in optimizing-compiled code.
    OptimizingOnly,
    /// Start in the interpreter and tier up a function to baseline code once
    /// it has been called `threshold` times.
    Tiered {
        /// Number of calls before a function is compiled.
        threshold: u32,
        /// Baseline compiler configuration used for hot functions.
        baseline: CompilerOptions,
    },
}

/// A complete engine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Configuration name (used in reports and figures).
    pub name: String,
    /// The tier policy.
    pub tier: TierPolicy,
    /// The cycle cost model shared by all tiers.
    pub cost: CostModel,
    /// Compile functions lazily at first call instead of eagerly at
    /// instantiation (a confounding factor the paper calls out in Fig. 10).
    pub lazy_compile: bool,
    /// Validate the module during instantiation (wasm3 famously does not).
    pub validate: bool,
    /// When JIT code fires a probe, transfer the frame back to the
    /// interpreter (tier-down / deopt) instead of continuing in JIT code.
    pub deopt_on_probe: bool,
    /// Maximum call depth before a stack-overflow trap.
    pub max_call_depth: usize,
    /// Which macro-assembler backend the compiling tiers emit through.
    ///
    /// Execution always runs virtual-ISA code (the simulator cannot execute
    /// real machine bytes in this offline environment); selecting
    /// [`CodeBackend::X64`] additionally emits each compiled function
    /// through the x86-64 backend so [`crate::RunMetrics`] reports *real*
    /// encoded machine-code bytes instead of the virtual ISA's estimate.
    pub backend: CodeBackend,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig::baseline("wizeng-spc", CompilerOptions::allopt())
    }
}

impl EngineConfig {
    /// An interpreter-only configuration (the reproduction's Wizard-INT).
    pub fn interpreter(name: &str) -> EngineConfig {
        EngineConfig {
            name: name.to_string(),
            tier: TierPolicy::InterpreterOnly,
            cost: CostModel::default(),
            lazy_compile: false,
            validate: true,
            deopt_on_probe: false,
            max_call_depth: 10_000,
            backend: CodeBackend::VirtualIsa,
        }
    }

    /// A baseline-compiler-only configuration with the given options.
    pub fn baseline(name: &str, options: CompilerOptions) -> EngineConfig {
        EngineConfig {
            name: name.to_string(),
            tier: TierPolicy::BaselineOnly(options),
            cost: CostModel::default(),
            lazy_compile: false,
            validate: true,
            deopt_on_probe: false,
            max_call_depth: 10_000,
            backend: CodeBackend::VirtualIsa,
        }
    }

    /// An optimizing-compiler-only configuration.
    pub fn optimizing(name: &str) -> EngineConfig {
        EngineConfig {
            name: name.to_string(),
            tier: TierPolicy::OptimizingOnly,
            cost: CostModel::default(),
            lazy_compile: false,
            validate: true,
            deopt_on_probe: false,
            max_call_depth: 10_000,
            backend: CodeBackend::VirtualIsa,
        }
    }

    /// A two-tier configuration: interpreter first, baseline when hot.
    pub fn tiered(name: &str, threshold: u32, baseline: CompilerOptions) -> EngineConfig {
        EngineConfig {
            name: name.to_string(),
            tier: TierPolicy::Tiered {
                threshold,
                baseline,
            },
            cost: CostModel::default(),
            lazy_compile: true,
            validate: true,
            deopt_on_probe: false,
            max_call_depth: 10_000,
            backend: CodeBackend::VirtualIsa,
        }
    }

    /// Marks this configuration as compiling lazily at first call.
    pub fn with_lazy_compile(mut self, lazy: bool) -> EngineConfig {
        self.lazy_compile = lazy;
        self
    }

    /// Disables validation (the wasm3 design point).
    pub fn without_validation(mut self) -> EngineConfig {
        self.validate = false;
        self
    }

    /// Enables tier-down to the interpreter when probes fire in JIT code.
    pub fn with_deopt_on_probe(mut self) -> EngineConfig {
        self.deopt_on_probe = true;
        self
    }

    /// Selects the macro-assembler backend the compiling tiers emit through
    /// (see [`EngineConfig::backend`]).
    pub fn with_backend(mut self, backend: CodeBackend) -> EngineConfig {
        self.backend = backend;
        self
    }

    /// The baseline compiler options of this configuration, if any tier uses
    /// the baseline compiler.
    pub fn baseline_options(&self) -> Option<&CompilerOptions> {
        match &self.tier {
            TierPolicy::BaselineOnly(o) => Some(o),
            TierPolicy::Tiered { baseline, .. } => Some(baseline),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_tiers() {
        let i = EngineConfig::interpreter("wizeng-int");
        assert_eq!(i.tier, TierPolicy::InterpreterOnly);
        assert!(i.validate);
        assert!(i.baseline_options().is_none());

        let b = EngineConfig::baseline("spc", CompilerOptions::allopt());
        assert!(matches!(b.tier, TierPolicy::BaselineOnly(_)));
        assert_eq!(b.baseline_options().unwrap().name, "allopt");

        let t = EngineConfig::tiered("tiered", 10, CompilerOptions::allopt());
        assert!(t.lazy_compile);
        assert!(t.baseline_options().is_some());

        let o = EngineConfig::optimizing("opt");
        assert!(matches!(o.tier, TierPolicy::OptimizingOnly));
    }

    #[test]
    fn builder_modifiers() {
        let c = EngineConfig::interpreter("wasm3-like")
            .without_validation()
            .with_lazy_compile(true);
        assert!(!c.validate);
        assert!(c.lazy_compile);
        let d = EngineConfig::default().with_deopt_on_probe();
        assert!(d.deopt_on_probe);
        assert_eq!(d.backend, CodeBackend::VirtualIsa);
        let x = EngineConfig::default().with_backend(CodeBackend::X64);
        assert_eq!(x.backend, CodeBackend::X64);
    }
}
