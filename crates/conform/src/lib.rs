//! The conformance subsystem: spec-style assertion scripts, a multi-config
//! runner, and opcode-coverage accounting.
//!
//! The paper's baseline compiler lives inside a production engine whose
//! correctness is anchored by the upstream specification test suite; this
//! crate is that anchor for the reproduction. A checked-in corpus of
//! wast-style scripts (`scripts/*.wast`) exercises arithmetic edge cases,
//! control flow, memory, globals, and calls, and every assertion runs under
//! **every** tier×backend configuration ([`runner::all_configs`]): the
//! interpreter, the baseline compiler eager and lazy, each on the virtual-ISA
//! and x86-64 backends, plus the tiered engine. A shared decoder/validator/
//! semantics bug can no longer hide behind tiers agreeing with each other —
//! the scripts state the expected values and trap causes independently.
//!
//! * [`script`] — the wast command parser (`module`, `invoke`,
//!   `assert_return`, `assert_trap`, `assert_invalid`, `assert_malformed`),
//!   built on the WAT frontend's s-expression parser;
//! * [`runner`] — executes a script under an [`engine::EngineConfig`],
//!   matching traps via [`engine::TrapReason`] and floats bit-exactly (with
//!   `nan:canonical`/`nan:arithmetic` patterns);
//! * [`coverage`] — the exhaustive every-opcode module and census that make
//!   the differential fuzzer's coverage claim provable.
//!
//! # Examples
//!
//! ```
//! let script = conform::script::parse_script(
//!     "demo",
//!     r#"(module (func (export "neg") (param i32) (result i32)
//!           i32.const 0
//!           local.get 0
//!           i32.sub))
//!        (assert_return (invoke "neg" (i32.const 7)) (i32.const -7))"#,
//! ).unwrap();
//! for config in conform::runner::all_configs() {
//!     let outcome = conform::runner::run_script(&script, &config);
//!     assert!(outcome.is_pass(), "{:?}", outcome.failures);
//! }
//! ```

#![warn(missing_docs)]

pub mod coverage;
pub mod runner;
pub mod script;

pub use runner::{all_configs, run_script, run_script_mutated, Outcome};
pub use script::{parse_script, Command, Script};

use std::path::PathBuf;

/// The directory holding the checked-in conformance corpus.
pub fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("scripts")
}

/// Loads and parses every `.wast` script in the corpus, sorted by name.
///
/// # Panics
///
/// Panics if the corpus directory is missing or a script fails to parse —
/// both are build defects, not runtime conditions.
pub fn load_corpus() -> Vec<Script> {
    let dir = corpus_dir();
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus directory {}: {e}", dir.display()))
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "wast"))
        .collect();
    paths.sort();
    paths
        .iter()
        .map(|path| {
            let name = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("script")
                .to_string();
            let src = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
            script::parse_script(&name, &src)
                .unwrap_or_else(|e| panic!("{}: {}", path.display(), e.describe(&src)))
        })
        .collect()
}
