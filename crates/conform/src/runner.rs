//! Executing conformance scripts against engine configurations.
//!
//! [`all_configs`] is the canonical tier×backend matrix every conformance
//! artifact runs under: the in-place interpreter, the baseline compiler
//! eagerly and lazily, each on the virtual-ISA and x86-64 macro-assembler
//! backends, the two-tier (interpreter → baseline) configuration, and the
//! three-tier configuration that promotes hot functions through the
//! SSA-based optimizing compiler — on both backends. Eight configurations
//! in all. A script passes only when every assertion holds under every
//! configuration — the strongest statement that the decoder, text frontend,
//! validator, and all execution tiers agree.
//!
//! The three-tier configurations use low thresholds (baseline after 1 call,
//! optimizing after 2) so repeated `assert_return`s in a script exercise
//! every promotion boundary: the same invocation runs interpreted, then
//! baseline-compiled, then optimized, and must agree each time.

use crate::script::{Action, Command, ModuleForm, Script};
use engine::{Engine, EngineConfig, Imports, Instance, Instrumentation, TrapInfo, TrapReason};
use machine::inst::TrapCode;
use machine::masm::CodeBackend;
use machine::values::WasmValue;
use spc::CompilerOptions;
use wasm::wat;
use wasm::Module;

/// The tier×backend configurations the conformance corpus runs under.
pub fn all_configs() -> Vec<EngineConfig> {
    vec![
        EngineConfig::interpreter("conf-int"),
        EngineConfig::baseline("conf-spc", CompilerOptions::allopt()),
        EngineConfig::baseline("conf-spc-x64", CompilerOptions::allopt())
            .with_backend(CodeBackend::X64),
        EngineConfig::baseline("conf-lazy", CompilerOptions::allopt()).with_lazy_compile(true),
        EngineConfig::baseline("conf-lazy-x64", CompilerOptions::allopt())
            .with_lazy_compile(true)
            .with_backend(CodeBackend::X64),
        EngineConfig::tiered("conf-tiered", 2, CompilerOptions::allopt()),
        EngineConfig::tiered("conf-opt", 1, CompilerOptions::allopt()).with_opt_tier(2),
        EngineConfig::tiered("conf-opt-x64", 1, CompilerOptions::allopt())
            .with_opt_tier(2)
            .with_backend(CodeBackend::X64),
    ]
}

/// The result of running one script under one configuration.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Assertions that held.
    pub passed: usize,
    /// Human-readable descriptions of everything that failed.
    pub failures: Vec<String>,
    /// Fuel consumed by each action executed while a `(fuel N)` budget was
    /// armed, in script order. Deterministic metering means this vector is
    /// identical across every configuration in [`all_configs`] — the
    /// conformance tests assert exactly that.
    pub fuel: Vec<u64>,
    /// The diagnostics of every `assert_trap` that trapped as expected, in
    /// script order. Backtrace equality ignores the executing tier, so —
    /// like [`Outcome::fuel`] — this vector is identical across every
    /// configuration in [`all_configs`], and the conformance tests assert
    /// exactly that.
    pub traps: Vec<TrapInfo>,
}

impl Outcome {
    /// True when nothing failed.
    pub fn is_pass(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs `script` under `config`.
pub fn run_script(script: &Script, config: &EngineConfig) -> Outcome {
    run_script_mutated(script, config, None)
}

/// Runs `script` under `config`, applying `mutate` to every module before
/// instantiation.
///
/// The mutation hook exists to *prove the harness can catch divergences*: a
/// deliberately broken module (say, `i32.div_s` rewritten to `i32.div_u` —
/// the shape of a real historical miscompile) must make the corpus fail.
pub fn run_script_mutated(
    script: &Script,
    config: &EngineConfig,
    mutate: Option<&dyn Fn(&mut Module)>,
) -> Outcome {
    // A script with a `(fuel N)` directive runs under the metering variant
    // of the configuration: without check sequences in the compiled tiers,
    // the budget would never be consumed.
    let config = if script.uses_fuel() && !config.metering {
        config.clone().with_metering()
    } else {
        config.clone()
    };
    let config = &config;
    let engine = Engine::new(config.clone());
    let mut outcome = Outcome::default();
    let mut current: Option<Instance> = None;
    // The armed fuel budget: re-applied before every action so each action
    // records its own consumption in `outcome.fuel`.
    let mut budget: Option<u64> = None;
    let ctx = |offset: usize| format!("{}[{}] (+{offset})", script.name, config.name);

    for (command, offset) in &script.commands {
        if let Some(b) = budget {
            if let Some(instance) = current.as_mut() {
                if matches!(
                    command,
                    Command::Invoke(_) | Command::AssertReturn { .. } | Command::AssertTrap { .. }
                ) {
                    instance.set_fuel(b);
                }
            }
        }
        match command {
            Command::Fuel(n) => {
                budget = Some(*n);
                outcome.passed += 1;
            }
            Command::Module(form) => match build_module(form) {
                Ok(mut module) => {
                    if let Some(f) = mutate {
                        f(&mut module);
                    }
                    match engine.instantiate(&module, Imports::new(), Instrumentation::none()) {
                        Ok(instance) => {
                            current = Some(instance);
                            outcome.passed += 1;
                        }
                        Err(e) => {
                            // Do not leave a stale instance behind: later
                            // assertions must fail with "no module
                            // instantiated" instead of silently running
                            // against the previous module.
                            current = None;
                            outcome
                                .failures
                                .push(format!("{}: instantiation failed: {e}", ctx(*offset)));
                        }
                    }
                }
                Err(e) => {
                    current = None;
                    outcome
                        .failures
                        .push(format!("{}: module build failed: {e}", ctx(*offset)));
                }
            },
            Command::Invoke(action) => {
                match invoke(&engine, &mut current, action) {
                    Ok(_) => outcome.passed += 1,
                    Err(e) => outcome
                        .failures
                        .push(format!("{}: invoke {}: {e}", ctx(*offset), action.func)),
                }
            }
            Command::AssertReturn { action, expected } => {
                match invoke(&engine, &mut current, action) {
                    Ok(results) => {
                        let matches = results.len() == expected.len()
                            && expected.iter().zip(&results).all(|(e, a)| e.matches(a));
                        if matches {
                            outcome.passed += 1;
                        } else {
                            outcome.failures.push(format!(
                                "{}: {} returned {results:?}, expected {expected:?}",
                                ctx(*offset),
                                action.func
                            ));
                        }
                    }
                    Err(e) => outcome.failures.push(format!(
                        "{}: {} trapped unexpectedly: {e}",
                        ctx(*offset),
                        action.func
                    )),
                }
            }
            Command::AssertTrap { action, message } => {
                match invoke(&engine, &mut current, action) {
                    Ok(results) => outcome.failures.push(format!(
                        "{}: {} returned {results:?}, expected trap \"{message}\"",
                        ctx(*offset),
                        action.func
                    )),
                    Err(Invocation::Trap(code)) => {
                        let reason = TrapReason::from(code);
                        if reason.matches_wast(message) {
                            outcome.passed += 1;
                            if let Some(info) =
                                current.as_ref().and_then(Instance::last_trap)
                            {
                                outcome.traps.push(info.clone());
                            }
                        } else {
                            outcome.failures.push(format!(
                                "{}: {} trapped with \"{reason}\", expected \"{message}\"",
                                ctx(*offset),
                                action.func
                            ));
                        }
                    }
                    Err(e) => outcome
                        .failures
                        .push(format!("{}: {}: {e}", ctx(*offset), action.func)),
                }
            }
            Command::AssertInvalid { module, message } => match build_module(module) {
                Ok(module) => match wasm::validate::validate(&module) {
                    Err(e) => {
                        if e.message.contains(message) {
                            outcome.passed += 1;
                        } else {
                            outcome.failures.push(format!(
                                "{}: invalid for the wrong reason: got \"{}\", expected \"{message}\"",
                                ctx(*offset),
                                e.message
                            ));
                        }
                    }
                    Ok(_) => outcome.failures.push(format!(
                        "{}: module validated but should be invalid (\"{message}\")",
                        ctx(*offset)
                    )),
                },
                Err(e) => outcome.failures.push(format!(
                    "{}: assert_invalid module failed to build: {e}",
                    ctx(*offset)
                )),
            },
            Command::AssertMalformed { module, message } => match build_module(module) {
                Err(_) => outcome.passed += 1,
                Ok(_) => outcome.failures.push(format!(
                    "{}: module parsed but should be malformed (\"{message}\")",
                    ctx(*offset)
                )),
            },
        }
        // Record how much of the armed budget the action consumed; the trap
        // case records the full budget (exhaustion clamps remaining to 0).
        if budget.is_some()
            && matches!(
                command,
                Command::Invoke(_) | Command::AssertReturn { .. } | Command::AssertTrap { .. }
            )
        {
            if let Some(consumed) = current.as_ref().and_then(Instance::fuel_consumed) {
                outcome.fuel.push(consumed);
            }
        }
    }
    outcome
}

/// Why an invocation failed.
#[derive(Debug)]
enum Invocation {
    /// No module is instantiated.
    NoInstance,
    /// The export does not exist.
    NoExport,
    /// Execution trapped.
    Trap(TrapCode),
}

impl std::fmt::Display for Invocation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Invocation::NoInstance => write!(f, "no module instantiated"),
            Invocation::NoExport => write!(f, "export not found"),
            Invocation::Trap(code) => write!(f, "trap: {}", TrapReason::from(*code)),
        }
    }
}

fn invoke(
    engine: &Engine,
    current: &mut Option<Instance>,
    action: &Action,
) -> Result<Vec<WasmValue>, Invocation> {
    let instance = current.as_mut().ok_or(Invocation::NoInstance)?;
    if instance.module().exported_func(&action.func).is_none() {
        return Err(Invocation::NoExport);
    }
    engine
        .call_export(instance, &action.func, &action.args)
        .map_err(Invocation::Trap)
}

/// Builds the module of a `(module …)` command.
fn build_module(form: &ModuleForm) -> Result<Module, String> {
    match form {
        ModuleForm::Text(expr) => wat::lower::module_from_sexpr(expr).map_err(|e| e.to_string()),
        ModuleForm::Binary(bytes) => wasm::decode::decode(bytes).map_err(|e| e.to_string()),
        ModuleForm::Quote(text) => wat::parse_module(text).map_err(|e| e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::parse_script;

    #[test]
    fn a_small_script_passes_everywhere() {
        let script = parse_script(
            "smoke",
            r#"
            (module
              (func (export "add") (param i32 i32) (result i32)
                local.get 0
                local.get 1
                i32.add)
              (func (export "div") (param i32 i32) (result i32)
                local.get 0
                local.get 1
                i32.div_s))
            (assert_return (invoke "add" (i32.const 2) (i32.const 40)) (i32.const 42))
            (assert_trap (invoke "div" (i32.const 1) (i32.const 0)) "integer divide by zero")
            (assert_trap (invoke "div" (i32.const -2147483648) (i32.const -1)) "integer overflow")
            "#,
        )
        .expect("parses");
        for config in all_configs() {
            let outcome = run_script(&script, &config);
            assert!(
                outcome.is_pass(),
                "[{}] {:#?}",
                config.name,
                outcome.failures
            );
            assert_eq!(outcome.passed, 4);
        }
    }

    #[test]
    fn failures_are_reported_not_panicked() {
        let script = parse_script(
            "bad",
            r#"
            (module (func (export "one") (result i32) i32.const 1))
            (assert_return (invoke "one") (i32.const 2))
            (assert_trap (invoke "one") "unreachable")
            (assert_return (invoke "missing") (i32.const 0))
            "#,
        )
        .expect("parses");
        let outcome = run_script(&script, &EngineConfig::interpreter("int"));
        assert_eq!(outcome.passed, 1, "only the module command passes");
        assert_eq!(outcome.failures.len(), 3);
    }

    #[test]
    fn failed_instantiation_clears_the_current_instance() {
        // The second module is invalid; assertions after it must not run
        // against the first module.
        let script = parse_script(
            "stale",
            r#"
            (module (func (export "f") (result i32) i32.const 1))
            (assert_return (invoke "f") (i32.const 1))
            (module (func (export "f") (result i32) nop))
            (assert_return (invoke "f") (i32.const 1))
            "#,
        )
        .expect("parses");
        let outcome = run_script(&script, &EngineConfig::interpreter("int"));
        assert_eq!(outcome.passed, 2, "first module + first assert");
        assert_eq!(outcome.failures.len(), 2, "bad module AND the stale assert both fail");
        assert!(
            outcome.failures[1].contains("no module instantiated"),
            "{:?}",
            outcome.failures
        );
    }

    #[test]
    fn a_broken_module_mutation_is_caught() {
        let script = parse_script(
            "divergence",
            r#"
            (module (func (export "half") (param i32) (result i32)
              local.get 0
              i32.const 2
              i32.div_s))
            (assert_return (invoke "half" (i32.const -7)) (i32.const -3))
            "#,
        )
        .expect("parses");
        // Healthy build: passes.
        let config = EngineConfig::default();
        assert!(run_script(&script, &config).is_pass());
        // "Historical miscompile": signed division emitted as unsigned.
        let break_divs = |m: &mut Module| {
            for func in &mut m.funcs {
                for b in &mut func.code {
                    if *b == wasm::Opcode::I32DivS.to_byte() {
                        *b = wasm::Opcode::I32DivU.to_byte();
                    }
                }
            }
        };
        let outcome = run_script_mutated(&script, &config, Some(&break_divs));
        assert!(!outcome.is_pass(), "the corpus must catch the divergence");
    }
}
