//! Opcode-coverage accounting for the conformance subsystem.
//!
//! [`exhaustive_module`] builds a deterministic, trap-free module whose
//! `main` export executes (or at least encodes, for dead-path instructions
//! like `unreachable`) **every opcode the engine implements**, folding every
//! produced value into an `i32` checksum. [`opcode_census`] counts the
//! opcodes actually present in a module's bodies. Together they make the
//! fuzzer's coverage claim checkable: the census of the generated corpus plus
//! the exhaustive module must equal [`Opcode::ALL`] exactly — no silent holes
//! in what the differential tests exercise.

use std::collections::BTreeMap;
use wasm::builder::{CodeBuilder, ModuleBuilder};
use wasm::module::ConstExpr;
use wasm::opcode::Opcode;
use wasm::reader::BytecodeReader;
use wasm::types::{BlockType, FuncType, GlobalType, Limits, ValueType};
use wasm::Module;

/// Counts how often each opcode occurs across all function bodies.
///
/// Unknown bytes terminate the walk of that body (they cannot occur in
/// modules produced by the builder, decoder, or WAT frontend).
pub fn opcode_census(module: &Module) -> BTreeMap<u8, u32> {
    let mut census = BTreeMap::new();
    for func in &module.funcs {
        let mut r = BytecodeReader::new(&func.code);
        while !r.is_at_end() {
            let Ok(op) = r.read_opcode() else { break };
            *census.entry(op.to_byte()).or_insert(0) += 1;
            if r.skip_immediates(op).is_err() {
                break;
            }
        }
    }
    census
}

/// The opcodes in [`Opcode::ALL`] missing from `census`.
pub fn missing_opcodes(census: &BTreeMap<u8, u32>) -> Vec<Opcode> {
    Opcode::ALL
        .iter()
        .copied()
        .filter(|op| !census.contains_key(&op.to_byte()))
        .collect()
}

/// Folds the i32 on top of the stack into the checksum accumulator (local 0).
fn fold32(c: &mut CodeBuilder) {
    c.local_get(0).op(Opcode::I32Add).local_set(0);
}

/// Folds an i64 via `i32.wrap_i64`.
fn fold64(c: &mut CodeBuilder) {
    c.op(Opcode::I32WrapI64);
    fold32(c);
}

/// Folds an f32 via `i32.reinterpret_f32`.
fn fold_f32(c: &mut CodeBuilder) {
    c.op(Opcode::I32ReinterpretF32);
    fold32(c);
}

/// Folds an f64 via `i64.reinterpret_f64`.
fn fold_f64(c: &mut CodeBuilder) {
    c.op(Opcode::I64ReinterpretF64);
    fold64(c);
}

/// Builds the module whose `main` export covers the full opcode set.
///
/// `main: [] -> [i32]` executes deterministically, never traps, and returns
/// an i32 checksum, so it slots directly into the cross-tier differential
/// harness. The function index space is: 0 = `add` (also reachable through
/// the table at slot 1), 1 = `main`.
pub fn exhaustive_module() -> Module {
    let mut b = ModuleBuilder::new();
    let mem = b.add_memory(Limits::bounded(1, 2));
    let table = b.add_table(ValueType::FuncRef, Limits::at_least(4));
    let g_i32 = b.add_global(GlobalType::mutable(ValueType::I32), ConstExpr::I32(11));
    let g_i64 = b.add_global(GlobalType::mutable(ValueType::I64), ConstExpr::I64(-7));
    let g_f32 = b.add_global(GlobalType::mutable(ValueType::F32), ConstExpr::F32(0.5));
    let g_f64 = b.add_global(GlobalType::mutable(ValueType::F64), ConstExpr::F64(2.5));
    let g_ref = b.add_global(
        GlobalType::mutable(ValueType::ExternRef),
        ConstExpr::RefNull(ValueType::ExternRef),
    );

    let binop_ty = FuncType::new(vec![ValueType::I32, ValueType::I32], vec![ValueType::I32]);
    let binop_index = b.add_type(binop_ty.clone());

    // add(a, b) = a + b, via an explicit `return`.
    let add = {
        let mut c = CodeBuilder::new();
        c.local_get(0).local_get(1).op(Opcode::I32Add).return_();
        b.add_func(binop_ty, vec![], c.finish())
    };

    let mut c = CodeBuilder::new();
    // Locals of main: 0 = i32 accumulator, 1 = i32 scratch.

    // ---- Control flow ---------------------------------------------------
    c.nop();
    c.block(BlockType::Empty).end();
    // if/else with a dead `unreachable` in the never-taken arm.
    c.i32_const(0)
        .if_(BlockType::Empty)
        .unreachable()
        .else_()
        .nop()
        .end();
    // br with a value out of a block.
    c.block(BlockType::Value(ValueType::I32)).i32_const(9).br(0).end();
    fold32(&mut c);
    // Loop with a taken backedge and a br_if exit.
    c.i32_const(3).local_set(1);
    c.block(BlockType::Empty)
        .loop_(BlockType::Empty)
        .local_get(1)
        .op(Opcode::I32Eqz)
        .br_if(1)
        .local_get(1)
        .i32_const(1)
        .op(Opcode::I32Sub)
        .local_set(1)
        .br(0)
        .end()
        .end();
    // br_table selecting the default target.
    c.block(BlockType::Empty)
        .block(BlockType::Empty)
        .i32_const(1)
        .br_table(&[0], 1)
        .end()
        .end();
    // Calls, direct and indirect (table slot 1 holds `add`).
    c.i32_const(30).i32_const(12).call(add);
    fold32(&mut c);
    c.i32_const(7).i32_const(5).i32_const(1).call_indirect(binop_index, table);
    fold32(&mut c);

    // ---- Parametric & variables ----------------------------------------
    c.i32_const(99).drop_();
    c.i32_const(3).i32_const(4).i32_const(1).select();
    fold32(&mut c);
    c.i64_const(5).i64_const(6).i32_const(0).select_t(&[ValueType::I64]);
    fold64(&mut c);
    c.i32_const(17).local_tee(1);
    fold32(&mut c);
    c.global_get(g_i32);
    fold32(&mut c);
    c.i32_const(21).global_set(g_i32);
    c.global_get(g_i64);
    fold64(&mut c);
    c.i64_const(8).global_set(g_i64);
    c.global_get(g_f32);
    fold_f32(&mut c);
    c.f32_const(1.25).global_set(g_f32);
    c.global_get(g_f64);
    fold_f64(&mut c);
    c.f64_const(-3.5).global_set(g_f64);

    // ---- Memory ---------------------------------------------------------
    c.i32_const(8).i32_const(-123).mem(Opcode::I32Store, 2, 0);
    c.i32_const(16).i64_const(-4567).mem(Opcode::I64Store, 3, 0);
    c.i32_const(24).f32_const(1.5).mem(Opcode::F32Store, 2, 0);
    c.i32_const(32).f64_const(-2.25).mem(Opcode::F64Store, 3, 0);
    c.i32_const(40).i32_const(0x1FF).mem(Opcode::I32Store8, 0, 0);
    c.i32_const(42).i32_const(0x1FFFF).mem(Opcode::I32Store16, 1, 0);
    c.i32_const(48).i64_const(0x2FF).mem(Opcode::I64Store8, 0, 0);
    c.i32_const(50).i64_const(0x2FFFF).mem(Opcode::I64Store16, 1, 0);
    c.i32_const(56).i64_const(0x0002_FFFF_FFFF).mem(Opcode::I64Store32, 2, 2);
    for (op, addr) in [
        (Opcode::I32Load, 8),
        (Opcode::I32Load8S, 40),
        (Opcode::I32Load8U, 40),
        (Opcode::I32Load16S, 42),
        (Opcode::I32Load16U, 42),
    ] {
        c.i32_const(addr).mem(op, 0, 0);
        fold32(&mut c);
    }
    for (op, addr) in [
        (Opcode::I64Load, 16),
        (Opcode::I64Load8S, 48),
        (Opcode::I64Load8U, 48),
        (Opcode::I64Load16S, 50),
        (Opcode::I64Load16U, 50),
        (Opcode::I64Load32S, 56),
        (Opcode::I64Load32U, 56),
    ] {
        c.i32_const(addr).mem(op, 0, 2);
        fold64(&mut c);
    }
    c.i32_const(24).mem(Opcode::F32Load, 2, 0);
    fold_f32(&mut c);
    c.i32_const(32).mem(Opcode::F64Load, 3, 0);
    fold_f64(&mut c);
    c.memory_size();
    fold32(&mut c);
    c.i32_const(1).memory_grow();
    fold32(&mut c);

    // ---- Integer comparisons -------------------------------------------
    c.i32_const(0).op(Opcode::I32Eqz);
    fold32(&mut c);
    for op in [
        Opcode::I32Eq,
        Opcode::I32Ne,
        Opcode::I32LtS,
        Opcode::I32LtU,
        Opcode::I32GtS,
        Opcode::I32GtU,
        Opcode::I32LeS,
        Opcode::I32LeU,
        Opcode::I32GeS,
        Opcode::I32GeU,
    ] {
        c.i32_const(-3).i32_const(4).op(op);
        fold32(&mut c);
    }
    c.i64_const(1).op(Opcode::I64Eqz);
    fold32(&mut c);
    for op in [
        Opcode::I64Eq,
        Opcode::I64Ne,
        Opcode::I64LtS,
        Opcode::I64LtU,
        Opcode::I64GtS,
        Opcode::I64GtU,
        Opcode::I64LeS,
        Opcode::I64LeU,
        Opcode::I64GeS,
        Opcode::I64GeU,
    ] {
        c.i64_const(-30).i64_const(40).op(op);
        fold32(&mut c);
    }
    for op in [
        Opcode::F32Eq,
        Opcode::F32Ne,
        Opcode::F32Lt,
        Opcode::F32Gt,
        Opcode::F32Le,
        Opcode::F32Ge,
    ] {
        c.f32_const(1.5).f32_const(-2.5).op(op);
        fold32(&mut c);
    }
    for op in [
        Opcode::F64Eq,
        Opcode::F64Ne,
        Opcode::F64Lt,
        Opcode::F64Gt,
        Opcode::F64Le,
        Opcode::F64Ge,
    ] {
        c.f64_const(3.5).f64_const(3.5).op(op);
        fold32(&mut c);
    }

    // ---- Integer arithmetic --------------------------------------------
    for op in [Opcode::I32Clz, Opcode::I32Ctz, Opcode::I32Popcnt] {
        c.i32_const(0x00F0_0F00).op(op);
        fold32(&mut c);
    }
    for op in [
        Opcode::I32Add,
        Opcode::I32Sub,
        Opcode::I32Mul,
        Opcode::I32DivS,
        Opcode::I32DivU,
        Opcode::I32RemS,
        Opcode::I32RemU,
        Opcode::I32And,
        Opcode::I32Or,
        Opcode::I32Xor,
        Opcode::I32Shl,
        Opcode::I32ShrS,
        Opcode::I32ShrU,
        Opcode::I32Rotl,
        Opcode::I32Rotr,
    ] {
        c.i32_const(-1234).i32_const(7).op(op);
        fold32(&mut c);
    }
    for op in [Opcode::I64Clz, Opcode::I64Ctz, Opcode::I64Popcnt] {
        c.i64_const(0x0F0F_0000_FF00_0000).op(op);
        fold64(&mut c);
    }
    for op in [
        Opcode::I64Add,
        Opcode::I64Sub,
        Opcode::I64Mul,
        Opcode::I64DivS,
        Opcode::I64DivU,
        Opcode::I64RemS,
        Opcode::I64RemU,
        Opcode::I64And,
        Opcode::I64Or,
        Opcode::I64Xor,
        Opcode::I64Shl,
        Opcode::I64ShrS,
        Opcode::I64ShrU,
        Opcode::I64Rotl,
        Opcode::I64Rotr,
    ] {
        c.i64_const(-987654321).i64_const(13).op(op);
        fold64(&mut c);
    }

    // ---- Float arithmetic ----------------------------------------------
    for op in [
        Opcode::F32Abs,
        Opcode::F32Neg,
        Opcode::F32Ceil,
        Opcode::F32Floor,
        Opcode::F32Trunc,
        Opcode::F32Nearest,
        Opcode::F32Sqrt,
    ] {
        c.f32_const(6.25).op(op);
        fold_f32(&mut c);
    }
    for op in [
        Opcode::F32Add,
        Opcode::F32Sub,
        Opcode::F32Mul,
        Opcode::F32Div,
        Opcode::F32Min,
        Opcode::F32Max,
        Opcode::F32Copysign,
    ] {
        c.f32_const(-1.5).f32_const(0.25).op(op);
        fold_f32(&mut c);
    }
    for op in [
        Opcode::F64Abs,
        Opcode::F64Neg,
        Opcode::F64Ceil,
        Opcode::F64Floor,
        Opcode::F64Trunc,
        Opcode::F64Nearest,
        Opcode::F64Sqrt,
    ] {
        c.f64_const(12.5).op(op);
        fold_f64(&mut c);
    }
    for op in [
        Opcode::F64Add,
        Opcode::F64Sub,
        Opcode::F64Mul,
        Opcode::F64Div,
        Opcode::F64Min,
        Opcode::F64Max,
        Opcode::F64Copysign,
    ] {
        c.f64_const(-7.5).f64_const(2.0).op(op);
        fold_f64(&mut c);
    }

    // ---- Conversions ----------------------------------------------------
    c.i64_const(0x1_2345_6789).op(Opcode::I32WrapI64);
    fold32(&mut c);
    c.f32_const(-2.75).op(Opcode::I32TruncF32S);
    fold32(&mut c);
    c.f32_const(2.75).op(Opcode::I32TruncF32U);
    fold32(&mut c);
    c.f64_const(-3.25).op(Opcode::I32TruncF64S);
    fold32(&mut c);
    c.f64_const(3.25).op(Opcode::I32TruncF64U);
    fold32(&mut c);
    c.i32_const(-42).op(Opcode::I64ExtendI32S);
    fold64(&mut c);
    c.i32_const(-42).op(Opcode::I64ExtendI32U);
    fold64(&mut c);
    c.f32_const(-100.5).op(Opcode::I64TruncF32S);
    fold64(&mut c);
    c.f32_const(100.5).op(Opcode::I64TruncF32U);
    fold64(&mut c);
    c.f64_const(-1e6).op(Opcode::I64TruncF64S);
    fold64(&mut c);
    c.f64_const(1e6).op(Opcode::I64TruncF64U);
    fold64(&mut c);
    c.i32_const(-9).op(Opcode::F32ConvertI32S);
    fold_f32(&mut c);
    c.i32_const(9).op(Opcode::F32ConvertI32U);
    fold_f32(&mut c);
    c.i64_const(-11).op(Opcode::F32ConvertI64S);
    fold_f32(&mut c);
    c.i64_const(11).op(Opcode::F32ConvertI64U);
    fold_f32(&mut c);
    c.f64_const(0.125).op(Opcode::F32DemoteF64);
    fold_f32(&mut c);
    c.i32_const(-13).op(Opcode::F64ConvertI32S);
    fold_f64(&mut c);
    c.i32_const(13).op(Opcode::F64ConvertI32U);
    fold_f64(&mut c);
    c.i64_const(-15).op(Opcode::F64ConvertI64S);
    fold_f64(&mut c);
    c.i64_const(15).op(Opcode::F64ConvertI64U);
    fold_f64(&mut c);
    c.f32_const(0.75).op(Opcode::F64PromoteF32);
    fold_f64(&mut c);
    // Reinterpretations in the "from integer" direction (the float-to-int
    // direction is what the fold helpers use throughout).
    c.i32_const(0x3F80_0000).op(Opcode::F32ReinterpretI32);
    fold_f32(&mut c);
    c.i64_const(0x3FF0_0000_0000_0000).op(Opcode::F64ReinterpretI64);
    fold_f64(&mut c);

    // ---- Sign extensions ------------------------------------------------
    c.i32_const(0x1280).op(Opcode::I32Extend8S);
    fold32(&mut c);
    c.i32_const(0x1_8000).op(Opcode::I32Extend16S);
    fold32(&mut c);
    c.i64_const(0x1280).op(Opcode::I64Extend8S);
    fold64(&mut c);
    c.i64_const(0x1_8000).op(Opcode::I64Extend16S);
    fold64(&mut c);
    c.i64_const(0x1_8000_0000).op(Opcode::I64Extend32S);
    fold64(&mut c);

    // ---- References -----------------------------------------------------
    c.ref_null(ValueType::ExternRef).op(Opcode::RefIsNull);
    fold32(&mut c);
    c.ref_null(ValueType::FuncRef).op(Opcode::RefIsNull);
    fold32(&mut c);
    c.ref_func(add).op(Opcode::RefIsNull);
    fold32(&mut c);
    c.ref_null(ValueType::ExternRef).global_set(g_ref);

    // Return the checksum.
    c.local_get(0);

    let main = b.add_func(
        FuncType::new(vec![], vec![ValueType::I32]),
        vec![ValueType::I32, ValueType::I32],
        c.finish(),
    );
    b.export_func("main", main);
    b.export_memory("mem", mem);
    b.add_elem(table, ConstExpr::I32(1), vec![add]);
    b.add_data(mem, ConstExpr::I32(0), (0u8..64).collect());
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_module_validates_and_covers_every_opcode() {
        let module = exhaustive_module();
        wasm::validate::validate(&module).expect("validates");
        let census = opcode_census(&module);
        let missing = missing_opcodes(&census);
        assert!(missing.is_empty(), "missing opcodes: {missing:?}");
    }

    #[test]
    fn exhaustive_module_runs_identically_on_every_config() {
        use engine::{Engine, Imports, Instrumentation};
        let module = exhaustive_module();
        let mut results = Vec::new();
        for config in crate::runner::all_configs() {
            let name = config.name.clone();
            let engine = Engine::new(config);
            let mut instance = engine
                .instantiate(&module, Imports::new(), Instrumentation::none())
                .unwrap_or_else(|e| panic!("[{name}] instantiate: {e}"));
            let r = engine
                .call_export(&mut instance, "main", &[])
                .unwrap_or_else(|e| panic!("[{name}] trap: {e}"));
            results.push((name, r[0]));
        }
        let (first_name, first) = results[0].clone();
        for (name, value) in &results {
            assert_eq!(value, &first, "{name} disagrees with {first_name}");
        }
    }

    #[test]
    fn exhaustive_module_roundtrips_through_wat() {
        let module = exhaustive_module();
        let bytes = wasm::encode::encode(&module);
        let text = wasm::wat::print::print_module(&module);
        let reparsed = wasm::wat::parse_module(&text)
            .unwrap_or_else(|e| panic!("{}\n{text}", e.describe(&text)));
        assert_eq!(bytes, wasm::encode::encode(&reparsed), "byte-identical round trip");
    }
}
