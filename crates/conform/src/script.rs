//! Parsing of wast-style assertion scripts.
//!
//! A script is a sequence of top-level s-expressions interpreted as commands:
//!
//! * `(module …)` — instantiate a fresh module (text form), `(module binary
//!   "…")` (raw bytes), or `(module quote "…")` (text assembled from string
//!   fragments);
//! * `(invoke "f" const*)` — call an export, discarding the result;
//! * `(assert_return (invoke …) const*)` — call and compare results
//!   bit-exactly, with `nan:canonical` / `nan:arithmetic` patterns;
//! * `(assert_trap (invoke …) "message")` — call and match the trap cause
//!   against the spec-style message via [`engine::TrapReason`];
//! * `(assert_invalid (module …) "message")` — the module must fail
//!   validation with a message containing the given fragment;
//! * `(assert_malformed (module quote|binary …) "message")` — the text must
//!   fail to parse / the bytes must fail to decode;
//! * `(fuel N)` — arm a fuel budget of `N` units, re-armed before every
//!   later action (a reproduction extension for metering conformance).

use machine::values::WasmValue;
use wasm::wat::sexpr::{parse_all, Sexpr};
use wasm::wat::{num, WatError};

/// How a `(module …)` command supplies its module.
#[derive(Debug, Clone)]
pub enum ModuleForm {
    /// A textual `(module …)` s-expression, lowered by the WAT frontend.
    Text(Sexpr),
    /// `(module binary "…")`: raw bytes for the binary decoder.
    Binary(Vec<u8>),
    /// `(module quote "…")`: text assembled from fragments, re-parsed from
    /// scratch (used by `assert_malformed`).
    Quote(String),
}

/// An `(invoke "name" const*)` action.
#[derive(Debug, Clone)]
pub struct Action {
    /// The exported function to call.
    pub func: String,
    /// Constant arguments.
    pub args: Vec<WasmValue>,
}

/// An expected result of an `assert_return`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExpectedValue {
    /// An exact value, compared bit-for-bit (floats included).
    Exact(WasmValue),
    /// Any canonical 32-bit NaN (payload exactly the quiet bit, either sign).
    CanonicalNan32,
    /// Any arithmetic 32-bit NaN (quiet bit set, any payload).
    ArithmeticNan32,
    /// Any canonical 64-bit NaN.
    CanonicalNan64,
    /// Any arithmetic 64-bit NaN.
    ArithmeticNan64,
}

impl ExpectedValue {
    /// Whether `actual` satisfies this expectation.
    pub fn matches(&self, actual: &WasmValue) -> bool {
        match (self, actual) {
            (ExpectedValue::Exact(WasmValue::F32(e)), WasmValue::F32(a)) => {
                e.to_bits() == a.to_bits()
            }
            (ExpectedValue::Exact(WasmValue::F64(e)), WasmValue::F64(a)) => {
                e.to_bits() == a.to_bits()
            }
            (ExpectedValue::Exact(e), a) => e == a,
            (ExpectedValue::CanonicalNan32, WasmValue::F32(a)) => {
                a.to_bits() & 0x7FFF_FFFF == 0x7FC0_0000
            }
            (ExpectedValue::ArithmeticNan32, WasmValue::F32(a)) => {
                a.to_bits() & 0x7FC0_0000 == 0x7FC0_0000
            }
            (ExpectedValue::CanonicalNan64, WasmValue::F64(a)) => {
                a.to_bits() & 0x7FFF_FFFF_FFFF_FFFF == 0x7FF8_0000_0000_0000
            }
            (ExpectedValue::ArithmeticNan64, WasmValue::F64(a)) => {
                a.to_bits() & 0x7FF8_0000_0000_0000 == 0x7FF8_0000_0000_0000
            }
            _ => false,
        }
    }
}

/// One script command.
#[derive(Debug, Clone)]
pub enum Command {
    /// `(fuel N)`: arm a fuel budget of `N` units, re-armed before every
    /// subsequent action so each records its own consumption. The runner
    /// switches the engine configuration to metering when a script contains
    /// this directive.
    Fuel(u64),
    /// Instantiate a module; it becomes the target of later actions.
    Module(ModuleForm),
    /// Call an export, requiring it not to trap.
    Invoke(Action),
    /// Call an export and compare its results.
    AssertReturn {
        /// The call.
        action: Action,
        /// The expected results, in order.
        expected: Vec<ExpectedValue>,
    },
    /// Call an export and require a trap with a matching cause.
    AssertTrap {
        /// The call.
        action: Action,
        /// The spec-style trap message.
        message: String,
    },
    /// Require the module to fail validation.
    AssertInvalid {
        /// The module under test.
        module: ModuleForm,
        /// A fragment the validation error must contain.
        message: String,
    },
    /// Require the module to fail parsing/decoding.
    AssertMalformed {
        /// The module under test.
        module: ModuleForm,
        /// The expected (informational) message.
        message: String,
    },
}

/// A parsed conformance script.
#[derive(Debug, Clone)]
pub struct Script {
    /// A display name (usually the file stem).
    pub name: String,
    /// The commands with their source offsets.
    pub commands: Vec<(Command, usize)>,
}

impl Script {
    /// True when the script contains a `(fuel N)` directive, which makes the
    /// runner execute it under a metering configuration.
    pub fn uses_fuel(&self) -> bool {
        self.commands
            .iter()
            .any(|(c, _)| matches!(c, Command::Fuel(_)))
    }
}

/// Parses a script from wast source.
///
/// # Errors
///
/// Returns a [`WatError`] for unknown commands or malformed constants.
pub fn parse_script(name: &str, src: &str) -> Result<Script, WatError> {
    let exprs = parse_all(src)?;
    let mut commands = Vec::new();
    for expr in &exprs {
        let offset = expr.offset();
        let kw = expr
            .keyword()
            .ok_or_else(|| WatError::new("expected a script command", offset))?;
        let items = expr.as_list().expect("keyword implies list");
        let command = match kw {
            "fuel" => {
                let arg = items
                    .get(1)
                    .and_then(Sexpr::as_atom)
                    .ok_or_else(|| WatError::new("fuel needs a budget literal", offset))?;
                Command::Fuel(
                    num::parse_int(arg, 64).map_err(|m| WatError::new(m, offset))? as u64,
                )
            }
            "module" => Command::Module(parse_module_form(expr)?),
            "invoke" => Command::Invoke(parse_action(expr)?),
            "assert_return" => {
                let action = parse_action(
                    items
                        .get(1)
                        .ok_or_else(|| WatError::new("assert_return needs an action", offset))?,
                )?;
                let mut expected = Vec::new();
                for e in &items[2..] {
                    expected.push(parse_expected(e)?);
                }
                Command::AssertReturn { action, expected }
            }
            "assert_trap" => Command::AssertTrap {
                action: parse_action(
                    items
                        .get(1)
                        .ok_or_else(|| WatError::new("assert_trap needs an action", offset))?,
                )?,
                message: expect_string(items.get(2), offset)?,
            },
            "assert_invalid" => Command::AssertInvalid {
                module: parse_module_form(
                    items
                        .get(1)
                        .ok_or_else(|| WatError::new("assert_invalid needs a module", offset))?,
                )?,
                message: expect_string(items.get(2), offset)?,
            },
            "assert_malformed" => Command::AssertMalformed {
                module: parse_module_form(
                    items
                        .get(1)
                        .ok_or_else(|| WatError::new("assert_malformed needs a module", offset))?,
                )?,
                message: expect_string(items.get(2), offset)?,
            },
            other => {
                return Err(WatError::new(
                    format!("unsupported script command `{other}`"),
                    offset,
                ))
            }
        };
        commands.push((command, offset));
    }
    Ok(Script {
        name: name.to_string(),
        commands,
    })
}

fn expect_string(expr: Option<&Sexpr>, offset: usize) -> Result<String, WatError> {
    expr.and_then(Sexpr::as_name)
        .ok_or_else(|| WatError::new("expected a string literal", offset))
}

fn parse_module_form(expr: &Sexpr) -> Result<ModuleForm, WatError> {
    let items = expr
        .as_list()
        .filter(|l| l.first().and_then(Sexpr::as_atom) == Some("module"))
        .ok_or_else(|| WatError::new("expected (module ...)", expr.offset()))?;
    // Skip an optional module id.
    let mut i = 1;
    if items.get(i).and_then(Sexpr::as_atom).is_some_and(|a| a.starts_with('$')) {
        i += 1;
    }
    match items.get(i).and_then(Sexpr::as_atom) {
        Some("binary") => {
            let mut bytes = Vec::new();
            for item in &items[i + 1..] {
                bytes.extend_from_slice(item.as_str_bytes().ok_or_else(|| {
                    WatError::new("(module binary ...) takes strings", item.offset())
                })?);
            }
            Ok(ModuleForm::Binary(bytes))
        }
        Some("quote") => {
            let mut text = String::new();
            for item in &items[i + 1..] {
                let fragment = item.as_name().ok_or_else(|| {
                    WatError::new("(module quote ...) takes strings", item.offset())
                })?;
                text.push_str(&fragment);
                text.push(' ');
            }
            Ok(ModuleForm::Quote(format!("(module {text})")))
        }
        _ => Ok(ModuleForm::Text(expr.clone())),
    }
}

fn parse_action(expr: &Sexpr) -> Result<Action, WatError> {
    let items = expr
        .as_list()
        .filter(|l| l.first().and_then(Sexpr::as_atom) == Some("invoke"))
        .ok_or_else(|| WatError::new("expected (invoke ...)", expr.offset()))?;
    let func = items
        .get(1)
        .and_then(Sexpr::as_name)
        .ok_or_else(|| WatError::new("invoke needs a function name", expr.offset()))?;
    let mut args = Vec::new();
    for arg in &items[2..] {
        args.push(parse_const(arg)?);
    }
    Ok(Action { func, args })
}

/// Parses a `(t.const v)` argument into a concrete value.
pub fn parse_const(expr: &Sexpr) -> Result<WasmValue, WatError> {
    match parse_expected(expr)? {
        ExpectedValue::Exact(v) => Ok(v),
        _ => Err(WatError::new(
            "nan patterns are only allowed in expected results",
            expr.offset(),
        )),
    }
}

fn parse_expected(expr: &Sexpr) -> Result<ExpectedValue, WatError> {
    let items = expr
        .as_list()
        .ok_or_else(|| WatError::new("expected (t.const v)", expr.offset()))?;
    let kw = items.first().and_then(Sexpr::as_atom).unwrap_or("");
    let offset = expr.offset();
    let arg = items
        .get(1)
        .and_then(Sexpr::as_atom)
        .ok_or_else(|| WatError::new(format!("{kw} needs a literal"), offset))?;
    let exact = |v: WasmValue| Ok(ExpectedValue::Exact(v));
    match kw {
        "i32.const" => exact(WasmValue::I32(
            num::parse_int(arg, 32).map_err(|m| WatError::new(m, offset))? as u32 as i32,
        )),
        "i64.const" => exact(WasmValue::I64(
            num::parse_int(arg, 64).map_err(|m| WatError::new(m, offset))? as i64,
        )),
        "f32.const" => match arg {
            "nan:canonical" => Ok(ExpectedValue::CanonicalNan32),
            "nan:arithmetic" => Ok(ExpectedValue::ArithmeticNan32),
            _ => exact(WasmValue::F32(f32::from_bits(
                num::parse_f32(arg).map_err(|m| WatError::new(m, offset))?,
            ))),
        },
        "f64.const" => match arg {
            "nan:canonical" => Ok(ExpectedValue::CanonicalNan64),
            "nan:arithmetic" => Ok(ExpectedValue::ArithmeticNan64),
            _ => exact(WasmValue::F64(f64::from_bits(
                num::parse_f64(arg).map_err(|m| WatError::new(m, offset))?,
            ))),
        },
        "ref.null" => match arg {
            "func" | "funcref" => exact(WasmValue::FuncRef(None)),
            _ => exact(WasmValue::ExternRef(None)),
        },
        other => Err(WatError::new(
            format!("unsupported constant `{other}`"),
            offset,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_commands() {
        let script = parse_script(
            "t",
            r#"
            (module (func (export "f") (result i32) i32.const 1))
            (assert_return (invoke "f") (i32.const 1))
            (assert_trap (invoke "f" (i32.const 0)) "integer divide by zero")
            (assert_invalid (module (func (result i32) nop)) "underflow")
            (assert_malformed (module quote "(func") "unbalanced")
            (invoke "f")
            "#,
        )
        .expect("parses");
        assert_eq!(script.commands.len(), 6);
        assert!(matches!(script.commands[0].0, Command::Module(ModuleForm::Text(_))));
        match &script.commands[1].0 {
            Command::AssertReturn { action, expected } => {
                assert_eq!(action.func, "f");
                assert_eq!(expected, &[ExpectedValue::Exact(WasmValue::I32(1))]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fuel_directive_parses() {
        let script = parse_script(
            "fueled",
            r#"
            (fuel 1000)
            (module (func (export "f") (result i32) i32.const 1))
            (assert_return (invoke "f") (i32.const 1))
            "#,
        )
        .expect("parses");
        assert!(script.uses_fuel());
        assert!(matches!(script.commands[0].0, Command::Fuel(1000)));
        let plain = parse_script("plain", r#"(module)"#).expect("parses");
        assert!(!plain.uses_fuel());
    }

    #[test]
    fn nan_patterns_and_binary_modules() {
        let script = parse_script(
            "t",
            r#"
            (module binary "\00asm\01\00\00\00")
            (assert_return (invoke "f") (f64.const nan:canonical) (f32.const nan:arithmetic))
            "#,
        )
        .expect("parses");
        match &script.commands[0].0 {
            Command::Module(ModuleForm::Binary(bytes)) => {
                assert_eq!(bytes, b"\0asm\x01\0\0\0");
            }
            other => panic!("{other:?}"),
        }
        match &script.commands[1].0 {
            Command::AssertReturn { expected, .. } => {
                assert_eq!(
                    expected,
                    &[ExpectedValue::CanonicalNan64, ExpectedValue::ArithmeticNan32]
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn expected_value_matching() {
        assert!(ExpectedValue::Exact(WasmValue::F32(-0.0)).matches(&WasmValue::F32(-0.0)));
        assert!(!ExpectedValue::Exact(WasmValue::F32(-0.0)).matches(&WasmValue::F32(0.0)));
        assert!(ExpectedValue::CanonicalNan64.matches(&WasmValue::F64(f64::NAN)));
        assert!(ExpectedValue::ArithmeticNan64.matches(&WasmValue::F64(f64::NAN)));
        assert!(!ExpectedValue::CanonicalNan64.matches(&WasmValue::F64(1.0)));
        assert!(
            ExpectedValue::ArithmeticNan32
                .matches(&WasmValue::F32(f32::from_bits(0x7FC0_0001))),
            "payload NaNs are arithmetic"
        );
        assert!(!ExpectedValue::CanonicalNan32.matches(&WasmValue::F32(f32::from_bits(0x7FC0_0001))));
    }
}
