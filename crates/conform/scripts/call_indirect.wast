;; call_indirect: table dispatch and its three trap causes.
(module
  (type $binop (func (param i32 i32) (result i32)))
  (type $nullary (func (result i32)))
  (table 10 funcref)
  (elem (offset (i32.const 0)) func $add $sub $mul $answer)
  (func $add (type $binop) local.get 0 local.get 1 i32.add)
  (func $sub (type $binop) local.get 0 local.get 1 i32.sub)
  (func $mul (type $binop) local.get 0 local.get 1 i32.mul)
  (func $answer (type $nullary) i32.const 42)
  (func (export "dispatch") (param $which i32) (param $a i32) (param $b i32) (result i32)
    local.get $a
    local.get $b
    local.get $which
    call_indirect (type $binop))
  (func (export "constant") (param $which i32) (result i32)
    local.get $which
    call_indirect (type $nullary)))

(assert_return (invoke "dispatch" (i32.const 0) (i32.const 30) (i32.const 12)) (i32.const 42))
(assert_return (invoke "dispatch" (i32.const 1) (i32.const 50) (i32.const 8)) (i32.const 42))
(assert_return (invoke "dispatch" (i32.const 2) (i32.const 6) (i32.const 7)) (i32.const 42))
(assert_return (invoke "constant" (i32.const 3)) (i32.const 42))
;; Signature mismatch: slot 3 holds a nullary function.
(assert_trap
  (invoke "dispatch" (i32.const 3) (i32.const 1) (i32.const 2))
  "indirect call type mismatch")
(assert_trap (invoke "constant" (i32.const 0)) "indirect call type mismatch")
;; Uninitialized slot.
(assert_trap (invoke "constant" (i32.const 7)) "uninitialized element")
;; Out of table bounds.
(assert_trap (invoke "constant" (i32.const 10)) "undefined element")
(assert_trap (invoke "constant" (i32.const -1)) "undefined element")
