;; min/max: NaN propagation and the signed-zero rules.
(module
  (func (export "min32") (param f32 f32) (result f32) local.get 0 local.get 1 f32.min)
  (func (export "max32") (param f32 f32) (result f32) local.get 0 local.get 1 f32.max)
  (func (export "min64") (param f64 f64) (result f64) local.get 0 local.get 1 f64.min)
  (func (export "max64") (param f64 f64) (result f64) local.get 0 local.get 1 f64.max))

(assert_return (invoke "min32" (f32.const 1.0) (f32.const 2.0)) (f32.const 1.0))
(assert_return (invoke "max32" (f32.const 1.0) (f32.const 2.0)) (f32.const 2.0))
(assert_return (invoke "min32" (f32.const -1.0) (f32.const 1.0)) (f32.const -1.0))
;; min(-0, 0) = -0; max(-0, 0) = 0.
(assert_return (invoke "min32" (f32.const -0.0) (f32.const 0.0)) (f32.const -0.0))
(assert_return (invoke "min32" (f32.const 0.0) (f32.const -0.0)) (f32.const -0.0))
(assert_return (invoke "max32" (f32.const -0.0) (f32.const 0.0)) (f32.const 0.0))
(assert_return (invoke "max32" (f32.const 0.0) (f32.const -0.0)) (f32.const 0.0))
;; NaN wins over any number, on either side.
(assert_return (invoke "min32" (f32.const nan) (f32.const 1.0)) (f32.const nan:arithmetic))
(assert_return (invoke "max32" (f32.const 1.0) (f32.const nan)) (f32.const nan:arithmetic))
(assert_return (invoke "min64" (f64.const -0.0) (f64.const 0.0)) (f64.const -0.0))
(assert_return (invoke "max64" (f64.const -0.0) (f64.const 0.0)) (f64.const 0.0))
(assert_return (invoke "min64" (f64.const nan) (f64.const -inf)) (f64.const nan:arithmetic))
(assert_return (invoke "max64" (f64.const nan) (f64.const inf)) (f64.const nan:arithmetic))
(assert_return (invoke "min64" (f64.const -inf) (f64.const 1.0)) (f64.const -inf))
(assert_return (invoke "max64" (f64.const inf) (f64.const 1.0)) (f64.const inf))
