;; Loops: backedge branches, loop-carried locals, nested loops.
(module
  ;; sum(n) = 1 + 2 + ... + n
  (func (export "sum") (param $n i32) (result i32) (local $acc i32)
    block $done
      loop $top
        local.get $n
        i32.eqz
        br_if $done
        local.get $acc
        local.get $n
        i32.add
        local.set $acc
        local.get $n
        i32.const 1
        i32.sub
        local.set $n
        br $top
      end
    end
    local.get $acc)
  ;; mul_by_add(a, b) = a * b via nested counting loops
  (func (export "mul_by_add") (param $a i32) (param $b i32) (result i32) (local $acc i32)
    block $done
      loop $outer
        local.get $a
        i32.eqz
        br_if $done
        local.get $acc
        local.get $b
        i32.add
        local.set $acc
        local.get $a
        i32.const 1
        i32.sub
        local.set $a
        br $outer
      end
    end
    local.get $acc))

(assert_return (invoke "sum" (i32.const 0)) (i32.const 0))
(assert_return (invoke "sum" (i32.const 1)) (i32.const 1))
(assert_return (invoke "sum" (i32.const 100)) (i32.const 5050))
(assert_return (invoke "mul_by_add" (i32.const 7) (i32.const 6)) (i32.const 42))
(assert_return (invoke "mul_by_add" (i32.const 0) (i32.const 9)) (i32.const 0))
