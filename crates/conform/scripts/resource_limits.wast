;; Resource-limit behaviour every tier must agree on: memory.grow respects
;; declared maxima bit-identically (returns -1, changes nothing), growth
;; costs fuel at the metered rate, and deep recursion exhausts the call
;; stack with the same trap reason everywhere. Tenant-imposed ceilings
;; (EngineConfig::with_limits) tighten these bounds further; the
;; multitenant conformance test re-runs this module under clamped configs.
(fuel 100000)
(module
  (memory 1 2)
  (func (export "size") (result i32)
    memory.size)
  (func (export "grow") (param i32) (result i32)
    local.get 0
    memory.grow)
  (func $down (export "down") (param i32) (result i32)
    local.get 0
    i32.eqz
    if (result i32)
      i32.const 0
    else
      local.get 0
      i32.const 1
      i32.sub
      call $down
    end))

(assert_return (invoke "size") (i32.const 1))
;; Growing inside the declared max succeeds and costs 100 fuel per grow.
(assert_return (invoke "grow" (i32.const 1)) (i32.const 1))
(assert_return (invoke "size") (i32.const 2))
;; Growing past the declared max fails with -1 in every configuration.
(assert_return (invoke "grow" (i32.const 1)) (i32.const -1))
(assert_return (invoke "size") (i32.const 2))
;; A grow without the fuel for it traps before touching the memory:
;; local.get (1) + memory.grow (100) needs 101 units.
(fuel 100)
(assert_trap (invoke "grow" (i32.const 0)) "all fuel consumed")
(fuel 101)
(assert_return (invoke "grow" (i32.const 0)) (i32.const 2))
;; Recursion within the engine's depth budget completes...
(fuel 100000)
(assert_return (invoke "down" (i32.const 100)) (i32.const 0))
;; ...and unbounded recursion exhausts the stack identically everywhere
;; (the fuel budget here is deliberately too large to be the limiter).
(fuel 10000000)
(assert_trap (invoke "down" (i32.const 100000)) "call stack exhausted")
