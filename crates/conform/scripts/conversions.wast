;; Integer/float conversions that do not trap.
(module
  (func (export "wrap") (param i64) (result i32) local.get 0 i32.wrap_i64)
  (func (export "extend_s") (param i32) (result i64) local.get 0 i64.extend_i32_s)
  (func (export "extend_u") (param i32) (result i64) local.get 0 i64.extend_i32_u)
  (func (export "trunc_s32") (param f32) (result i32) local.get 0 i32.trunc_f32_s)
  (func (export "trunc_u64") (param f64) (result i64) local.get 0 i64.trunc_f64_u)
  (func (export "conv_s") (param i32) (result f64) local.get 0 f64.convert_i32_s)
  (func (export "conv_u") (param i32) (result f64) local.get 0 f64.convert_i32_u)
  (func (export "conv64_u") (param i64) (result f32) local.get 0 f32.convert_i64_u))

(assert_return (invoke "wrap" (i64.const 0x100000005)) (i32.const 5))
(assert_return (invoke "wrap" (i64.const -1)) (i32.const -1))
(assert_return (invoke "extend_s" (i32.const -3)) (i64.const -3))
(assert_return (invoke "extend_u" (i32.const -3)) (i64.const 0xFFFFFFFD))
(assert_return (invoke "trunc_s32" (f32.const -3.9)) (i32.const -3))
(assert_return (invoke "trunc_s32" (f32.const 3.9)) (i32.const 3))
(assert_return (invoke "trunc_u64" (f64.const 1e15)) (i64.const 1000000000000000))
;; trunc_u of a fraction just below zero truncates to 0, not a trap.
(assert_return (invoke "trunc_u64" (f64.const -0.9)) (i64.const 0))
(assert_return (invoke "conv_s" (i32.const -2)) (f64.const -2.0))
(assert_return (invoke "conv_u" (i32.const -2)) (f64.const 4294967294.0))
;; u64 -> f32 rounds: 2^32-1 becomes 2^32.
(assert_return (invoke "conv64_u" (i64.const 0xFFFFFFFF)) (f32.const 4294967296.0))
(assert_return (invoke "conv64_u" (i64.const -1)) (f32.const 0x1p+64))
