;; Memory bounds checks: end-of-page edges, offset overflow, all widths.
(module
  (memory 1)
  (func (export "load_at") (param i32) (result i32) local.get 0 i32.load)
  (func (export "load8_at") (param i32) (result i32) local.get 0 i32.load8_u)
  (func (export "load64_at") (param i32) (result i64) local.get 0 i64.load)
  (func (export "store_at") (param i32 i32) local.get 0 local.get 1 i32.store)
  (func (export "load_far") (param i32) (result i32) local.get 0 i32.load offset=0xFFFFFFFC)
  (func (export "store8_at") (param i32 i32) local.get 0 local.get 1 i32.store8))

;; The last in-bounds accesses of a 64 KiB page.
(assert_return (invoke "load_at" (i32.const 65532)) (i32.const 0))
(assert_return (invoke "load8_at" (i32.const 65535)) (i32.const 0))
(assert_return (invoke "load64_at" (i32.const 65528)) (i64.const 0))
;; One byte past the edge traps.
(assert_trap (invoke "load_at" (i32.const 65533)) "out of bounds memory access")
(assert_trap (invoke "load_at" (i32.const 65536)) "out of bounds memory access")
(assert_trap (invoke "load8_at" (i32.const 65536)) "out of bounds memory access")
(assert_trap (invoke "load64_at" (i32.const 65529)) "out of bounds memory access")
(assert_trap (invoke "store_at" (i32.const 65533) (i32.const 0)) "out of bounds memory access")
(assert_trap (invoke "store8_at" (i32.const 65536) (i32.const 0)) "out of bounds memory access")
;; Negative addresses are unsigned-huge.
(assert_trap (invoke "load_at" (i32.const -4)) "out of bounds memory access")
;; addr + offset overflows past the page: the effective address is computed
;; in 64 bits, so this must trap rather than wrap.
(assert_trap (invoke "load_far" (i32.const 8)) "out of bounds memory access")
(assert_trap (invoke "load_far" (i32.const -1)) "out of bounds memory access")
