;; Bit-exact float plumbing: reinterpretation, promote/demote, NaN payloads.
(module
  (func (export "bits32") (param f32) (result i32) local.get 0 i32.reinterpret_f32)
  (func (export "from_bits32") (param i32) (result f32) local.get 0 f32.reinterpret_i32)
  (func (export "bits64") (param f64) (result i64) local.get 0 i64.reinterpret_f64)
  (func (export "from_bits64") (param i64) (result f64) local.get 0 f64.reinterpret_i64)
  (func (export "promote") (param f32) (result f64) local.get 0 f64.promote_f32)
  (func (export "demote") (param f64) (result f32) local.get 0 f32.demote_f64))

(assert_return (invoke "bits32" (f32.const 1.0)) (i32.const 0x3F800000))
(assert_return (invoke "bits32" (f32.const -0.0)) (i32.const 0x80000000))
(assert_return (invoke "bits32" (f32.const inf)) (i32.const 0x7F800000))
(assert_return (invoke "from_bits32" (i32.const 0x40490FDB)) (f32.const 0x1.921fb6p+1))
(assert_return (invoke "bits64" (f64.const 2.0)) (i64.const 0x4000000000000000))
(assert_return (invoke "bits64" (f64.const -inf)) (i64.const 0xFFF0000000000000))
(assert_return (invoke "from_bits64" (i64.const 1)) (f64.const 0x0.0000000000001p-1022))
;; Reinterpretation carries NaN payloads through untouched.
(assert_return (invoke "from_bits32" (i32.const 0x7FC00001)) (f32.const nan:arithmetic))
(assert_return (invoke "bits32" (f32.const nan:0x200000)) (i32.const 0x7FA00000))
(assert_return (invoke "promote" (f32.const 0.25)) (f64.const 0.25))
(assert_return (invoke "promote" (f32.const -inf)) (f64.const -inf))
(assert_return (invoke "demote" (f64.const 0.25)) (f32.const 0.25))
(assert_return (invoke "demote" (f64.const 1e308)) (f32.const inf))
(assert_return (invoke "demote" (f64.const -1e308)) (f32.const -inf))
;; The f64 value nearest to pi demotes to the f32 value nearest to pi.
(assert_return (invoke "demote" (f64.const 0x1.921fb54442d18p+1)) (f32.const 0x1.921fb6p+1))
