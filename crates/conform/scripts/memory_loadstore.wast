;; Memory loads/stores: all widths, sign extension, offsets, unaligned access.
(module
  (memory (export "mem") 1)
  (func (export "rt_i32") (param $addr i32) (param $v i32) (result i32)
    local.get $addr
    local.get $v
    i32.store
    local.get $addr
    i32.load)
  (func (export "rt_i64") (param $addr i32) (param $v i64) (result i64)
    local.get $addr
    local.get $v
    i64.store
    local.get $addr
    i64.load)
  (func (export "rt_f32") (param $addr i32) (param $v f32) (result f32)
    local.get $addr
    local.get $v
    f32.store
    local.get $addr
    f32.load)
  (func (export "rt_f64") (param $addr i32) (param $v f64) (result f64)
    local.get $addr
    local.get $v
    f64.store
    local.get $addr
    f64.load)
  (func (export "narrow8") (param $v i32) (result i32)
    i32.const 100
    local.get $v
    i32.store8
    i32.const 100
    i32.load8_s)
  (func (export "narrow8u") (param $v i32) (result i32)
    i32.const 100
    local.get $v
    i32.store8
    i32.const 100
    i32.load8_u)
  (func (export "narrow16") (param $v i32) (result i32)
    i32.const 104
    local.get $v
    i32.store16
    i32.const 104
    i32.load16_s)
  (func (export "wide32") (param $v i64) (result i64)
    i32.const 112
    local.get $v
    i64.store32
    i32.const 112
    i64.load32_u)
  (func (export "with_offset") (param $v i32) (result i32)
    i32.const 0
    local.get $v
    i32.store offset=200
    i32.const 100
    i32.load offset=100)
  (func (export "unaligned") (param $v i32) (result i32)
    i32.const 33
    local.get $v
    i32.store align=1
    i32.const 33
    i32.load align=1))

(assert_return (invoke "rt_i32" (i32.const 0) (i32.const -123456)) (i32.const -123456))
(assert_return (invoke "rt_i64" (i32.const 8) (i64.const 0x0102030405060708)) (i64.const 0x0102030405060708))
(assert_return (invoke "rt_f32" (i32.const 16) (f32.const -1.5)) (f32.const -1.5))
(assert_return (invoke "rt_f64" (i32.const 24) (f64.const 6.25)) (f64.const 6.25))
;; Stores truncate; signed loads extend.
(assert_return (invoke "narrow8" (i32.const 0x180)) (i32.const -128))
(assert_return (invoke "narrow8u" (i32.const 0x180)) (i32.const 128))
(assert_return (invoke "narrow16" (i32.const 0x18000)) (i32.const -32768))
(assert_return (invoke "wide32" (i64.const 0x1FFFFFFFF)) (i64.const 0xFFFFFFFF))
;; A constant offset addresses the same byte as base+offset.
(assert_return (invoke "with_offset" (i32.const 77)) (i32.const 77))
;; Unaligned accesses are permitted (alignment is only a hint).
(assert_return (invoke "unaligned" (i32.const 0x12345678)) (i32.const 0x12345678))
