;; select: untyped on every numeric type, plus the typed form.
(module
  (func (export "sel_i32") (param i32 i32 i32) (result i32)
    local.get 0
    local.get 1
    local.get 2
    select)
  (func (export "sel_i64") (param i64 i64 i32) (result i64)
    local.get 0
    local.get 1
    local.get 2
    select)
  (func (export "sel_f64") (param f64 f64 i32) (result f64)
    local.get 0
    local.get 1
    local.get 2
    select)
  (func (export "sel_t") (param i64 i64 i32) (result i64)
    local.get 0
    local.get 1
    local.get 2
    select (result i64))
  (func (export "folded") (param i32) (result i32)
    (select (i32.const 1) (i32.const 2) (local.get 0))))

;; Non-zero picks the first operand; zero picks the second.
(assert_return (invoke "sel_i32" (i32.const 10) (i32.const 20) (i32.const 1)) (i32.const 10))
(assert_return (invoke "sel_i32" (i32.const 10) (i32.const 20) (i32.const 0)) (i32.const 20))
(assert_return (invoke "sel_i32" (i32.const 10) (i32.const 20) (i32.const -7)) (i32.const 10))
(assert_return (invoke "sel_i64" (i64.const -1) (i64.const 1) (i32.const 1)) (i64.const -1))
(assert_return (invoke "sel_i64" (i64.const -1) (i64.const 1) (i32.const 0)) (i64.const 1))
(assert_return (invoke "sel_f64" (f64.const -0.0) (f64.const 0.5) (i32.const 1)) (f64.const -0.0))
(assert_return (invoke "sel_f64" (f64.const -0.0) (f64.const 0.5) (i32.const 0)) (f64.const 0.5))
(assert_return (invoke "sel_t" (i64.const 5) (i64.const 6) (i32.const 0)) (i64.const 6))
(assert_return (invoke "sel_t" (i64.const 5) (i64.const 6) (i32.const 2)) (i64.const 5))
(assert_return (invoke "folded" (i32.const 1)) (i32.const 1))
(assert_return (invoke "folded" (i32.const 0)) (i32.const 2))
