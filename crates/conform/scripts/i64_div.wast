;; i64 division and remainder edge cases.
(module
  (func (export "div_s") (param i64 i64) (result i64)
    local.get 0
    local.get 1
    i64.div_s)
  (func (export "div_u") (param i64 i64) (result i64)
    local.get 0
    local.get 1
    i64.div_u)
  (func (export "rem_s") (param i64 i64) (result i64)
    local.get 0
    local.get 1
    i64.rem_s)
  (func (export "rem_u") (param i64 i64) (result i64)
    local.get 0
    local.get 1
    i64.rem_u))

(assert_return (invoke "div_s" (i64.const -9) (i64.const 2)) (i64.const -4))
(assert_return (invoke "div_u" (i64.const -1) (i64.const 2)) (i64.const 9223372036854775807))
(assert_return (invoke "rem_s" (i64.const -9) (i64.const 4)) (i64.const -1))
(assert_return (invoke "rem_u" (i64.const -1) (i64.const 10)) (i64.const 5))
(assert_return
  (invoke "rem_s" (i64.const -9223372036854775808) (i64.const -1))
  (i64.const 0))
(assert_trap
  (invoke "div_s" (i64.const -9223372036854775808) (i64.const -1))
  "integer overflow")
(assert_trap (invoke "div_s" (i64.const 1) (i64.const 0)) "integer divide by zero")
(assert_trap (invoke "div_u" (i64.const 1) (i64.const 0)) "integer divide by zero")
(assert_trap (invoke "rem_s" (i64.const 1) (i64.const 0)) "integer divide by zero")
(assert_trap (invoke "rem_u" (i64.const 1) (i64.const 0)) "integer divide by zero")
