;; Malformed inputs: text that does not parse, bytes that do not decode.
(assert_malformed
  (module quote "(func")
  "unclosed parenthesis")
(assert_malformed
  (module quote "(func (result i32) i32.konst 0)")
  "unknown instruction")
(assert_malformed
  (module quote "(func unknown_keyword)")
  "unknown instruction")
(assert_malformed
  (module quote "(func br $nowhere)")
  "unknown label")
(assert_malformed
  (module quote "(bogus_field)")
  "unsupported module field")
(assert_malformed
  (module quote "(func (local $x))")
  "named local needs one type")
;; Binary-level malformations.
(assert_malformed
  (module binary "")
  "invalid module header")
(assert_malformed
  (module binary "\00wasm\01\00\00\00")
  "invalid module header")
(assert_malformed
  (module binary "\00asm\02\00\00\00")
  "unsupported version")
;; Code section before type section: out of order.
(assert_malformed
  (module binary "\00asm\01\00\00\00" "\0a\01\00" "\01\01\00")
  "section out of order")
;; Function section with no code section: count mismatch.
(assert_malformed
  (module binary "\00asm\01\00\00\00" "\01\04\01\60\00\00" "\03\02\01\00")
  "function count mismatch")
;; Truncated section.
(assert_malformed
  (module binary "\00asm\01\00\00\00" "\01\7f\01")
  "unexpected end")
