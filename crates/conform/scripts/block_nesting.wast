;; Nested blocks with results, and br escaping through multiple levels.
(module
  (func (export "nested") (result i32)
    block (result i32)
      block (result i32)
        block (result i32)
          i32.const 1
        end
        i32.const 2
        i32.add
      end
      i32.const 4
      i32.add
    end)
  (func (export "escape") (param i32) (result i32)
    block $outer (result i32)
      block $inner
        local.get 0
        i32.eqz
        br_if $inner
        i32.const 21
        br $outer
      end
      i32.const 99
    end)
  (func (export "folded") (param i32) (result i32)
    (block (result i32)
      (i32.add (local.get 0) (i32.const 10)))))

(assert_return (invoke "nested") (i32.const 7))
(assert_return (invoke "escape" (i32.const 1)) (i32.const 21))
(assert_return (invoke "escape" (i32.const 0)) (i32.const 99))
(assert_return (invoke "folded" (i32.const 32)) (i32.const 42))
