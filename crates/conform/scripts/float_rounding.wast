;; ceil/floor/trunc/nearest, including round-ties-to-even.
(module
  (func (export "ceil") (param f64) (result f64) local.get 0 f64.ceil)
  (func (export "floor") (param f64) (result f64) local.get 0 f64.floor)
  (func (export "trunc") (param f64) (result f64) local.get 0 f64.trunc)
  (func (export "nearest") (param f64) (result f64) local.get 0 f64.nearest)
  (func (export "nearest32") (param f32) (result f32) local.get 0 f32.nearest))

(assert_return (invoke "ceil" (f64.const 1.25)) (f64.const 2.0))
(assert_return (invoke "ceil" (f64.const -1.25)) (f64.const -1.0))
(assert_return (invoke "floor" (f64.const 1.75)) (f64.const 1.0))
(assert_return (invoke "floor" (f64.const -1.25)) (f64.const -2.0))
(assert_return (invoke "trunc" (f64.const 1.75)) (f64.const 1.0))
(assert_return (invoke "trunc" (f64.const -1.75)) (f64.const -1.0))
;; Ties round to even.
(assert_return (invoke "nearest" (f64.const 2.5)) (f64.const 2.0))
(assert_return (invoke "nearest" (f64.const 3.5)) (f64.const 4.0))
(assert_return (invoke "nearest" (f64.const -2.5)) (f64.const -2.0))
(assert_return (invoke "nearest" (f64.const 4.75)) (f64.const 5.0))
(assert_return (invoke "nearest32" (f32.const 0.5)) (f32.const 0.0))
(assert_return (invoke "nearest32" (f32.const 1.5)) (f32.const 2.0))
;; Rounding preserves the sign of zero.
(assert_return (invoke "ceil" (f64.const -0.25)) (f64.const -0.0))
(assert_return (invoke "nearest" (f64.const -0.0)) (f64.const -0.0))
