;; Validator error paths: stack underflow at end, mid-body underflow,
;; branch depths, and module-level rules.
(assert_invalid
  (module (func (result i32) nop))
  "underflow")
(assert_invalid
  (module (func i32.add drop))
  "underflow")
(assert_invalid
  (module (func (result i32) i32.const 1 i32.add))
  "underflow")
(assert_invalid
  (module (func drop))
  "underflow")
(assert_invalid
  (module (func br 2))
  "depth")
(assert_invalid
  (module (func block br 5 end))
  "depth")
(assert_invalid
  (module (func block i32.const 1 br_if 3 end))
  "depth")
;; Block results must be on the stack at end.
(assert_invalid
  (module (func block (result i32) end drop))
  "underflow")
;; Module-level checks surface through the same validator.
(assert_invalid
  (module (func $f (param i32) nop) (start $f))
  "start function")
(assert_invalid
  (module
    (func (export "dup") (result i32) i32.const 1)
    (func (export "dup") (result i32) i32.const 2))
  "duplicate export")
