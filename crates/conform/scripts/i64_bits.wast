;; i64 bit counting, shifts, and rotates at 64-bit width.
(module
  (func (export "clz") (param i64) (result i64) local.get 0 i64.clz)
  (func (export "ctz") (param i64) (result i64) local.get 0 i64.ctz)
  (func (export "popcnt") (param i64) (result i64) local.get 0 i64.popcnt)
  (func (export "shl") (param i64 i64) (result i64) local.get 0 local.get 1 i64.shl)
  (func (export "shr_s") (param i64 i64) (result i64) local.get 0 local.get 1 i64.shr_s)
  (func (export "shr_u") (param i64 i64) (result i64) local.get 0 local.get 1 i64.shr_u)
  (func (export "rotl") (param i64 i64) (result i64) local.get 0 local.get 1 i64.rotl)
  (func (export "rotr") (param i64 i64) (result i64) local.get 0 local.get 1 i64.rotr))

(assert_return (invoke "clz" (i64.const 1)) (i64.const 63))
(assert_return (invoke "clz" (i64.const 0)) (i64.const 64))
(assert_return (invoke "ctz" (i64.const 0x100000000)) (i64.const 32))
(assert_return (invoke "ctz" (i64.const 0)) (i64.const 64))
(assert_return (invoke "popcnt" (i64.const -1)) (i64.const 64))
;; Shift counts are masked mod 64.
(assert_return (invoke "shl" (i64.const 1) (i64.const 65)) (i64.const 2))
(assert_return (invoke "shr_u" (i64.const -1) (i64.const 1)) (i64.const 0x7FFFFFFFFFFFFFFF))
(assert_return (invoke "shr_s" (i64.const -8) (i64.const 1)) (i64.const -4))
(assert_return (invoke "rotr" (i64.const 1) (i64.const 1)) (i64.const 0x8000000000000000))
(assert_return (invoke "rotl" (i64.const 0x8000000000000001) (i64.const 1)) (i64.const 3))
