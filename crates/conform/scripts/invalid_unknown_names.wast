;; Validator error paths: unknown locals, globals, functions, and immutability.
(assert_invalid
  (module (func (result i32) local.get 3))
  "unknown local")
(assert_invalid
  (module (func (param i32) local.get 1 drop))
  "unknown local")
(assert_invalid
  (module (func i32.const 1 local.set 0))
  "unknown local")
(assert_invalid
  (module (func (result i32) global.get 0))
  "unknown global")
(assert_invalid
  (module (func i32.const 1 global.set 5))
  "unknown global")
(assert_invalid
  (module (func call 9))
  "unknown function")
(assert_invalid
  (module
    (global $g i32 (i32.const 1))
    (func i32.const 2 global.set $g))
  "immutable")
(assert_invalid
  (module (func i32.const 0 i32.load drop))
  "no memory")
(assert_invalid
  (module (memory 1) (func i32.const 0 i32.load align=8 drop))
  "alignment")
