;; i64 add/sub/mul wrapping at 64 bits.
(module
  (func (export "add") (param i64 i64) (result i64)
    local.get 0
    local.get 1
    i64.add)
  (func (export "sub") (param i64 i64) (result i64)
    local.get 0
    local.get 1
    i64.sub)
  (func (export "mul") (param i64 i64) (result i64)
    local.get 0
    local.get 1
    i64.mul))

(assert_return (invoke "add" (i64.const 1) (i64.const 2)) (i64.const 3))
(assert_return
  (invoke "add" (i64.const 9223372036854775807) (i64.const 1))
  (i64.const -9223372036854775808))
(assert_return (invoke "add" (i64.const -1) (i64.const 1)) (i64.const 0))
(assert_return (invoke "sub" (i64.const 0) (i64.const 1)) (i64.const -1))
(assert_return
  (invoke "sub" (i64.const -9223372036854775808) (i64.const 1))
  (i64.const 9223372036854775807))
(assert_return (invoke "mul" (i64.const 0x100000000) (i64.const 0x100000000)) (i64.const 0))
(assert_return (invoke "mul" (i64.const -1) (i64.const -1)) (i64.const 1))
(assert_return
  (invoke "mul" (i64.const 0x0123456789ABCDEF) (i64.const 16))
  (i64.const 0x123456789ABCDEF0))
