;; Validator error paths: operand type mismatches.
(assert_invalid
  (module (func (result i32) i64.const 0))
  "expected i32")
(assert_invalid
  (module (func (result i32) i32.const 1 f64.const 2.0 i32.add))
  "expected i32")
(assert_invalid
  (module (func (param f32) (result f32) local.get 0 f64.sqrt))
  "expected f64")
(assert_invalid
  (module (func (param i32) local.get 0 i64.eqz drop))
  "expected i64")
(assert_invalid
  (module (func (param i64) (result i32) local.get 0))
  "expected i32")
;; select operands must agree, and untyped select may not hold references.
(assert_invalid
  (module (func (result i32) i32.const 1 f32.const 2.0 i32.const 0 select))
  "select")
(assert_invalid
  (module (func (result i32) i32.const 1 i32.const 2 select drop i32.const 0))
  "underflow")
;; if without else must have matching types.
(assert_invalid
  (module (func (result i32) i32.const 1 if (result i32) i32.const 2 end))
  "else")
