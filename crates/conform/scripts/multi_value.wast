;; Multi-value: multiple function results and multi-result blocks.
(module
  (func (export "pair") (result i32 i32)
    i32.const 1
    i32.const 2)
  (func (export "swap") (param i32 i32) (result i32 i32)
    local.get 1
    local.get 0)
  (func (export "divmod") (param i32 i32) (result i32 i32)
    local.get 0
    local.get 1
    i32.div_u
    local.get 0
    local.get 1
    i32.rem_u)
  (func (export "block_pair") (result i32)
    block (result i32 i32)
      i32.const 30
      i32.const 12
    end
    i32.add)
  (func (export "mixed") (result i32 i64 f64)
    i32.const 1
    i64.const -2
    f64.const 0.5))

(assert_return (invoke "pair") (i32.const 1) (i32.const 2))
(assert_return (invoke "swap" (i32.const 7) (i32.const 9)) (i32.const 9) (i32.const 7))
(assert_return (invoke "divmod" (i32.const 17) (i32.const 5)) (i32.const 3) (i32.const 2))
(assert_return (invoke "block_pair") (i32.const 42))
(assert_return (invoke "mixed") (i32.const 1) (i64.const -2) (f64.const 0.5))
