;; Deterministic fuel metering: every configuration must consume the *same*
;; fuel and trap at the same point when the budget runs out. The cost table
;; (crates/wasm/src/fuel.rs) charges 1 unit per instruction, 5 for call,
;; 6 for call_indirect, 100 for memory.grow, and 0 for the structural
;; opcodes (block/loop/end/else/nop).
(fuel 1000)
(module
  ;; 3 units: const + const + add.
  (func (export "answer") (result i32)
    i32.const 40
    i32.const 2
    i32.add)
  ;; 8 units per full iteration, 3 for the exiting check, 1 for the final
  ;; local.get: spin(n) costs 8*n + 4.
  (func (export "spin") (param $n i32) (result i32)
    block $done
      loop $top
        local.get $n
        i32.eqz
        br_if $done
        local.get $n
        i32.const 1
        i32.sub
        local.set $n
        br $top
      end
    end
    local.get $n)
  ;; 20 units: three calls (5 + 1 in the callee each) and two adds.
  (func $one (result i32)
    i32.const 1)
  (func (export "call3") (result i32)
    call $one
    call $one
    i32.add
    call $one
    i32.add))

;; Generous budget: everything completes, consumption recorded per action.
(assert_return (invoke "answer") (i32.const 42))
(assert_return (invoke "spin" (i32.const 10)) (i32.const 0))
(assert_return (invoke "call3") (i32.const 3))

;; Exact budgets succeed...
(fuel 3)
(assert_return (invoke "answer") (i32.const 42))
(fuel 84)
(assert_return (invoke "spin" (i32.const 10)) (i32.const 0))
(fuel 20)
(assert_return (invoke "call3") (i32.const 3))

;; ...one unit less traps, in every tier, on both backends.
(fuel 2)
(assert_trap (invoke "answer") "all fuel consumed")
(fuel 83)
(assert_trap (invoke "spin" (i32.const 10)) "all fuel consumed")
(fuel 19)
(assert_trap (invoke "call3") "all fuel consumed")

;; A long-running loop against a small budget: the standard runaway-tenant
;; shape. spin(1000) would need 8004 units.
(fuel 50)
(assert_trap (invoke "spin" (i32.const 1000)) "all fuel consumed")
