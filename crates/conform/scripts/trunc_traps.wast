;; Float-to-int truncation traps: NaN and out-of-range inputs.
(module
  (func (export "i32_f32_s") (param f32) (result i32) local.get 0 i32.trunc_f32_s)
  (func (export "i32_f32_u") (param f32) (result i32) local.get 0 i32.trunc_f32_u)
  (func (export "i32_f64_s") (param f64) (result i32) local.get 0 i32.trunc_f64_s)
  (func (export "i64_f64_s") (param f64) (result i64) local.get 0 i64.trunc_f64_s)
  (func (export "i64_f64_u") (param f64) (result i64) local.get 0 i64.trunc_f64_u))

;; In-range boundaries succeed.
(assert_return (invoke "i32_f64_s" (f64.const 2147483647.0)) (i32.const 2147483647))
(assert_return (invoke "i32_f64_s" (f64.const -2147483648.0)) (i32.const -2147483648))
(assert_return (invoke "i64_f64_u" (f64.const 0.0)) (i64.const 0))
;; NaN is an invalid conversion.
(assert_trap (invoke "i32_f32_s" (f32.const nan)) "invalid conversion to integer")
(assert_trap (invoke "i64_f64_s" (f64.const nan)) "invalid conversion to integer")
;; Out-of-range magnitudes overflow.
(assert_trap (invoke "i32_f64_s" (f64.const 2147483648.0)) "integer overflow")
(assert_trap (invoke "i32_f64_s" (f64.const -2147483649.0)) "integer overflow")
(assert_trap (invoke "i32_f32_s" (f32.const 3e9)) "integer overflow")
(assert_trap (invoke "i32_f32_u" (f32.const -1.0)) "integer overflow")
(assert_trap (invoke "i32_f32_u" (f32.const 5e9)) "integer overflow")
(assert_trap (invoke "i64_f64_s" (f64.const 1e19)) "integer overflow")
(assert_trap (invoke "i64_f64_u" (f64.const -1.0)) "integer overflow")
(assert_trap (invoke "i64_f64_u" (f64.const 2e19)) "integer overflow")
(assert_trap (invoke "i32_f32_s" (f32.const inf)) "integer overflow")
(assert_trap (invoke "i32_f32_u" (f32.const -inf)) "integer overflow")
