;; i32 add/sub/mul wrapping semantics.
(module
  (func (export "add") (param i32 i32) (result i32)
    local.get 0
    local.get 1
    i32.add)
  (func (export "sub") (param i32 i32) (result i32)
    local.get 0
    local.get 1
    i32.sub)
  (func (export "mul") (param i32 i32) (result i32)
    local.get 0
    local.get 1
    i32.mul))

(assert_return (invoke "add" (i32.const 1) (i32.const 2)) (i32.const 3))
(assert_return (invoke "add" (i32.const 2147483647) (i32.const 1)) (i32.const -2147483648))
(assert_return (invoke "add" (i32.const -1) (i32.const 1)) (i32.const 0))
(assert_return (invoke "add" (i32.const 0x80000000) (i32.const 0x80000000)) (i32.const 0))
(assert_return (invoke "sub" (i32.const 0) (i32.const 1)) (i32.const -1))
(assert_return (invoke "sub" (i32.const -2147483648) (i32.const 1)) (i32.const 2147483647))
(assert_return (invoke "mul" (i32.const 65536) (i32.const 65536)) (i32.const 0))
(assert_return (invoke "mul" (i32.const 0x10000001) (i32.const 16)) (i32.const 16))
(assert_return (invoke "mul" (i32.const -1) (i32.const -1)) (i32.const 1))
