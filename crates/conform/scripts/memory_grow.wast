;; memory.size / memory.grow: growth, limits, and newly zeroed pages.
(module
  (memory 1 3)
  (func (export "size") (result i32) memory.size)
  (func (export "grow") (param i32) (result i32) local.get 0 memory.grow)
  (func (export "probe") (param i32) (result i32) local.get 0 i32.load))

(assert_return (invoke "size") (i32.const 1))
;; Growing by 0 succeeds and reports the current size.
(assert_return (invoke "grow" (i32.const 0)) (i32.const 1))
;; Out of bounds before growth...
(assert_trap (invoke "probe" (i32.const 65536)) "out of bounds memory access")
;; ...grow one page (returns the old size)...
(assert_return (invoke "grow" (i32.const 1)) (i32.const 1))
(assert_return (invoke "size") (i32.const 2))
;; ...and the same address is now readable and zeroed.
(assert_return (invoke "probe" (i32.const 65536)) (i32.const 0))
;; Growing past the declared max fails with -1 and changes nothing.
(assert_return (invoke "grow" (i32.const 5)) (i32.const -1))
(assert_return (invoke "size") (i32.const 2))
(assert_return (invoke "grow" (i32.const 1)) (i32.const 2))
(assert_return (invoke "size") (i32.const 3))
(assert_return (invoke "grow" (i32.const 1)) (i32.const -1))
