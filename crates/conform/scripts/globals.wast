;; Globals: initialization, mutation, all value types, cross-call state.
(module
  (global $gi (mut i32) (i32.const 10))
  (global $gl (mut i64) (i64.const -20))
  (global $gf (mut f32) (f32.const 1.5))
  (global $gd (mut f64) (f64.const -2.5))
  (global $const i32 (i32.const 1000))
  (func (export "get_i") (result i32) global.get $gi)
  (func (export "get_l") (result i64) global.get $gl)
  (func (export "get_f") (result f32) global.get $gf)
  (func (export "get_d") (result f64) global.get $gd)
  (func (export "get_const") (result i32) global.get $const)
  (func (export "bump") (result i32)
    global.get $gi
    i32.const 1
    i32.add
    global.set $gi
    global.get $gi)
  (func (export "set_all") (param i32 i64 f32 f64)
    local.get 0
    global.set $gi
    local.get 1
    global.set $gl
    local.get 2
    global.set $gf
    local.get 3
    global.set $gd))

(assert_return (invoke "get_i") (i32.const 10))
(assert_return (invoke "get_l") (i64.const -20))
(assert_return (invoke "get_f") (f32.const 1.5))
(assert_return (invoke "get_d") (f64.const -2.5))
(assert_return (invoke "get_const") (i32.const 1000))
;; State persists across invokes on the same instance.
(assert_return (invoke "bump") (i32.const 11))
(assert_return (invoke "bump") (i32.const 12))
(invoke "set_all" (i32.const 5) (i64.const 6) (f32.const 7.5) (f64.const 8.25))
(assert_return (invoke "get_i") (i32.const 5))
(assert_return (invoke "get_l") (i64.const 6))
(assert_return (invoke "get_f") (f32.const 7.5))
(assert_return (invoke "get_d") (f64.const 8.25))
;; A fresh module resets the globals.
(module
  (global $g (mut i32) (i32.const 77))
  (func (export "read") (result i32) global.get $g))
(assert_return (invoke "read") (i32.const 77))
