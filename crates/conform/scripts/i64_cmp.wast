;; i64 comparisons around the 64-bit sign boundary.
(module
  (func (export "lt_s") (param i64 i64) (result i32) local.get 0 local.get 1 i64.lt_s)
  (func (export "lt_u") (param i64 i64) (result i32) local.get 0 local.get 1 i64.lt_u)
  (func (export "gt_s") (param i64 i64) (result i32) local.get 0 local.get 1 i64.gt_s)
  (func (export "gt_u") (param i64 i64) (result i32) local.get 0 local.get 1 i64.gt_u)
  (func (export "eqz") (param i64) (result i32) local.get 0 i64.eqz))

(assert_return (invoke "lt_s" (i64.const -1) (i64.const 0)) (i32.const 1))
(assert_return (invoke "lt_u" (i64.const -1) (i64.const 0)) (i32.const 0))
(assert_return
  (invoke "lt_s" (i64.const -9223372036854775808) (i64.const 9223372036854775807))
  (i32.const 1))
(assert_return
  (invoke "lt_u" (i64.const -9223372036854775808) (i64.const 9223372036854775807))
  (i32.const 0))
(assert_return (invoke "gt_s" (i64.const 1) (i64.const -1)) (i32.const 1))
(assert_return (invoke "gt_u" (i64.const 1) (i64.const -1)) (i32.const 0))
(assert_return (invoke "eqz" (i64.const 0)) (i32.const 1))
(assert_return (invoke "eqz" (i64.const 0x100000000)) (i32.const 0))
