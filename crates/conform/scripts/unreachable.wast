;; unreachable: traps when executed, inert on untaken paths.
(module
  (func (export "boom") unreachable)
  (func (export "boom_value") (result i32) unreachable)
  (func (export "guarded") (param i32) (result i32)
    local.get 0
    if
      unreachable
    end
    i32.const 7)
  (func (export "after_return") (result i32)
    i32.const 3
    return
    unreachable))

(assert_trap (invoke "boom") "unreachable")
(assert_trap (invoke "boom_value") "unreachable")
(assert_return (invoke "guarded" (i32.const 0)) (i32.const 7))
(assert_trap (invoke "guarded" (i32.const 1)) "unreachable")
(assert_return (invoke "after_return") (i32.const 3))
