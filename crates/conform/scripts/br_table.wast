;; br_table: in-range selectors, clamped defaults, negative indices.
(module
  (func (export "switch") (param i32) (result i32)
    block $default
      block $two
        block $one
          block $zero
            local.get 0
            br_table $zero $one $two $default
          end
          i32.const 100
          return
        end
        i32.const 101
        return
      end
      i32.const 102
      return
    end
    i32.const 103))

(assert_return (invoke "switch" (i32.const 0)) (i32.const 100))
(assert_return (invoke "switch" (i32.const 1)) (i32.const 101))
(assert_return (invoke "switch" (i32.const 2)) (i32.const 102))
(assert_return (invoke "switch" (i32.const 3)) (i32.const 103))
(assert_return (invoke "switch" (i32.const 1000)) (i32.const 103))
;; Negative selectors are unsigned-huge and take the default.
(assert_return (invoke "switch" (i32.const -1)) (i32.const 103))
