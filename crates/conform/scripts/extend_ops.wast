;; Sign-extension operators (the paper's SE feature bit).
(module
  (func (export "e8_32") (param i32) (result i32) local.get 0 i32.extend8_s)
  (func (export "e16_32") (param i32) (result i32) local.get 0 i32.extend16_s)
  (func (export "e8_64") (param i64) (result i64) local.get 0 i64.extend8_s)
  (func (export "e16_64") (param i64) (result i64) local.get 0 i64.extend16_s)
  (func (export "e32_64") (param i64) (result i64) local.get 0 i64.extend32_s))

(assert_return (invoke "e8_32" (i32.const 0x7F)) (i32.const 127))
(assert_return (invoke "e8_32" (i32.const 0x80)) (i32.const -128))
(assert_return (invoke "e8_32" (i32.const 0x17F)) (i32.const 127))
(assert_return (invoke "e16_32" (i32.const 0x8000)) (i32.const -32768))
(assert_return (invoke "e16_32" (i32.const 0x7FFF)) (i32.const 32767))
(assert_return (invoke "e8_64" (i64.const 0x80)) (i64.const -128))
(assert_return (invoke "e16_64" (i64.const 0x8000)) (i64.const -32768))
(assert_return (invoke "e32_64" (i64.const 0x80000000)) (i64.const -2147483648))
(assert_return (invoke "e32_64" (i64.const 0x7FFFFFFF)) (i64.const 2147483647))
