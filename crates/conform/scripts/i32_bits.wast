;; i32 bit counting, shifts (with count masking), and rotates.
(module
  (func (export "clz") (param i32) (result i32) local.get 0 i32.clz)
  (func (export "ctz") (param i32) (result i32) local.get 0 i32.ctz)
  (func (export "popcnt") (param i32) (result i32) local.get 0 i32.popcnt)
  (func (export "shl") (param i32 i32) (result i32) local.get 0 local.get 1 i32.shl)
  (func (export "shr_s") (param i32 i32) (result i32) local.get 0 local.get 1 i32.shr_s)
  (func (export "shr_u") (param i32 i32) (result i32) local.get 0 local.get 1 i32.shr_u)
  (func (export "rotl") (param i32 i32) (result i32) local.get 0 local.get 1 i32.rotl)
  (func (export "rotr") (param i32 i32) (result i32) local.get 0 local.get 1 i32.rotr)
  (func (export "logic") (param i32 i32) (result i32)
    local.get 0
    local.get 1
    i32.and
    local.get 0
    local.get 1
    i32.or
    i32.xor))

(assert_return (invoke "clz" (i32.const 1)) (i32.const 31))
(assert_return (invoke "clz" (i32.const 0)) (i32.const 32))
(assert_return (invoke "clz" (i32.const -1)) (i32.const 0))
(assert_return (invoke "ctz" (i32.const 0x10000)) (i32.const 16))
(assert_return (invoke "ctz" (i32.const 0)) (i32.const 32))
(assert_return (invoke "popcnt" (i32.const -1)) (i32.const 32))
(assert_return (invoke "popcnt" (i32.const 0xF0F)) (i32.const 8))
;; Shift counts are masked mod 32.
(assert_return (invoke "shl" (i32.const 1) (i32.const 33)) (i32.const 2))
(assert_return (invoke "shr_u" (i32.const -1) (i32.const 1)) (i32.const 0x7FFFFFFF))
(assert_return (invoke "shr_s" (i32.const -8) (i32.const 1)) (i32.const -4))
(assert_return (invoke "shr_s" (i32.const -1) (i32.const 32)) (i32.const -1))
(assert_return (invoke "rotl" (i32.const 0x80000001) (i32.const 1)) (i32.const 3))
(assert_return (invoke "rotr" (i32.const 1) (i32.const 1)) (i32.const 0x80000000))
;; (a and b) xor (a or b) == a xor b.
(assert_return (invoke "logic" (i32.const 12) (i32.const 10)) (i32.const 6))
