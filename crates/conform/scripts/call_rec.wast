;; Direct calls: recursion, mutual recursion, and argument passing.
(module
  (func $fib (export "fib") (param i32) (result i32)
    local.get 0
    i32.const 2
    i32.lt_s
    if (result i32)
      local.get 0
    else
      local.get 0
      i32.const 1
      i32.sub
      call $fib
      local.get 0
      i32.const 2
      i32.sub
      call $fib
      i32.add
    end)
  (func $is_even (export "is_even") (param i32) (result i32)
    local.get 0
    i32.eqz
    if (result i32)
      i32.const 1
    else
      local.get 0
      i32.const 1
      i32.sub
      call $is_odd
    end)
  (func $is_odd (export "is_odd") (param i32) (result i32)
    local.get 0
    i32.eqz
    if (result i32)
      i32.const 0
    else
      local.get 0
      i32.const 1
      i32.sub
      call $is_even
    end)
  (func $mix (param i32 i64 f64) (result i64)
    local.get 1
    local.get 0
    i64.extend_i32_s
    i64.add
    local.get 2
    i64.trunc_f64_s
    i64.add)
  (func (export "mix3") (result i64)
    i32.const 1
    i64.const 2
    f64.const 3.5
    call $mix))

(assert_return (invoke "fib" (i32.const 0)) (i32.const 0))
(assert_return (invoke "fib" (i32.const 1)) (i32.const 1))
(assert_return (invoke "fib" (i32.const 10)) (i32.const 55))
(assert_return (invoke "fib" (i32.const 15)) (i32.const 610))
(assert_return (invoke "is_even" (i32.const 10)) (i32.const 1))
(assert_return (invoke "is_even" (i32.const 7)) (i32.const 0))
(assert_return (invoke "is_odd" (i32.const 9)) (i32.const 1))
(assert_return (invoke "mix3") (i64.const 6))
