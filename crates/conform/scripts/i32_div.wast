;; i32 division and remainder: truncation, signedness, and the two traps.
(module
  (func (export "div_s") (param i32 i32) (result i32)
    local.get 0
    local.get 1
    i32.div_s)
  (func (export "div_u") (param i32 i32) (result i32)
    local.get 0
    local.get 1
    i32.div_u)
  (func (export "rem_s") (param i32 i32) (result i32)
    local.get 0
    local.get 1
    i32.rem_s)
  (func (export "rem_u") (param i32 i32) (result i32)
    local.get 0
    local.get 1
    i32.rem_u))

(assert_return (invoke "div_s" (i32.const 7) (i32.const 2)) (i32.const 3))
(assert_return (invoke "div_s" (i32.const -7) (i32.const 2)) (i32.const -3))
(assert_return (invoke "div_s" (i32.const 7) (i32.const -2)) (i32.const -3))
(assert_return (invoke "div_u" (i32.const 7) (i32.const 2)) (i32.const 3))
(assert_return (invoke "div_u" (i32.const -1) (i32.const 2)) (i32.const 2147483647))
(assert_return (invoke "rem_s" (i32.const 7) (i32.const 3)) (i32.const 1))
(assert_return (invoke "rem_s" (i32.const -7) (i32.const 3)) (i32.const -1))
(assert_return (invoke "rem_u" (i32.const -1) (i32.const 10)) (i32.const 5))
;; rem_s of MIN by -1 is defined (0); div_s of the same pair traps.
(assert_return (invoke "rem_s" (i32.const -2147483648) (i32.const -1)) (i32.const 0))
(assert_trap (invoke "div_s" (i32.const -2147483648) (i32.const -1)) "integer overflow")
(assert_trap (invoke "div_s" (i32.const 1) (i32.const 0)) "integer divide by zero")
(assert_trap (invoke "div_u" (i32.const 1) (i32.const 0)) "integer divide by zero")
(assert_trap (invoke "rem_s" (i32.const 1) (i32.const 0)) "integer divide by zero")
(assert_trap (invoke "rem_u" (i32.const 1) (i32.const 0)) "integer divide by zero")
