;; br / br_if across multiple nesting depths, with and without values.
(module
  (func (export "depth2") (result i32)
    block $a (result i32)
      block $b
        block $c
          i32.const 11
          br $a
        end
      end
      i32.const 0
    end)
  (func (export "cond_depth") (param i32) (result i32)
    block $a (result i32)
      block $b
        local.get 0
        br_if $b
        i32.const 10
        br $a
      end
      i32.const 20
      br $a
    end)
  (func (export "from_loop") (param i32) (result i32)
    block $exit (result i32)
      loop $l
        local.get 0
        i32.const 100
        i32.gt_s
        if
          local.get 0
          br $exit
        end
        local.get 0
        local.get 0
        i32.add
        local.set 0
        br $l
      end
      unreachable
    end))

(assert_return (invoke "depth2") (i32.const 11))
(assert_return (invoke "cond_depth" (i32.const 0)) (i32.const 10))
(assert_return (invoke "cond_depth" (i32.const 1)) (i32.const 20))
(assert_return (invoke "from_loop" (i32.const 3)) (i32.const 192))
