;; Locals: zero defaults, set/tee, every type, many locals.
(module
  (func (export "defaults") (result i32)
    (local i32 i64 f32 f64)
    local.get 0
    local.get 1
    i32.wrap_i64
    i32.add
    local.get 2
    i32.trunc_f32_s
    i32.add
    local.get 3
    i32.trunc_f64_s
    i32.add)
  (func (export "tee_chain") (param i32) (result i32)
    (local $a i32) (local $b i32)
    local.get 0
    local.tee $a
    local.tee $b
    local.get $a
    i32.add
    local.get $b
    i32.add)
  (func (export "shadowing") (param $x i32) (result i32)
    (local $y i32)
    local.get $x
    i32.const 2
    i32.mul
    local.set $y
    local.get $y))

(assert_return (invoke "defaults") (i32.const 0))
(assert_return (invoke "tee_chain" (i32.const 5)) (i32.const 15))
(assert_return (invoke "shadowing" (i32.const 21)) (i32.const 42))
