;; Little-endian layout, observed through data segments and reassembly.
(module
  (memory 1)
  (data (offset (i32.const 0)) "\01\02\03\04\05\06\07\08")
  (data (offset (i32.const 16)) "\80\FF")
  (func (export "word") (result i32) i32.const 0 i32.load)
  (func (export "dword") (result i64) i32.const 0 i64.load)
  (func (export "hi_word") (result i32) i32.const 4 i32.load)
  (func (export "byte0") (result i32) i32.const 0 i32.load8_u)
  (func (export "byte3") (result i32) i32.const 3 i32.load8_u)
  (func (export "signed_byte") (result i32) i32.const 16 i32.load8_s)
  (func (export "u16") (result i32) i32.const 16 i32.load16_u)
  (func (export "s16") (result i32) i32.const 16 i32.load16_s)
  (func (export "store_then_bytes") (param i32) (result i32)
    i32.const 32
    local.get 0
    i32.store
    ;; reassemble from individual bytes: b0 | b1<<8 | b2<<16 | b3<<24
    i32.const 32
    i32.load8_u
    i32.const 33
    i32.load8_u
    i32.const 8
    i32.shl
    i32.or
    i32.const 34
    i32.load8_u
    i32.const 16
    i32.shl
    i32.or
    i32.const 35
    i32.load8_u
    i32.const 24
    i32.shl
    i32.or))

(assert_return (invoke "word") (i32.const 0x04030201))
(assert_return (invoke "dword") (i64.const 0x0807060504030201))
(assert_return (invoke "hi_word") (i32.const 0x08070605))
(assert_return (invoke "byte0") (i32.const 1))
(assert_return (invoke "byte3") (i32.const 4))
(assert_return (invoke "signed_byte") (i32.const -128))
(assert_return (invoke "u16") (i32.const 0xFF80))
(assert_return (invoke "s16") (i32.const -128))
(assert_return (invoke "store_then_bytes" (i32.const 0x7BCDEF01)) (i32.const 0x7BCDEF01))
