;; if/else: value-producing arms, missing else, folded form, nesting.
(module
  (func (export "abs") (param i32) (result i32)
    local.get 0
    i32.const 0
    i32.lt_s
    if (result i32)
      i32.const 0
      local.get 0
      i32.sub
    else
      local.get 0
    end)
  (func (export "clamp01") (param i32) (result i32)
    local.get 0
    i32.const 0
    i32.lt_s
    if (result i32)
      i32.const 0
    else
      local.get 0
      i32.const 1
      i32.gt_s
      if (result i32)
        i32.const 1
      else
        local.get 0
      end
    end)
  (func (export "side") (param i32) (result i32) (local $r i32)
    i32.const 7
    local.set $r
    local.get 0
    if
      i32.const 13
      local.set $r
    end
    local.get $r)
  (func (export "max") (param i32 i32) (result i32)
    (if (result i32) (i32.gt_s (local.get 0) (local.get 1))
      (then (local.get 0))
      (else (local.get 1)))))

(assert_return (invoke "abs" (i32.const -5)) (i32.const 5))
(assert_return (invoke "abs" (i32.const 5)) (i32.const 5))
(assert_return (invoke "clamp01" (i32.const -3)) (i32.const 0))
(assert_return (invoke "clamp01" (i32.const 0)) (i32.const 0))
(assert_return (invoke "clamp01" (i32.const 5)) (i32.const 1))
(assert_return (invoke "side" (i32.const 0)) (i32.const 7))
(assert_return (invoke "side" (i32.const 1)) (i32.const 13))
(assert_return (invoke "max" (i32.const -1) (i32.const 1)) (i32.const 1))
(assert_return (invoke "max" (i32.const 3) (i32.const 2)) (i32.const 3))
