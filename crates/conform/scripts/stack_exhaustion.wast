;; Unbounded recursion must produce a stack-exhaustion trap, not a crash,
;; and the instance must remain usable afterwards.
(module
  (func $spin (export "spin") (result i32)
    call $spin)
  (func $mutual_a (export "mutual") (result i32)
    call $mutual_b)
  (func $mutual_b (result i32)
    call $mutual_a)
  (func (export "ok") (result i32) i32.const 99))

(assert_trap (invoke "spin") "call stack exhausted")
(assert_trap (invoke "mutual") "call stack exhausted")
;; The trap unwound cleanly: the same instance still runs.
(assert_return (invoke "ok") (i32.const 99))
(assert_trap (invoke "spin") "call stack exhausted")
(assert_return (invoke "ok") (i32.const 99))
