//! Runs the checked-in conformance corpus under every tier×backend
//! configuration, and demonstrates that the corpus catches divergences: a
//! deliberately broken build must fail it.

use conform::runner::{all_configs, run_script, run_script_mutated};
use conform::script::Command;
use wasm::Opcode;

#[test]
fn corpus_has_at_least_thirty_scripts_with_real_assertions() {
    let corpus = conform::load_corpus();
    assert!(
        corpus.len() >= 30,
        "corpus must hold at least 30 scripts, found {}",
        corpus.len()
    );
    for script in &corpus {
        let asserts = script
            .commands
            .iter()
            .filter(|(c, _)| {
                matches!(
                    c,
                    Command::AssertReturn { .. }
                        | Command::AssertTrap { .. }
                        | Command::AssertInvalid { .. }
                        | Command::AssertMalformed { .. }
                )
            })
            .count();
        assert!(asserts > 0, "{} has no assertions", script.name);
    }
}

#[test]
fn corpus_passes_on_every_tier_and_backend() {
    let corpus = conform::load_corpus();
    let configs = all_configs();
    let mut total = 0usize;
    let mut failures: Vec<String> = Vec::new();
    for config in &configs {
        for script in &corpus {
            let outcome = run_script(script, config);
            total += outcome.passed;
            failures.extend(outcome.failures);
        }
    }
    assert!(
        failures.is_empty(),
        "{} conformance failures:\n{}",
        failures.len(),
        failures.join("\n")
    );
    assert!(total > 300, "suspiciously few assertions ran: {total}");
}

/// Forcing on-stack replacement at every loop back edge must be invisible:
/// every script still passes under every configuration, with exactly the
/// same assertion count and — for fueled scripts — exactly the same
/// per-action fuel consumption as the plain run. A frame that jumps from
/// the interpreter (or baseline code) into the optimizing tier mid-loop may
/// not change a single observable.
#[test]
fn corpus_is_bit_identical_with_osr_forced_at_every_back_edge() {
    let corpus = conform::load_corpus();
    let mut failures: Vec<String> = Vec::new();
    for config in all_configs() {
        let osr_config = config.clone().with_osr(0);
        for script in &corpus {
            let base = run_script(script, &config);
            let osr = run_script(script, &osr_config);
            failures.extend(osr.failures.iter().cloned());
            if base.passed != osr.passed {
                failures.push(format!(
                    "{}[{}]: {} assertions passed without OSR, {} with",
                    script.name, config.name, base.passed, osr.passed
                ));
            }
            if base.fuel != osr.fuel {
                failures.push(format!(
                    "{}[{}]: fuel diverged under OSR: {:?} vs {:?}",
                    script.name, config.name, base.fuel, osr.fuel
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} OSR conformance failures:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// Every `assert_trap` in the corpus produces a symbolicated backtrace, and
/// that backtrace is identical under every tier×backend configuration (the
/// executing tier is recorded per frame but excluded from equality). This is
/// the corpus-wide form of the targeted differentials in
/// `tests/backtrace.rs`: whatever trap shapes the corpus exercises —
/// arithmetic, memory, `call_indirect` dispatch, fuel exhaustion — the
/// diagnostics may not depend on how the code executed.
#[test]
fn corpus_trap_backtraces_agree_across_the_matrix() {
    let corpus = conform::load_corpus();
    let configs = all_configs();
    let reference = &configs[0];
    let mut traps_seen = 0usize;
    for script in &corpus {
        let expected = run_script(script, reference).traps;
        traps_seen += expected.len();
        for config in &configs[1..] {
            let got = run_script(script, config).traps;
            assert_eq!(
                expected, got,
                "{}[{}]: trap backtraces diverged from [{}]",
                script.name, config.name, reference.name
            );
        }
    }
    assert!(
        traps_seen >= 10,
        "suspiciously few assert_traps produced diagnostics: {traps_seen}"
    );
}

/// The corpus must be able to *catch* a miscompile: rewrite `i32.div_s` into
/// `i32.div_u` (the shape of a classic signedness bug) in every module and
/// require that the corpus reports failures under a JIT configuration.
#[test]
fn corpus_catches_a_deliberately_broken_build() {
    let corpus = conform::load_corpus();
    let break_divs = |m: &mut wasm::Module| {
        for func in &mut m.funcs {
            // Opcode bytes are position-dependent; a blind byte sweep could
            // corrupt immediates. div_s has no immediates and the corpus
            // modules keep constants small, so rewriting opcode positions
            // found by a proper bytecode walk is the honest approach.
            let mut positions = Vec::new();
            let mut r = wasm::reader::BytecodeReader::new(&func.code);
            while !r.is_at_end() {
                let at = r.pc();
                let Ok(op) = r.read_opcode() else { break };
                if r.skip_immediates(op).is_err() {
                    break;
                }
                if op == Opcode::I32DivS {
                    positions.push(at);
                }
            }
            for at in positions {
                func.code[at] = Opcode::I32DivU.to_byte();
            }
        }
    };
    let config = &all_configs()[1]; // baseline eager, virtual ISA
    let mut failures = 0usize;
    for script in &corpus {
        failures += run_script_mutated(script, config, Some(&break_divs))
            .failures
            .len();
    }
    assert!(
        failures > 0,
        "a build with i32.div_s miscompiled to div_u must fail the corpus"
    );
}

/// Every conformance script's text modules round-trip byte-identically
/// through print → parse → encode.
#[test]
fn corpus_modules_roundtrip_through_the_printer() {
    use conform::script::ModuleForm;
    for script in conform::load_corpus() {
        for (command, _) in &script.commands {
            let Command::Module(ModuleForm::Text(expr)) = command else {
                continue;
            };
            let module = wasm::wat::lower::module_from_sexpr(expr)
                .unwrap_or_else(|e| panic!("{}: {e}", script.name));
            let bytes = wasm::encode::encode(&module);
            let text = wasm::wat::print::print_module(&module);
            let reparsed = wasm::wat::parse_module(&text)
                .unwrap_or_else(|e| panic!("{}: {}\n{text}", script.name, e.describe(&text)));
            assert_eq!(
                bytes,
                wasm::encode::encode(&reparsed),
                "{}: round trip diverged",
                script.name
            );
        }
    }
}
