//! Multi-tenant conformance: deterministic fuel across the full tier×backend
//! matrix, and tenant resource ceilings enforced identically in every
//! configuration.

use conform::runner::{all_configs, run_script};
use conform::script::parse_script;
use engine::{Engine, EngineConfig, Imports, Instrumentation, MultiEngine, ResourceLimits, TrapReason};
use machine::values::WasmValue;
use wasm::wat;

/// Every fuel-using corpus script must consume the *same* fuel, action by
/// action, in all eight configurations — the core determinism claim of the
/// metering design (one cost table, one plan, three tiers).
#[test]
fn fuel_consumption_is_identical_across_the_matrix() {
    let corpus = conform::load_corpus();
    let fueled: Vec<_> = corpus.iter().filter(|s| s.uses_fuel()).collect();
    assert!(
        !fueled.is_empty(),
        "the corpus must contain fuel-metering scripts"
    );
    let configs = all_configs();
    for script in fueled {
        let reference = run_script(script, &configs[0]);
        assert!(
            reference.is_pass(),
            "[{}] {:#?}",
            configs[0].name,
            reference.failures
        );
        assert!(
            !reference.fuel.is_empty(),
            "{}: no fuel consumption recorded",
            script.name
        );
        for config in &configs[1..] {
            let outcome = run_script(script, config);
            assert!(
                outcome.is_pass(),
                "[{}] {:#?}",
                config.name,
                outcome.failures
            );
            assert_eq!(
                outcome.fuel, reference.fuel,
                "{}: fuel consumption diverged between {} and {}",
                script.name, configs[0].name, config.name
            );
        }
    }
}

/// A tenant memory ceiling below the module's declared maximum tightens
/// `memory.grow` identically in every configuration, and a declared minimum
/// above the ceiling fails instantiation.
#[test]
fn tenant_memory_ceiling_binds_in_every_config() {
    let script = parse_script(
        "tenant-memory",
        r#"
        (module
          (memory 1 10)
          (func (export "grow") (param i32) (result i32)
            local.get 0
            memory.grow)
          (func (export "size") (result i32)
            memory.size))
        (assert_return (invoke "grow" (i32.const 1)) (i32.const 1))
        (assert_return (invoke "grow" (i32.const 1)) (i32.const -1))
        (assert_return (invoke "size") (i32.const 2))
        "#,
    )
    .expect("parses");
    let limits = ResourceLimits {
        memory_pages: Some(2),
        table_elements: None,
        call_depth: None,
    };
    for config in all_configs() {
        let outcome = run_script(&script, &config.clone().with_limits(limits));
        assert!(
            outcome.is_pass(),
            "[{}] {:#?}",
            config.name,
            outcome.failures
        );
    }
    // Declared minimum above the ceiling: instantiation is refused.
    let module = wat::parse_module("(module (memory 5 10))").expect("parses");
    for config in all_configs() {
        let engine = Engine::new(config.clone().with_limits(limits));
        let err = engine
            .instantiate(&module, Imports::new(), Instrumentation::none())
            .err()
            .unwrap_or_else(|| panic!("[{}] instantiation must fail", config.name));
        assert!(
            err.to_string().contains("tenant limit"),
            "[{}] {err}",
            config.name
        );
    }
}

/// A tenant call-depth ceiling converts deep recursion into the stack
/// exhaustion trap at the same depth in every configuration.
#[test]
fn tenant_call_depth_ceiling_binds_in_every_config() {
    let script = parse_script(
        "tenant-depth",
        r#"
        (module
          (func $down (export "down") (param i32) (result i32)
            local.get 0
            i32.eqz
            if (result i32)
              i32.const 0
            else
              local.get 0
              i32.const 1
              i32.sub
              call $down
            end))
        (assert_return (invoke "down" (i32.const 20)) (i32.const 0))
        (assert_trap (invoke "down" (i32.const 500)) "call stack exhausted")
        "#,
    )
    .expect("parses");
    let limits = ResourceLimits {
        memory_pages: None,
        table_elements: None,
        call_depth: Some(50),
    };
    for config in all_configs() {
        let outcome = run_script(&script, &config.clone().with_limits(limits));
        assert!(
            outcome.is_pass(),
            "[{}] {:#?}",
            config.name,
            outcome.failures
        );
    }
}

/// The MultiEngine registry shares compiled artifacts between tenants whose
/// configurations emit the same code, across differing execution knobs.
#[test]
fn multiengine_tenants_share_compiled_artifacts() {
    let multi = MultiEngine::new();
    let module = wat::parse_module(
        r#"(module (func (export "f") (result i32) i32.const 7))"#,
    )
    .expect("parses");

    // Tenant A: plain default config. Tenant B: same code-affecting axes,
    // different execution ceilings. Both metered tenants (C, D) share a
    // *different* cache entry — metering changes emitted code.
    let a = multi.engine(EngineConfig::default());
    let b = multi.engine(EngineConfig::default().with_limits(ResourceLimits {
        memory_pages: Some(1),
        table_elements: None,
        call_depth: Some(10),
    }));
    let c = multi.engine(EngineConfig::default().with_metering());
    let d = multi.engine(EngineConfig::default().with_metering());

    let run = |engine: &Engine, fuel: Option<u64>| {
        let mut instance = engine
            .instantiate(&module, Imports::new(), Instrumentation::none())
            .expect("instantiates");
        if let Some(f) = fuel {
            instance.set_fuel(f);
        }
        let out = engine
            .call_export(&mut instance, "f", &[])
            .expect("runs");
        assert_eq!(out, vec![WasmValue::I32(7)]);
        (instance.metrics.cache_hit, instance.fuel_consumed())
    };

    assert_eq!(run(&a, None), (false, None), "tenant A compiles");
    assert_eq!(run(&b, None), (true, None), "tenant B reuses A's artifact");
    let (hit_c, fuel_c) = run(&c, Some(100));
    assert!(!hit_c, "metered code is a different cache entry");
    assert_eq!(fuel_c, Some(1), "one unit: the single i32.const");
    let (hit_d, fuel_d) = run(&d, Some(100));
    assert!(hit_d, "tenant D reuses C's metered artifact");
    assert_eq!(fuel_d, Some(1));
    assert_eq!(multi.num_code_groups(), 2);
    assert_eq!(multi.code_cache().hits(), 2);
}

/// Out-of-fuel surfaces as the structured `TrapReason::OutOfFuel` through
/// the engine's trap plumbing.
#[test]
fn out_of_fuel_is_a_structured_trap_reason() {
    let module = wat::parse_module(
        r#"(module (func (export "burn") (result i32)
              i32.const 1 i32.const 2 i32.add))"#,
    )
    .expect("parses");
    for config in all_configs() {
        let engine = Engine::new(config.clone().with_metering());
        let mut instance = engine
            .instantiate(&module, Imports::new(), Instrumentation::none())
            .expect("instantiates");
        instance.set_fuel(1);
        let code = engine
            .call_export(&mut instance, "burn", &[])
            .expect_err("must run out of fuel");
        assert_eq!(TrapReason::from(code), TrapReason::OutOfFuel, "[{}]", config.name);
        assert!(TrapReason::OutOfFuel.matches_wast("all fuel consumed"));
        assert_eq!(instance.fuel_remaining(), Some(0), "[{}]", config.name);
        assert_eq!(instance.fuel_consumed(), Some(1), "[{}]", config.name);
    }
}
