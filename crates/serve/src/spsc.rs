//! A bounded single-producer single-consumer queue with a parked consumer.
//!
//! This is the per-worker mailbox of the serving harness: the dispatcher
//! owns the [`Producer`], one worker thread owns the [`Consumer`], and the
//! worker parks itself when its queue runs dry instead of spinning. The
//! implementation is deliberately `unsafe`-free — the whole workspace avoids
//! `unsafe` — so instead of the classic raw-ring SPSC it uses a ring of
//! per-slot `Mutex<Option<T>>` cells with atomic head/tail cursors. Each
//! lock guards exactly one slot and is only ever contended when producer and
//! consumer touch the *same* slot at the same instant, so the fast path is
//! one uncontended lock plus two atomic ops per side.
//!
//! Wakeup protocol: the consumer publishes its thread handle, re-checks the
//! queue, then parks; the producer unparks the published handle after every
//! push and on close. The park uses a timeout as a belt-and-braces backstop
//! so a lost wakeup can delay a worker, never deadlock it.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, Thread};
use std::time::Duration;

/// How long a consumer parks before re-checking regardless of wakeups.
const PARK_BACKSTOP: Duration = Duration::from_millis(2);

struct Shared<T> {
    /// Ring of slots; `None` is empty. Capacity is `slots.len()`.
    slots: Vec<Mutex<Option<T>>>,
    /// Total items ever pushed; the producer's cursor.
    tail: AtomicUsize,
    /// Total items ever popped; the consumer's cursor.
    head: AtomicUsize,
    /// Set when the producer hangs up (explicitly or by drop).
    closed: AtomicBool,
    /// The consumer's thread handle, published before it parks.
    parked: Mutex<Option<Thread>>,
}

impl<T> Shared<T> {
    fn len(&self) -> usize {
        // tail >= head always; both only ever increase.
        self.tail.load(Ordering::Acquire) - self.head.load(Ordering::Acquire)
    }

    fn wake_consumer(&self) {
        if let Some(t) = self.parked.lock().expect("spsc parked lock").take() {
            t.unpark();
        }
    }
}

/// The sending half. Dropping it closes the queue.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half, owned by exactly one worker thread.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a bounded SPSC queue of the given capacity (minimum 1).
pub fn channel<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let capacity = capacity.max(1);
    let shared = Arc::new(Shared {
        slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        tail: AtomicUsize::new(0),
        head: AtomicUsize::new(0),
        closed: AtomicBool::new(false),
        parked: Mutex::new(None),
    });
    (
        Producer {
            shared: Arc::clone(&shared),
        },
        Consumer { shared },
    )
}

impl<T: Send> Producer<T> {
    /// Attempts to enqueue without blocking. Returns the value back if the
    /// queue is full.
    pub fn try_push(&self, value: T) -> Result<(), T> {
        let shared = &self.shared;
        if shared.len() == shared.slots.len() {
            return Err(value);
        }
        let tail = shared.tail.load(Ordering::Acquire);
        let slot = &shared.slots[tail % shared.slots.len()];
        *slot.lock().expect("spsc slot lock") = Some(value);
        shared.tail.store(tail + 1, Ordering::Release);
        shared.wake_consumer();
        Ok(())
    }

    /// Enqueues, yielding until space frees up (backpressure).
    pub fn push(&self, mut value: T) {
        loop {
            match self.try_push(value) {
                Ok(()) => return,
                Err(v) => {
                    value = v;
                    thread::yield_now();
                }
            }
        }
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.shared.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hangs up: the consumer drains what is queued, then sees end-of-queue.
    pub fn close(&self) {
        self.shared.closed.store(true, Ordering::Release);
        self.shared.wake_consumer();
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::Release);
        self.shared.wake_consumer();
    }
}

impl<T: Send> Consumer<T> {
    /// Attempts to dequeue without blocking.
    pub fn try_pop(&self) -> Option<T> {
        let shared = &self.shared;
        if shared.len() == 0 {
            return None;
        }
        let head = shared.head.load(Ordering::Acquire);
        let slot = &shared.slots[head % shared.slots.len()];
        let value = slot.lock().expect("spsc slot lock").take();
        debug_assert!(value.is_some(), "non-empty queue has a filled head slot");
        shared.head.store(head + 1, Ordering::Release);
        value
    }

    /// Dequeues, parking this thread while the queue is empty. Returns
    /// `None` once the queue is closed *and* drained.
    pub fn recv(&self) -> Option<T> {
        loop {
            if let Some(value) = self.try_pop() {
                return Some(value);
            }
            if self.shared.closed.load(Ordering::Acquire) {
                // Drain anything that raced in between the checks.
                return self.try_pop();
            }
            // Publish our handle, then re-check before parking so a push
            // that happened in between cannot strand us.
            *self.shared.parked.lock().expect("spsc parked lock") = Some(thread::current());
            if self.shared.len() > 0 || self.shared.closed.load(Ordering::Acquire) {
                self.shared.parked.lock().expect("spsc parked lock").take();
                continue;
            }
            thread::park_timeout(PARK_BACKSTOP);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_within_one_thread() {
        let (tx, rx) = channel::<u32>(4);
        assert!(rx.try_pop().is_none());
        for i in 0..4 {
            tx.try_push(i).unwrap();
        }
        assert_eq!(tx.try_push(99), Err(99), "full queue rejects");
        assert_eq!(tx.len(), 4);
        for i in 0..4 {
            assert_eq!(rx.try_pop(), Some(i));
        }
        assert!(rx.try_pop().is_none());
        // The ring wraps: another lap works.
        for i in 10..14 {
            tx.try_push(i).unwrap();
        }
        for i in 10..14 {
            assert_eq!(rx.try_pop(), Some(i));
        }
    }

    #[test]
    fn close_lets_the_consumer_drain_then_end() {
        let (tx, rx) = channel::<u32>(8);
        tx.try_push(1).unwrap();
        tx.try_push(2).unwrap();
        tx.close();
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.recv(), None, "closed stays closed");
    }

    #[test]
    fn cross_thread_transfer_preserves_order_with_backpressure() {
        let (tx, rx) = channel::<u64>(2); // tiny capacity forces backpressure
        const N: u64 = 10_000;
        let consumer = thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(v) = rx.recv() {
                got.push(v);
            }
            got
        });
        for i in 0..N {
            tx.push(i);
        }
        drop(tx); // closes
        let got = consumer.join().expect("consumer thread");
        assert_eq!(got.len() as u64, N);
        assert!(got.windows(2).all(|w| w[0] < w[1]), "strictly in order");
    }

    #[test]
    fn dropping_the_producer_closes() {
        let (tx, rx) = channel::<u8>(1);
        tx.try_push(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some(7));
        assert_eq!(rx.recv(), None);
    }
}
