//! A `WaitGroup`: block until a set of tasks all report done.
//!
//! The serving driver hands each worker a [`WaitGuard`] and then
//! [`WaitGroup::wait`]s; a worker's guard reports done when dropped — on the
//! normal exit path *and* on a panic unwinding through the worker, so a
//! crashed worker can never hang the barrier. This is the join primitive the
//! harness uses instead of collecting `JoinHandle`s: the dispatcher can keep
//! feeding queues while workers run and only synchronize once, at the end.

use std::sync::{Arc, Condvar, Mutex};

struct Inner {
    count: Mutex<usize>,
    zero: Condvar,
}

/// A counter of outstanding tasks that [`WaitGroup::wait`] blocks on.
#[derive(Clone)]
pub struct WaitGroup {
    inner: Arc<Inner>,
}

impl WaitGroup {
    /// Creates a group with no outstanding tasks (`wait` returns at once).
    pub fn new() -> WaitGroup {
        WaitGroup {
            inner: Arc::new(Inner {
                count: Mutex::new(0),
                zero: Condvar::new(),
            }),
        }
    }

    /// Registers one outstanding task and returns the guard that marks it
    /// done when dropped.
    pub fn worker(&self) -> WaitGuard {
        let mut count = self.inner.count.lock().expect("wait group lock");
        *count += 1;
        WaitGuard {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Outstanding tasks right now.
    pub fn outstanding(&self) -> usize {
        *self.inner.count.lock().expect("wait group lock")
    }

    /// Blocks until every registered guard has dropped.
    pub fn wait(&self) {
        let mut count = self.inner.count.lock().expect("wait group lock");
        while *count != 0 {
            count = self.inner.zero.wait(count).expect("wait group lock");
        }
    }
}

impl Default for WaitGroup {
    fn default() -> WaitGroup {
        WaitGroup::new()
    }
}

/// Marks one task done when dropped (including on panic unwind).
pub struct WaitGuard {
    inner: Arc<Inner>,
}

impl Drop for WaitGuard {
    fn drop(&mut self) {
        let mut count = self.inner.count.lock().expect("wait group lock");
        *count -= 1;
        if *count == 0 {
            self.inner.zero.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;

    #[test]
    fn wait_returns_immediately_with_no_workers() {
        let wg = WaitGroup::new();
        wg.wait();
        assert_eq!(wg.outstanding(), 0);
    }

    #[test]
    fn wait_blocks_until_all_guards_drop() {
        let wg = WaitGroup::new();
        let done = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let guard = wg.worker();
                let done = Arc::clone(&done);
                thread::spawn(move || {
                    done.fetch_add(1, Ordering::SeqCst);
                    drop(guard);
                })
            })
            .collect();
        wg.wait();
        assert_eq!(done.load(Ordering::SeqCst), 4, "wait saw all workers finish");
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(wg.outstanding(), 0);
    }

    #[test]
    fn a_panicking_worker_still_reports_done() {
        let wg = WaitGroup::new();
        let guard = wg.worker();
        let h = thread::spawn(move || {
            let _guard = guard;
            panic!("worker crash");
        });
        assert!(h.join().is_err());
        wg.wait(); // must not hang
        assert_eq!(wg.outstanding(), 0);
    }
}
