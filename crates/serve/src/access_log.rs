//! The structured access log and the flight recorder.
//!
//! Every request a [`Server`](crate::Server) retires is rendered as one
//! line of JSON — the *access log* — carrying the request's outcome,
//! latency, fuel consumption, cache/pool behaviour, deadline overshoot
//! (for interrupted requests), and, when it trapped, the full symbolicated
//! backtrace from the engine's trap diagnostics. Lines are self-contained
//! and append-friendly: a serving run's log is readable with `grep` and a
//! JSON parser, no schema registry required.
//!
//! The [`FlightRecorder`] keeps the most recent `capacity` lines in a
//! bounded ring so that when a serving process misbehaves, the last moments
//! before the report are dumpable on demand — the same idea as an aircraft
//! flight recorder: always on, fixed cost, overwritten continuously. The
//! JSON is assembled by hand (the workspace is offline and carries no
//! serialization dependency), mirroring `telemetry::trace`.

use crate::{RequestResult, RequestStatus};
use engine::TrapInfo;
use std::collections::VecDeque;
use std::sync::Mutex;

/// Escapes a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders an optional count as a JSON value (`null` when absent).
fn opt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |v| v.to_string())
}

/// Renders a trap's diagnostics — reason and symbolicated frames — as a
/// JSON object.
fn render_trap(trap: &TrapInfo) -> String {
    let frames: Vec<String> = trap
        .backtrace
        .frames()
        .iter()
        .map(|f| {
            let name = f
                .name
                .as_deref()
                .map_or_else(|| "null".to_string(), |n| format!("\"{}\"", escape(n)));
            format!(
                "{{\"func\":{},\"name\":{name},\"offset\":{},\"tier\":\"{}\"}}",
                f.func_index,
                f.offset,
                f.tier.label()
            )
        })
        .collect();
    format!(
        "{{\"reason\":\"{}\",\"frames\":[{}],\"truncated\":{}}}",
        escape(&trap.reason.to_string()),
        frames.join(","),
        trap.backtrace.truncated()
    )
}

/// Renders one retired request as a single access-log line (no trailing
/// newline). The schema is flat and stable:
///
/// ```json
/// {"request":0,"app":0,"app_name":"counter","worker":1,"status":"ok",
///  "latency_us":412,"instantiate_us":9,"exec_cycles":1088,"warm":true,
///  "fuel_consumed":null,"deadline_expired":false,
///  "deadline_overshoot_epochs":null,"trap":null,"reject_reason":null}
/// ```
///
/// `status` is `"ok"`, `"trap"`, or `"rejected"`; `trap` carries the
/// symbolicated backtrace object for trapped requests;
/// `deadline_overshoot_epochs` is set (possibly zero) exactly when the
/// request retired past its armed deadline.
pub fn render_line(result: &RequestResult, app_name: Option<&str>) -> String {
    let (status, trap, reject) = match &result.status {
        RequestStatus::Ok(_) => ("ok", "null".to_string(), "null".to_string()),
        RequestStatus::Trapped(reason) => (
            "trap",
            result.trap.as_ref().map_or_else(
                // Diagnostics should always accompany a trap; degrade to the
                // bare reason rather than lying with an empty backtrace.
                || format!("{{\"reason\":\"{}\",\"frames\":[],\"truncated\":0}}", escape(&reason.to_string())),
                render_trap,
            ),
            "null".to_string(),
        ),
        RequestStatus::Rejected(message) => (
            "rejected",
            "null".to_string(),
            format!("\"{}\"", escape(message)),
        ),
    };
    let app_name = app_name.map_or_else(|| "null".to_string(), |n| format!("\"{}\"", escape(n)));
    format!(
        "{{\"request\":{},\"app\":{},\"app_name\":{app_name},\"worker\":{},\"status\":\"{status}\",\
         \"latency_us\":{},\"instantiate_us\":{},\"exec_cycles\":{},\"warm\":{},\
         \"fuel_consumed\":{},\"deadline_expired\":{},\"deadline_overshoot_epochs\":{},\
         \"trap\":{trap},\"reject_reason\":{reject}}}",
        result.request_id,
        result.app,
        result.worker,
        result.service_wall.as_micros(),
        result.instantiate_wall.as_micros(),
        result.exec_cycles,
        result.warm,
        opt_u64(result.fuel_consumed),
        result.deadline_expired,
        opt_u64(result.deadline_overshoot_epochs),
    )
}

/// A bounded ring of the most recent access-log lines.
///
/// Recording is O(1) and drops the oldest line once `capacity` is reached;
/// [`FlightRecorder::dump`] returns the retained lines oldest-first as a
/// JSON-lines document. The total number of lines ever recorded is kept so
/// a dump declares how much history was overwritten.
pub struct FlightRecorder {
    inner: Mutex<RecorderInner>,
    capacity: usize,
}

struct RecorderInner {
    lines: VecDeque<String>,
    recorded: u64,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` lines (minimum 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            inner: Mutex::new(RecorderInner {
                lines: VecDeque::with_capacity(capacity),
                recorded: 0,
            }),
            capacity,
        }
    }

    /// Appends one line, evicting the oldest when full.
    pub fn record(&self, line: String) {
        let mut inner = self.inner.lock().expect("flight recorder lock");
        if inner.lines.len() == self.capacity {
            inner.lines.pop_front();
        }
        inner.lines.push_back(line);
        inner.recorded += 1;
    }

    /// Lines currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("flight recorder lock").lines.len()
    }

    /// True when nothing has been recorded (or everything was evicted —
    /// impossible, eviction only happens on insert).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total lines ever recorded, including evicted ones.
    pub fn recorded(&self) -> u64 {
        self.inner.lock().expect("flight recorder lock").recorded
    }

    /// The retained lines, oldest first, as a JSON-lines document (one
    /// record per line, trailing newline).
    pub fn dump(&self) -> String {
        let inner = self.inner.lock().expect("flight recorder lock");
        let mut out = String::new();
        for line in &inner.lines {
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::{Backtrace, Frame, FrameTierTag, TrapReason};
    use std::time::Duration;

    fn base_result() -> RequestResult {
        RequestResult {
            request_id: 3,
            app: 1,
            worker: 0,
            status: RequestStatus::Ok(vec![]),
            warm: true,
            instantiate_wall: Duration::from_micros(9),
            service_wall: Duration::from_micros(412),
            exec_cycles: 1088,
            fuel_consumed: None,
            deadline_expired: false,
            deadline_overshoot_epochs: None,
            trap: None,
        }
    }

    #[test]
    fn ok_requests_render_flat_records() {
        let line = render_line(&base_result(), Some("counter"));
        assert!(line.starts_with("{\"request\":3,\"app\":1,\"app_name\":\"counter\""));
        assert!(line.contains("\"status\":\"ok\""));
        assert!(line.contains("\"latency_us\":412"));
        assert!(line.contains("\"fuel_consumed\":null"));
        assert!(line.contains("\"trap\":null"));
        assert!(line.ends_with("\"reject_reason\":null}"));
    }

    #[test]
    fn trapped_requests_carry_the_symbolicated_backtrace() {
        let mut result = base_result();
        result.status = RequestStatus::Trapped(TrapReason::DivisionByZero);
        result.trap = Some(TrapInfo {
            reason: TrapReason::DivisionByZero,
            backtrace: Backtrace::from_frames(vec![Frame {
                func_index: 2,
                name: Some("div".to_string()),
                offset: 9,
                tier: FrameTierTag::Opt,
            }]),
        });
        let line = render_line(&result, Some("calc"));
        assert!(line.contains("\"status\":\"trap\""));
        assert!(line.contains(
            "\"trap\":{\"reason\":\"integer divide by zero\",\"frames\":[{\"func\":2,\"name\":\"div\",\"offset\":9,\"tier\":\"opt\"}],\"truncated\":0}"
        ));
    }

    #[test]
    fn interrupted_requests_record_their_overshoot() {
        let mut result = base_result();
        result.status = RequestStatus::Trapped(TrapReason::Interrupted);
        result.deadline_expired = true;
        result.deadline_overshoot_epochs = Some(1);
        let line = render_line(&result, None);
        assert!(line.contains("\"app_name\":null"));
        assert!(line.contains("\"deadline_expired\":true"));
        assert!(line.contains("\"deadline_overshoot_epochs\":1"));
    }

    #[test]
    fn rejected_requests_escape_their_message() {
        let mut result = base_result();
        result.status = RequestStatus::Rejected("unknown \"app\" index 7".to_string());
        let line = render_line(&result, None);
        assert!(line.contains("\"status\":\"rejected\""));
        assert!(line.contains("\"reject_reason\":\"unknown \\\"app\\\" index 7\""));
    }

    #[test]
    fn the_flight_recorder_is_a_bounded_ring() {
        let recorder = FlightRecorder::new(3);
        assert!(recorder.is_empty());
        for i in 0..5 {
            recorder.record(format!("{{\"request\":{i}}}"));
        }
        assert_eq!(recorder.len(), 3);
        assert_eq!(recorder.recorded(), 5);
        let dump = recorder.dump();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(
            lines,
            ["{\"request\":2}", "{\"request\":3}", "{\"request\":4}"],
            "oldest lines are evicted, retained lines stay in order"
        );
        assert!(dump.ends_with('\n'));
    }
}
