//! Wall-clock deadlines lowered onto the engine's epoch mechanism.
//!
//! The engine's preemption story (PR 6) is *cooperative and cheap*: compiled
//! code and the interpreter compare a shared epoch counter against a
//! per-instance deadline at loop back-edges and call boundaries, trapping
//! with `Interrupted` when it passes. Nothing in the engine ever advances
//! the epoch on its own — that is the embedder's job, and this module is
//! that embedder side:
//!
//! * an [`EpochTicker`] owns the background thread that bumps the shared
//!   epoch every `granularity`;
//! * a [`TimeoutList`] converts a request's wall-clock budget into an epoch
//!   deadline (`now + ceil(budget / granularity)`, minimum one tick) and
//!   keeps the outstanding deadlines in an ordered list — the
//!   `timeout_list` idiom — so the server can observe the earliest pending
//!   deadline and count expirations vs. in-time completions.
//!
//! The enforcement bound follows directly: a request is interrupted no
//! earlier than its budget rounded down to a tick, and no later than one
//! granularity after its deadline passes plus the time to reach the next
//! check site. Tests assert exactly that window (with slack for scheduling).

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// The background thread advancing a shared epoch counter at a fixed
/// granularity. Stops (and joins) on drop.
pub struct EpochTicker {
    epoch: Arc<AtomicU64>,
    granularity: Duration,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl EpochTicker {
    /// Starts a ticker bumping `epoch` every `granularity` (minimum 100µs —
    /// below that the ticker thread becomes a spin loop).
    pub fn start(epoch: Arc<AtomicU64>, granularity: Duration) -> EpochTicker {
        let granularity = granularity.max(Duration::from_micros(100));
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let epoch = Arc::clone(&epoch);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("epoch-ticker".into())
                .spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        std::thread::sleep(granularity);
                        epoch.fetch_add(1, Ordering::SeqCst);
                    }
                })
                .expect("spawn epoch ticker")
        };
        EpochTicker {
            epoch,
            granularity,
            stop,
            handle: Some(handle),
        }
    }

    /// The shared epoch counter (the same `Arc` engines are built with).
    pub fn epoch(&self) -> &Arc<AtomicU64> {
        &self.epoch
    }

    /// The tick period.
    pub fn granularity(&self) -> Duration {
        self.granularity
    }

    /// The current epoch.
    pub fn now(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }
}

impl Drop for EpochTicker {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// A deadline handed out by [`TimeoutList::arm`]. Pass
/// [`TimeoutToken::deadline_epoch`] to
/// [`Instance::set_epoch_deadline`](engine::Instance::set_epoch_deadline),
/// then return the token via [`TimeoutList::complete`] when the request
/// finishes (however it finishes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeoutToken {
    /// The absolute epoch at which the request becomes interruptible.
    pub deadline_epoch: u64,
    id: u64,
}

/// The outstanding wall-clock deadlines, ordered soonest-first.
///
/// Expiry itself needs no scanning: every armed deadline is already an
/// epoch number the engine compares against on its own. The list exists for
/// the server's bookkeeping — earliest pending deadline, expired vs.
/// in-time counts — and to centralize the wall-clock → epoch conversion.
pub struct TimeoutList {
    epoch: Arc<AtomicU64>,
    granularity: Duration,
    next_id: AtomicU64,
    /// `(deadline_epoch, id)` pairs; `BTreeSet` keeps them ordered so the
    /// earliest deadline is `first()`.
    pending: Mutex<BTreeSet<(u64, u64)>>,
    expired: AtomicU64,
    in_time: AtomicU64,
}

impl TimeoutList {
    /// Creates a list converting budgets at `granularity` (one epoch tick).
    pub fn new(epoch: Arc<AtomicU64>, granularity: Duration) -> TimeoutList {
        TimeoutList {
            epoch,
            granularity,
            next_id: AtomicU64::new(0),
            pending: Mutex::new(BTreeSet::new()),
            expired: AtomicU64::new(0),
            in_time: AtomicU64::new(0),
        }
    }

    /// The number of whole ticks a budget is worth, minimum 1 (a deadline
    /// of `now` would trap before the request ran at all).
    pub fn ticks_for(&self, budget: Duration) -> u64 {
        let ticks = budget.as_nanos().div_ceil(self.granularity.as_nanos().max(1));
        (ticks as u64).max(1)
    }

    /// Registers a deadline `budget` from now and returns its token.
    pub fn arm(&self, budget: Duration) -> TimeoutToken {
        let deadline_epoch = self.epoch.load(Ordering::SeqCst) + self.ticks_for(budget);
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        self.pending
            .lock()
            .expect("timeout list lock")
            .insert((deadline_epoch, id));
        TimeoutToken { deadline_epoch, id }
    }

    /// Retires a deadline when its request finishes. Returns `true` if the
    /// deadline had already passed (the request was — or was about to be —
    /// interrupted), `false` if it completed in time.
    pub fn complete(&self, token: TimeoutToken) -> bool {
        self.retire(token).is_some()
    }

    /// Like [`TimeoutList::complete`], but measures *how late* an expired
    /// request retired: `Some(overshoot)` is the number of whole epochs the
    /// clock had advanced past the deadline when the request came back
    /// (zero when it retired in the very tick the deadline landed on),
    /// `None` means it completed in time. Cooperative preemption bounds the
    /// overshoot by one granularity plus the time to the next check site,
    /// which the serving tests assert.
    pub fn retire(&self, token: TimeoutToken) -> Option<u64> {
        self.pending
            .lock()
            .expect("timeout list lock")
            .remove(&(token.deadline_epoch, token.id));
        let now = self.epoch.load(Ordering::SeqCst);
        if now >= token.deadline_epoch {
            self.expired.fetch_add(1, Ordering::SeqCst);
            Some(now - token.deadline_epoch)
        } else {
            self.in_time.fetch_add(1, Ordering::SeqCst);
            None
        }
    }

    /// Deadlines currently outstanding.
    pub fn pending(&self) -> usize {
        self.pending.lock().expect("timeout list lock").len()
    }

    /// The earliest outstanding deadline epoch, if any.
    pub fn next_deadline(&self) -> Option<u64> {
        self.pending
            .lock()
            .expect("timeout list lock")
            .first()
            .map(|&(deadline, _)| deadline)
    }

    /// Requests retired after their deadline passed.
    pub fn expired_count(&self) -> u64 {
        self.expired.load(Ordering::SeqCst)
    }

    /// Requests retired before their deadline.
    pub fn in_time_count(&self) -> u64 {
        self.in_time.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed_epoch(at: u64) -> Arc<AtomicU64> {
        Arc::new(AtomicU64::new(at))
    }

    #[test]
    fn budgets_round_up_to_whole_ticks_minimum_one() {
        let list = TimeoutList::new(fixed_epoch(0), Duration::from_millis(1));
        assert_eq!(list.ticks_for(Duration::ZERO), 1);
        assert_eq!(list.ticks_for(Duration::from_micros(1)), 1);
        assert_eq!(list.ticks_for(Duration::from_millis(1)), 1);
        assert_eq!(list.ticks_for(Duration::from_micros(1001)), 2);
        assert_eq!(list.ticks_for(Duration::from_millis(25)), 25);
    }

    #[test]
    fn arm_complete_orders_and_counts() {
        let epoch = fixed_epoch(10);
        let list = TimeoutList::new(Arc::clone(&epoch), Duration::from_millis(1));
        let slow = list.arm(Duration::from_millis(50)); // deadline 60
        let fast = list.arm(Duration::from_millis(5)); // deadline 15
        assert_eq!(list.pending(), 2);
        assert_eq!(list.next_deadline(), Some(15), "soonest first");
        // `fast` retires before its deadline: in time.
        assert!(!list.complete(fast));
        assert_eq!(list.next_deadline(), Some(60));
        // The clock blows past `slow`'s deadline: expired.
        epoch.store(61, Ordering::SeqCst);
        assert!(list.complete(slow));
        assert_eq!(list.pending(), 0);
        assert_eq!((list.in_time_count(), list.expired_count()), (1, 1));
    }

    #[test]
    fn retire_measures_the_overshoot_in_epochs() {
        let epoch = fixed_epoch(100);
        let list = TimeoutList::new(Arc::clone(&epoch), Duration::from_millis(1));
        let in_time = list.arm(Duration::from_millis(10)); // deadline 110
        let on_the_dot = list.arm(Duration::from_millis(10));
        let late = list.arm(Duration::from_millis(10));
        assert_eq!(list.retire(in_time), None, "before the deadline");
        epoch.store(110, Ordering::SeqCst);
        assert_eq!(list.retire(on_the_dot), Some(0), "in the deadline tick");
        epoch.store(113, Ordering::SeqCst);
        assert_eq!(list.retire(late), Some(3), "three ticks past");
        assert_eq!((list.in_time_count(), list.expired_count()), (1, 2));
    }

    #[test]
    fn ticker_advances_and_stops_on_drop() {
        let epoch = fixed_epoch(0);
        let ticker = EpochTicker::start(Arc::clone(&epoch), Duration::from_millis(1));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while ticker.now() < 3 {
            assert!(std::time::Instant::now() < deadline, "ticker never ticked");
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(ticker);
        let frozen = epoch.load(Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(epoch.load(Ordering::SeqCst), frozen, "stopped on drop");
    }
}
