//! The concurrent serving harness: many requests, few engines, zero setup
//! on the hot path.
//!
//! This crate is the embedder the engine crates have been building toward:
//! a request driver in the shape of a multi-tenant function-as-a-service
//! server. A [`Server`] hosts a set of *apps* (modules registered up
//! front), and [`Server::run`] executes a batch of [`Request`]s against
//! them across a pool of parked worker threads. The moving parts, each its
//! own module, are the classic serving idioms:
//!
//! * [`spsc`] — one bounded single-producer/single-consumer mailbox per
//!   worker; the dispatcher round-robins requests in, workers park when
//!   their queue runs dry;
//! * [`wait_group`] — the batch barrier: every worker holds a guard,
//!   dropped even on panic, and the dispatcher waits for all of them;
//! * [`deadline`] — wall-clock budgets lowered onto the engine's epoch
//!   preemption: a ticker thread advances the shared epoch, a
//!   `timeout_list` converts budgets to epoch deadlines, and the engine
//!   interrupts itself at the next check site;
//! * [`access_log`] — every retired request becomes one structured JSON
//!   line (latency, fuel, pool/cache behaviour, deadline overshoot for
//!   interrupted requests, symbolicated trap diagnostics on failure), and
//!   a bounded [`access_log::FlightRecorder`] ring retains the most recent
//!   lines for dumping on demand;
//! * instance pooling lives in the engine crate
//!   ([`engine::InstancePool`]): each app's instances are recycled through
//!   snapshot resets, so a warm request pays a memcpy instead of a full
//!   instantiation, and all apps share one [`engine::CodeCache`] so
//!   repeated instantiations never recompile.
//!
//! Per-request isolation is the multi-tenant contract from PR 6: fuel
//! budgets meter deterministic work, epoch deadlines bound wall-clock time,
//! and every request observes a pristine snapshot regardless of what the
//! previous occupant of its instance did — including trapping halfway
//! through a memory write.

#![warn(missing_docs)]

pub mod access_log;
pub mod deadline;
pub mod spsc;
pub mod wait_group;

use access_log::FlightRecorder;
use deadline::{EpochTicker, TimeoutList};
use engine::{
    CacheStats, CodeCache, Engine, EngineConfig, EngineError, InstancePool, PoolStats, TrapInfo,
    TrapReason,
};
use machine::values::WasmValue;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};
use telemetry::{EventKind, Telemetry};
use wasm::module::Module;
use wait_group::WaitGroup;

/// Sizing and pacing knobs for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing requests.
    pub workers: usize,
    /// Capacity of each worker's request mailbox; the dispatcher applies
    /// backpressure (yields) when a mailbox is full.
    pub queue_capacity: usize,
    /// Instances each app's pool retains between requests.
    pub max_idle_per_app: usize,
    /// The epoch tick period — the granularity at which deadlines are
    /// enforced.
    pub epoch_granularity: Duration,
    /// Telemetry handle shared by every app's engine and the serving layer
    /// itself: compile, cache, pool, and request events all land in one
    /// trace. Disabled by default.
    pub telemetry: Telemetry,
    /// Access-log lines the flight recorder retains
    /// ([`Server::flight_recorder`]); the oldest are overwritten beyond
    /// this.
    pub flight_recorder_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 2,
            queue_capacity: 64,
            max_idle_per_app: 8,
            epoch_granularity: Duration::from_millis(1),
            telemetry: Telemetry::disabled(),
            flight_recorder_capacity: 256,
        }
    }
}

/// One unit of work: which app to invoke and under what limits.
#[derive(Debug, Clone)]
pub struct Request {
    /// Index returned by [`Server::register_app`].
    pub app: usize,
    /// Arguments for the app's entry point.
    pub args: Vec<WasmValue>,
    /// Deterministic work budget ([`engine::Instance::set_fuel`]); requires
    /// a metering engine configuration to be enforced.
    pub fuel: Option<u64>,
    /// Wall-clock budget, enforced via epoch preemption.
    pub deadline: Option<Duration>,
}

impl Request {
    /// A request against `app` with no arguments and no limits.
    pub fn to_app(app: usize) -> Request {
        Request {
            app,
            args: Vec::new(),
            fuel: None,
            deadline: None,
        }
    }

    /// Sets the fuel budget.
    pub fn with_fuel(mut self, fuel: u64) -> Request {
        self.fuel = Some(fuel);
        self
    }

    /// Sets the wall-clock budget.
    pub fn with_deadline(mut self, deadline: Duration) -> Request {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the entry-point arguments.
    pub fn with_args(mut self, args: Vec<WasmValue>) -> Request {
        self.args = args;
        self
    }
}

/// How a request ended.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestStatus {
    /// The entry point returned normally.
    Ok(Vec<WasmValue>),
    /// Execution trapped — including [`TrapReason::OutOfFuel`] (budget
    /// exhausted) and [`TrapReason::Interrupted`] (deadline passed).
    Trapped(TrapReason),
    /// The request never executed (unknown app, instantiation failure).
    Rejected(String),
}

impl RequestStatus {
    /// True for [`RequestStatus::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, RequestStatus::Ok(_))
    }
}

/// The outcome and measurements of one served request.
#[derive(Debug, Clone)]
pub struct RequestResult {
    /// Position of the request in the batch passed to [`Server::run`].
    pub request_id: usize,
    /// The app it targeted.
    pub app: usize,
    /// The worker thread that served it.
    pub worker: usize,
    /// How it ended.
    pub status: RequestStatus,
    /// True if the instance came from the pool's snapshot-reset path
    /// rather than a cold instantiation.
    pub warm: bool,
    /// Time to obtain a ready instance (the reset memcpy when warm, a full
    /// instantiation when cold).
    pub instantiate_wall: Duration,
    /// Total service time: checkout + execution.
    pub service_wall: Duration,
    /// Simulated execution cycles the request consumed — the repo's
    /// deterministic "execution time" unit, comparable across runs and
    /// immune to host scheduling noise.
    pub exec_cycles: u64,
    /// Fuel consumed, when a budget was armed.
    pub fuel_consumed: Option<u64>,
    /// True if the request's deadline passed before it retired (it was —
    /// or was about to be — interrupted).
    pub deadline_expired: bool,
    /// How many whole epochs past its deadline the request retired
    /// (`Some(0)` = in the deadline tick itself); `None` when no deadline
    /// was armed or it completed in time. Cooperative preemption bounds
    /// this at roughly one epoch plus the time to the next check site.
    pub deadline_overshoot_epochs: Option<u64>,
    /// The symbolicated trap diagnostics when the request trapped: reason
    /// plus a cross-tier backtrace of `(function, name, bytecode offset)`
    /// frames.
    pub trap: Option<TrapInfo>,
}

struct App {
    name: String,
    entry: String,
    pool: Arc<InstancePool>,
}

struct Work {
    id: usize,
    request: Request,
}

/// A multi-app serving harness over one engine configuration.
pub struct Server {
    server_config: ServerConfig,
    engine_config: EngineConfig,
    cache: Arc<CodeCache>,
    ticker: EpochTicker,
    timeouts: Arc<TimeoutList>,
    recorder: FlightRecorder,
    apps: Vec<App>,
}

impl Server {
    /// Creates a server with no apps. One [`CodeCache`] and one epoch
    /// ticker are shared by every app registered later.
    pub fn new(server_config: ServerConfig, engine_config: EngineConfig) -> Server {
        let epoch = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let ticker = EpochTicker::start(Arc::clone(&epoch), server_config.epoch_granularity);
        let timeouts = Arc::new(TimeoutList::new(epoch, server_config.epoch_granularity));
        let recorder = FlightRecorder::new(server_config.flight_recorder_capacity);
        Server {
            server_config,
            engine_config,
            cache: Arc::new(CodeCache::new()),
            ticker,
            timeouts,
            recorder,
            apps: Vec::new(),
        }
    }

    /// Registers an app and returns its index for [`Request::to_app`].
    /// Instantiates once eagerly (building the pool's snapshot image), so
    /// broken modules fail here, not mid-batch.
    pub fn register_app(
        &mut self,
        name: &str,
        entry: &str,
        module: Module,
    ) -> Result<usize, EngineError> {
        let mut engine = Engine::new(self.engine_config.clone())
            .with_code_cache(Arc::clone(&self.cache))
            .with_epoch(Arc::clone(self.ticker.epoch()));
        // Share the server's sink when one is attached; otherwise leave the
        // engine's own (config-driven) handle alone.
        if self.server_config.telemetry.is_enabled() {
            engine = engine.with_telemetry(self.server_config.telemetry.clone());
        }
        let pool = InstancePool::new(engine, module, self.server_config.max_idle_per_app)?;
        pool.set_label(self.apps.len() as u32);
        self.apps.push(App {
            name: name.to_string(),
            entry: entry.to_string(),
            pool,
        });
        Ok(self.apps.len() - 1)
    }

    /// The name an app was registered under.
    pub fn app_name(&self, app: usize) -> Option<&str> {
        self.apps.get(app).map(|a| a.name.as_str())
    }

    /// Registered apps.
    pub fn num_apps(&self) -> usize {
        self.apps.len()
    }

    /// The shared code cache's counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// An app's pool counters.
    pub fn pool_stats(&self, app: usize) -> Option<PoolStats> {
        self.apps.get(app).map(|a| a.pool.stats())
    }

    /// The deadline bookkeeping (expired vs. in-time counts).
    pub fn timeouts(&self) -> &TimeoutList {
        &self.timeouts
    }

    /// The deadline-enforcement granularity (one epoch tick).
    pub fn epoch_granularity(&self) -> Duration {
        self.ticker.granularity()
    }

    /// The flight recorder: the most recent requests' access-log lines,
    /// dumpable on demand via [`access_log::FlightRecorder::dump`].
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Executes a batch: requests are round-robined across the worker
    /// mailboxes, workers drain them concurrently, and the batch joins on a
    /// [`WaitGroup`]. Results come back in request order regardless of
    /// completion order.
    pub fn run(&self, requests: Vec<Request>) -> Vec<RequestResult> {
        let workers = self.server_config.workers.max(1);
        let total = requests.len();
        let mut producers = Vec::with_capacity(workers);
        let mut consumers = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = spsc::channel::<Work>(self.server_config.queue_capacity);
            producers.push(tx);
            consumers.push(rx);
        }
        let wg = WaitGroup::new();
        let results = Mutex::new(Vec::with_capacity(total));
        thread::scope(|scope| {
            for (worker, rx) in consumers.into_iter().enumerate() {
                let guard = wg.worker();
                let results = &results;
                scope.spawn(move || {
                    let _done = guard;
                    while let Some(work) = rx.recv() {
                        let result = self.serve_one(worker, work);
                        results.lock().expect("results lock").push(result);
                    }
                });
            }
            for (id, request) in requests.into_iter().enumerate() {
                self.server_config.telemetry.emit(EventKind::ServeEnqueue {
                    request: id as u32,
                    app: request.app as u32,
                });
                producers[id % workers].push(Work { id, request });
            }
            for tx in &producers {
                tx.close();
            }
            wg.wait();
        });
        let mut out = results.into_inner().expect("results lock");
        debug_assert_eq!(out.len(), total);
        out.sort_by_key(|r| r.request_id);
        out
    }

    /// Serves one request and appends its access-log line to the flight
    /// recorder.
    fn serve_one(&self, worker: usize, work: Work) -> RequestResult {
        let result = self.execute(worker, work);
        let app_name = self.app_name(result.app);
        self.recorder.record(access_log::render_line(&result, app_name));
        result
    }

    fn execute(&self, worker: usize, work: Work) -> RequestResult {
        let Work { id, request } = work;
        let reject = |message: String| RequestResult {
            request_id: id,
            app: request.app,
            worker,
            status: RequestStatus::Rejected(message),
            warm: false,
            instantiate_wall: Duration::ZERO,
            service_wall: Duration::ZERO,
            exec_cycles: 0,
            fuel_consumed: None,
            deadline_expired: false,
            deadline_overshoot_epochs: None,
            trap: None,
        };
        let Some(app) = self.apps.get(request.app) else {
            return reject(format!("unknown app index {}", request.app));
        };
        let telemetry = &self.server_config.telemetry;
        telemetry.emit(EventKind::ServeStart {
            request: id as u32,
            app: request.app as u32,
        });
        let start = Instant::now();
        let mut instance = match app.pool.checkout() {
            Ok(instance) => instance,
            Err(e) => return reject(format!("instantiation failed: {e}")),
        };
        let instantiate_wall = start.elapsed();
        if let Some(fuel) = request.fuel {
            instance.set_fuel(fuel);
        }
        let token = request.deadline.map(|budget| self.timeouts.arm(budget));
        if let Some(token) = &token {
            instance.set_epoch_deadline(token.deadline_epoch);
        }
        let outcome = app
            .pool
            .engine()
            .call_export(&mut instance, &app.entry, &request.args);
        let service_wall = start.elapsed();
        let deadline_overshoot_epochs = token.and_then(|t| self.timeouts.retire(t));
        let deadline_expired = deadline_overshoot_epochs.is_some();
        let trap = if outcome.is_err() {
            instance.last_trap().cloned()
        } else {
            None
        };
        if telemetry.is_enabled() {
            telemetry.emit(EventKind::ServeFinish {
                request: id as u32,
                app: request.app as u32,
                ok: outcome.is_ok(),
                dur_us: service_wall.as_micros() as u64,
            });
            if let Some(metrics) = telemetry.metrics() {
                metrics.counter("serve.requests").inc();
                if outcome.is_err() {
                    metrics.counter("serve.trapped").inc();
                }
                metrics.histogram("serve.request_us").record(service_wall.as_micros() as u64);
                metrics
                    .histogram("serve.instantiate_us")
                    .record(instantiate_wall.as_micros() as u64);
                if let Some(fuel) = instance.fuel_consumed() {
                    metrics.histogram("serve.fuel_per_request").record(fuel);
                }
                metrics.histogram("serve.exec_cycles").record(instance.metrics.exec_cycles);
                if let Some(overshoot) = deadline_overshoot_epochs {
                    metrics.histogram("serve.deadline_overshoot").record(overshoot);
                }
            }
        }
        RequestResult {
            request_id: id,
            app: request.app,
            worker,
            status: match outcome {
                Ok(values) => RequestStatus::Ok(values),
                Err(code) => RequestStatus::Trapped(TrapReason::from(code)),
            },
            warm: instance.was_warm(),
            instantiate_wall,
            service_wall,
            exec_cycles: instance.metrics.exec_cycles,
            fuel_consumed: instance.fuel_consumed(),
            deadline_expired,
            deadline_overshoot_epochs,
            trap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasm::builder::{CodeBuilder, ModuleBuilder};
    use wasm::module::ConstExpr;
    use wasm::opcode::Opcode;
    use wasm::types::{FuncType, Limits, ValueType};

    /// `main: [] -> [i32]` increments `mem[0]` and returns it — so any
    /// cross-request state leak shows up as a result other than 1.
    fn counter_module() -> Module {
        let mut b = ModuleBuilder::new();
        b.add_memory(Limits::bounded(1, 2));
        b.add_data(0, ConstExpr::I32(8), vec![0x2A]);
        let mut c = CodeBuilder::new();
        c.i32_const(0)
            .i32_const(0)
            .mem(Opcode::I32Load, 2, 0)
            .i32_const(1)
            .op(Opcode::I32Add)
            .mem(Opcode::I32Store, 2, 0)
            .i32_const(0)
            .mem(Opcode::I32Load, 2, 0);
        let f = b.add_func(
            FuncType::new(vec![], vec![ValueType::I32]),
            vec![],
            c.finish(),
        );
        b.export_func("main", f);
        b.finish()
    }

    /// `main: [i32] -> [i32]` doubles its argument.
    fn doubler_module() -> Module {
        let mut b = ModuleBuilder::new();
        let mut c = CodeBuilder::new();
        c.local_get(0).local_get(0).op(Opcode::I32Add);
        let f = b.add_func(
            FuncType::new(vec![ValueType::I32], vec![ValueType::I32]),
            vec![],
            c.finish(),
        );
        b.export_func("main", f);
        b.finish()
    }

    #[test]
    fn instances_and_results_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<engine::Instance>();
        assert_send::<RequestResult>();
        assert_send::<Request>();
    }

    #[test]
    fn a_batch_runs_isolated_across_workers() {
        let mut server = Server::new(
            ServerConfig {
                workers: 3,
                ..ServerConfig::default()
            },
            EngineConfig::default(),
        );
        let counter = server.register_app("counter", "main", counter_module()).unwrap();
        let doubler = server.register_app("doubler", "main", doubler_module()).unwrap();
        assert_eq!(server.num_apps(), 2);
        assert_eq!(server.app_name(counter), Some("counter"));

        let mut requests = Vec::new();
        for i in 0..12 {
            if i % 2 == 0 {
                requests.push(Request::to_app(counter));
            } else {
                requests.push(
                    Request::to_app(doubler).with_args(vec![WasmValue::I32(i)]),
                );
            }
        }
        let results = server.run(requests);
        assert_eq!(results.len(), 12);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.request_id, i, "results in request order");
            if i % 2 == 0 {
                assert_eq!(
                    r.status,
                    RequestStatus::Ok(vec![WasmValue::I32(1)]),
                    "every counter request sees pristine memory (request {i})"
                );
            } else {
                assert_eq!(
                    r.status,
                    RequestStatus::Ok(vec![WasmValue::I32(2 * i as i32)]),
                    "doubler request {i}"
                );
            }
            assert!(r.exec_cycles > 0, "simulated cycles recorded");
            assert!(r.worker < 3);
        }
        // Pool accounting: every checkout was either warm or cold.
        let stats = server.pool_stats(counter).unwrap();
        assert_eq!(stats.warm_checkouts + stats.cold_checkouts, 6);
        assert!(stats.warm_checkouts >= 1, "the parked first instance was reused");
        // Cache accounting: one miss per app's first instantiation; every
        // cold fallback checkout afterwards hit.
        let cache = server.cache_stats();
        assert_eq!(cache.entries, 2);
        assert_eq!(cache.misses, 2);
        let cold_fallbacks: u64 = (0..2)
            .map(|a| server.pool_stats(a).unwrap().cold_checkouts)
            .sum();
        assert_eq!(cache.hits, cold_fallbacks);
    }

    #[test]
    fn unknown_apps_are_rejected_not_panicked() {
        let server = Server::new(ServerConfig::default(), EngineConfig::default());
        let results = server.run(vec![Request::to_app(7)]);
        assert_eq!(results.len(), 1);
        assert!(
            matches!(&results[0].status, RequestStatus::Rejected(m) if m.contains("unknown app")),
            "got {:?}",
            results[0].status
        );
        assert!(!results[0].status.is_ok());
    }

    #[test]
    fn an_empty_batch_is_fine() {
        let mut server = Server::new(ServerConfig::default(), EngineConfig::default());
        server.register_app("counter", "main", counter_module()).unwrap();
        assert!(server.run(Vec::new()).is_empty());
        assert_eq!(server.epoch_granularity(), Duration::from_millis(1));
        assert_eq!(server.timeouts().pending(), 0);
    }
}
