//! Minimal, dependency-free shim of the [proptest](https://crates.io/crates/proptest)
//! property-testing API.
//!
//! The build environment for this repository has no access to crates.io, so
//! this vendored crate implements exactly the surface the workspace's tests
//! use: the [`strategy::Strategy`] trait with `prop_map`,
//! [`strategy::Just`], integer
//! ranges and [`arbitrary`] (`any::<T>()`) as strategies,
//! [`collection::vec`], and the [`proptest!`], [`prop_oneof!`], and
//! [`prop_assert_eq!`] macros.
//!
//! Differences from real proptest: generation is driven by a deterministic
//! splitmix64 PRNG (override the seed with `PROPTEST_SEED`, the per-test
//! case count with `PROPTEST_CASES`), and failing cases are reported without
//! shrinking.

#![warn(missing_docs)]

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no intermediate `ValueTree`; strategies
    /// generate final values directly and no shrinking is performed.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generates one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of its value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that picks uniformly among several boxed strategies.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Creates a union over `options`; each generation picks one option
        /// uniformly at random.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! requires at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty => $next:ident),+ $(,)?) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )+};
    }

    int_range_strategy! {
        u8 => next_u8, u16 => next_u16, u32 => next_u32, u64 => next_u64,
        usize => next_usize, i8 => next_i8, i16 => next_i16, i32 => next_i32,
        i64 => next_i64, isize => next_isize,
    }
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait and the `any::<T>()` entry point.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),+ $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Bias toward boundary values the way proptest's integer
                    // strategies weight edges: 1 in 8 draws picks an extreme.
                    match rng.next_u64() % 8 {
                        0 => <$t>::MIN,
                        1 => <$t>::MAX,
                        2 => 0 as $t,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )+};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy generating arbitrary values of `T`.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the canonical strategy for `T`, like proptest's `any::<T>()`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::Range;

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates `Vec`s of `element` values with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test configuration and the deterministic PRNG driving generation.

    /// Configuration for a `proptest!` block.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// The effective case count: the configured value, unless the
        /// `PROPTEST_CASES` environment variable overrides it (the CI fuzz
        /// smoke job raises the count this way without a rebuild).
        pub fn effective_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// splitmix64 PRNG; deterministic unless reseeded via `PROPTEST_SEED`.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the RNG, honoring a `PROPTEST_SEED` environment override.
        pub fn deterministic() -> Self {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0x5DEECE66D_u64);
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Declares property tests: each `arg in strategy` binding is generated
/// `cases` times and the body re-run.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest! { @with_config ($config) $($rest)* }
    };
    (
        $(#[$meta:meta])+
        fn $name:ident $($rest:tt)*
    ) => {
        $crate::proptest! {
            @with_config ($crate::test_runner::ProptestConfig::default())
            $(#[$meta])+
            fn $name $($rest)*
        }
    };
    (
        @with_config ($config:expr)
        $(
            $(#[$meta:meta])+
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic();
                for case in 0..config.effective_cases() {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let run = || -> Result<(), String> {
                        $body
                        Ok(())
                    };
                    if let Err(msg) = run() {
                        panic!(
                            "proptest case {} failed: {}\n(inputs: {:?})",
                            case, msg, ($(&$arg,)+)
                        );
                    }
                }
            }
        )*
    };
}

/// Picks one of several strategies (all generating the same value type)
/// uniformly at random per generated value.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case with a
/// message instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` != `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l, r, format!($($fmt)+)
            ));
        }
    }};
}
