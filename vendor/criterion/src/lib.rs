//! Minimal, dependency-free shim of the [criterion](https://crates.io/crates/criterion)
//! benchmarking API.
//!
//! The build environment for this repository has no access to crates.io, so
//! this vendored crate implements exactly the surface the workspace's benches
//! use: [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`] macros.
//! It performs a real (if simple) measurement: a warm-up phase followed by
//! `sample_size` timed samples, reporting mean / min / max per iteration.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing away a computed value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<S: Display, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

/// Timing helper handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets how long to run the routine before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total time budget for the timed samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<S: Display, F: FnMut(&mut Bencher)>(&mut self, id: S, f: F) -> &mut Self {
        let id = id.to_string();
        self.run(&id, f);
        self
    }

    /// Benchmarks `routine` under `id`, passing it `input` by reference.
    pub fn bench_with_input<S: Display, I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: S,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.to_string();
        self.run(&id, |b| f(b, input));
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        // Warm-up: repeatedly run single iterations until the warm-up budget
        // is spent, which also calibrates the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;

        // Size each sample so that `sample_size` samples roughly fill the
        // measurement budget.
        let per_sample = self.measurement_time / self.sample_size as u32;
        let iters = if per_iter.is_zero() {
            1000
        } else {
            (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };

        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        let mut total = Duration::ZERO;
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            let per = b.elapsed / iters as u32;
            min = min.min(per);
            max = max.max(per);
            total += b.elapsed;
        }
        let mean = total / (self.sample_size as u32 * iters as u32).max(1);
        println!(
            "{}/{}: mean {:?}  min {:?}  max {:?}  ({} samples x {} iters)",
            self.name, id, mean, min, max, self.sample_size, iters
        );
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The benchmark driver. Mirrors criterion's entry type.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group<S: Display>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.to_string();
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(800),
        }
    }
}

/// Declares a benchmark group function that runs each target with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` to run the named benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
