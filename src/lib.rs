//! `wasm-baseline` — umbrella crate for the reproduction of
//! *"Whose Baseline Compiler is it Anyway?"* (CGO 2024).
//!
//! This crate re-exports the workspace members so examples, integration
//! tests, and downstream users can depend on a single crate:
//!
//! * [`wasm`] — module representation, binary format, validator;
//! * [`machine`] — virtual target ISA, assembler, cost model, CPU simulator;
//! * [`interp`] — the in-place interpreter and probe interface;
//! * [`spc`] — the single-pass baseline compiler (the paper's contribution);
//! * [`optc`] — the optimizing tier;
//! * [`engine`] — the multi-tier engine, GC, monitors, and metrics;
//! * [`suites`] — the synthetic PolyBenchC / Libsodium / Ostrich suites.
//!
//! See `README.md` for a quickstart and `DESIGN.md` / `EXPERIMENTS.md` for
//! the reproduction methodology and results.

#![warn(missing_docs)]

pub use engine;
pub use interp;
pub use machine;
pub use optc;
pub use spc;
pub use suites;
pub use wasm;
